"""Tests of the scenario subsystem: registry, runs, sweeps, determinism."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig, ExperimentScale
from repro.metrics.comparison import cross_scenario_ranking, rank_heuristics
from repro.scenarios import (
    SCENARIO_REGISTRY,
    Scenario,
    build_scenario_metatasks,
    get_scenario,
    homogeneous_farm,
    power_law_farm,
    replicated_paper_farm,
    run_scenario,
    scenario_names,
    scenario_seed_offset,
    run_sweep,
)
from repro.workload.arrivals import PoissonArrivals
from repro.workload.testbed import first_set_platform


def tiny_config(task_count: int = 16, metatask_count: int = 1, seed: int = 7) -> ExperimentConfig:
    return ExperimentConfig(
        scale=ExperimentScale(
            name="tiny", task_count=task_count, metatask_count=metatask_count, repetitions=1
        ),
        seed=seed,
    )


class TestPlatformGenerators:
    def test_homogeneous_farm_shape(self):
        platform = homogeneous_farm(6, speed_mhz=900.0)
        assert len(platform.server_names()) == 6
        speeds = {platform.machine(n).speed_mhz for n in platform.server_names()}
        assert speeds == {900.0}
        assert platform.agent_name == "agent-0"

    def test_power_law_farm_is_heterogeneous_and_deterministic(self):
        a = power_law_farm(8, min_speed_mhz=400.0, alpha=1.5)
        b = power_law_farm(8, min_speed_mhz=400.0, alpha=1.5)
        speeds_a = [a.machine(n).speed_mhz for n in a.server_names()]
        speeds_b = [b.machine(n).speed_mhz for n in b.server_names()]
        assert speeds_a == speeds_b  # no RNG: quantile-based
        assert speeds_a == sorted(speeds_a)
        assert speeds_a[-1] > 3.0 * speeds_a[0]  # heavy tail

    def test_replicated_paper_farm_cycles_profiles(self):
        platform = replicated_paper_farm(8)
        names = platform.server_names()
        assert len(names) == 8
        assert names[0].startswith("chamagne-")
        assert names[6].startswith("chamagne-")  # 6 profiles, cycled
        # replica hardware matches the Table 2 source machine
        from repro.platform.spec import PAPER_MACHINES

        assert platform.machine(names[0]).speed_mhz == PAPER_MACHINES["chamagne"].speed_mhz

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            homogeneous_farm(0)
        with pytest.raises(ValueError):
            power_law_farm(4, alpha=0.0)
        with pytest.raises(ValueError):
            replicated_paper_farm(4, profiles=("not-a-machine",))


class TestRegistry:
    def test_registry_has_the_promised_scenarios(self):
        names = scenario_names()
        assert len(names) >= 5
        for required in (
            "paper-low-rate",
            "burst-storm",
            "diurnal-week",
            "hetero-farm-16",
            "flaky-servers",
        ):
            assert required in names

    def test_unknown_scenario_raises(self):
        with pytest.raises(ExperimentError, match="unknown scenario"):
            get_scenario("definitely-not-registered")

    def test_scenario_validation(self):
        with pytest.raises(ExperimentError, match="problem family"):
            Scenario(
                name="x", description="d", regime="r",
                platform_factory=first_set_platform, problem_family="nope",
                arrivals=lambda scenario, config: PoissonArrivals(20.0), mean_interarrival_s=20.0,
            )
        with pytest.raises(ExperimentError, match="reference"):
            Scenario(
                name="x", description="d", regime="r",
                platform_factory=first_set_platform, problem_family="matmul",
                arrivals=lambda scenario, config: PoissonArrivals(20.0), mean_interarrival_s=20.0,
                heuristics=("hmct",), reference="mct",
            )

    def test_seed_offsets_are_scenario_specific_and_spaced(self):
        offsets = {name: scenario_seed_offset(name) for name in scenario_names()}
        assert len(set(offsets.values())) == len(offsets)
        assert all(offset % 1_000_000 == 0 for offset in offsets.values())


class TestScenarioRuns:
    @pytest.mark.parametrize("name", sorted(SCENARIO_REGISTRY))
    def test_every_registered_scenario_runs_at_smoke_scale(self, name):
        table = run_scenario(name, config=tiny_config())
        scenario = get_scenario(name)
        assert set(table.columns) == set(scenario.heuristics)
        for heuristic in scenario.heuristics:
            assert table.value(heuristic, "completed tasks") > 0
        assert any(name in note for note in table.notes)

    def test_metatask_draws_are_independent_of_metatask_count(self):
        scenario = get_scenario("burst-storm")
        one = build_scenario_metatasks(scenario, tiny_config(metatask_count=1))
        two = build_scenario_metatasks(scenario, tiny_config(metatask_count=2))
        assert [i.arrival for i in one[0].items] == [i.arrival for i in two[0].items]

    def test_flaky_servers_scenario_actually_loses_or_retries_tasks(self):
        # With the outage hitting the fastest server mid-run, at least one
        # heuristic must record failed attempts referencing the outage.
        table = run_scenario("flaky-servers", config=tiny_config(task_count=30))
        reasons = [
            attempt.failure_reason
            for outcome in table.outcomes.values()
            for run in outcome.runs
            for task in run.tasks
            for attempt in task.attempts
            if attempt.failure_reason
        ]
        assert any("outage" in reason for reason in reasons)


class TestDeterminism:
    def test_run_scenario_is_byte_identical_across_jobs(self):
        config = tiny_config(task_count=14)
        serial = run_scenario("burst-storm", config=config, jobs=1)
        parallel = run_scenario("burst-storm", config=config, jobs=4)
        assert serial.render() == parallel.render()
        assert serial.columns == parallel.columns

    def test_sweep_is_byte_identical_across_jobs_and_subset_stable(self):
        config = tiny_config(task_count=12)
        names = ["paper-low-rate", "flaky-servers"]
        serial = run_sweep(names, config=config, jobs=1)
        parallel = run_sweep(names, config=config, jobs=2)
        assert serial.render() == parallel.render()
        # sweeping a subset reproduces the full sweep's corresponding table
        solo = run_sweep(["flaky-servers"], config=config, jobs=1)
        assert solo.tables["flaky-servers"].columns == serial.tables["flaky-servers"].columns


class TestSweep:
    def test_sweep_produces_ranking_for_every_scenario(self):
        config = tiny_config(task_count=10)
        names = ["paper-low-rate", "homog-farm-8"]
        sweep = run_sweep(names, config=config)
        assert set(sweep.tables) == set(names)
        for heuristic, row in sweep.ranking.items():
            assert set(row) == set(names)
            assert all(cell.startswith("#") for cell in row.values())
        best = sweep.best_per_scenario()
        assert set(best) == set(names)
        rendered = sweep.render()
        assert "Cross-scenario ranking" in rendered
        assert all(name in rendered for name in names)

    def test_sweep_rejects_unknown_metric_before_running_anything(self):
        with pytest.raises(ExperimentError, match="unknown ranking metric"):
            run_sweep(["paper-low-rate"], config=tiny_config(), metric="sum_flow")

    def test_sweep_rejects_duplicates_and_empty(self):
        with pytest.raises(ExperimentError, match="duplicate"):
            run_sweep(["paper-low-rate", "paper-low-rate"], config=tiny_config())
        with pytest.raises(ExperimentError, match="at least one"):
            run_sweep([], config=tiny_config())


class TestScenarioCli:
    def test_scenario_list(self, capsys):
        from repro import cli

        assert cli.main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_scenario_run_smoke(self, capsys):
        from repro import cli

        assert cli.main(["scenario", "run", "paper-low-rate", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "sumflow" in out
        assert "paper-low-rate" in out

    def test_scenario_sweep_smoke_markdown(self, capsys):
        from repro import cli

        assert (
            cli.main(
                [
                    "scenario", "sweep",
                    "--scenarios", "homog-farm-8",
                    "--scale", "smoke",
                    "--markdown",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Cross-scenario ranking" in out
        assert "| metric |" in out

    def test_scenario_sweep_accepts_spaces_around_commas(self, capsys):
        from repro import cli

        assert (
            cli.main(
                [
                    "scenario", "sweep",
                    "--scenarios", " homog-farm-8 , paper-low-rate ,",
                    "--scale", "smoke",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "homog-farm-8" in out and "paper-low-rate" in out

    def test_scenario_registry_entry_in_experiments_cli(self, capsys):
        from repro import cli

        assert cli.main(["--list"]) == 0
        assert "scenario-sweep" in capsys.readouterr().out


class TestRankingHelpers:
    def test_rank_orders_by_completed_then_metric(self):
        columns = {
            "a": {"completed tasks": 100.0, "sumflow": 50.0},
            "b": {"completed tasks": 100.0, "sumflow": 20.0},
            "c": {"completed tasks": 90.0, "sumflow": 1.0},
        }
        assert rank_heuristics(columns, metric="sumflow") == ["b", "a", "c"]

    def test_rank_breaks_exact_ties_by_name(self):
        columns = {
            "b": {"completed tasks": 10.0, "sumflow": 5.0},
            "a": {"completed tasks": 10.0, "sumflow": 5.0},
        }
        assert rank_heuristics(columns) == ["a", "b"]

    def test_ranking_is_a_total_order_independent_of_insertion_order(self):
        """The documented ordering contract: completed desc, metric asc, name
        asc — the same ranking whatever order the mapping was built in."""
        import itertools

        columns = {
            "c": {"completed tasks": 10.0, "sumflow": 5.0},
            "a": {"completed tasks": 10.0, "sumflow": 5.0},
            "b": {"completed tasks": 10.0, "sumflow": 4.0},
            "d": {"completed tasks": 9.0, "sumflow": 1.0},
        }
        expected = ["b", "a", "c", "d"]
        for order in itertools.permutations(columns):
            shuffled = {name: columns[name] for name in order}
            assert rank_heuristics(shuffled, metric="sumflow") == expected

    def test_rank_missing_metric_raises(self):
        with pytest.raises(KeyError):
            rank_heuristics({"a": {"completed tasks": 1.0}}, metric="sumflow")

    def test_rank_missing_completed_tasks_raises(self):
        with pytest.raises(KeyError, match="completed tasks"):
            rank_heuristics({"a": {"sumflow": 5.0}, "b": {"sumflow": 3.0}})

    def test_sweep_metrics_track_campaign_rows(self):
        from repro.experiments.campaign import METRIC_ROW_TO_SUMMARY_FIELD
        from repro.scenarios.sweep import _RANKABLE_METRICS

        assert set(_RANKABLE_METRICS) == set(METRIC_ROW_TO_SUMMARY_FIELD) - {"completed tasks"}

    def test_cross_scenario_ranking_shapes_and_missing_cells(self):
        scenario_columns = {
            "s1": {
                "a": {"completed tasks": 10.0, "sumflow": 5.0},
                "b": {"completed tasks": 10.0, "sumflow": 9.0},
            },
            "s2": {"a": {"completed tasks": 10.0, "sumflow": 3.0}},
        }
        table = cross_scenario_ranking(scenario_columns)
        assert table["a"]["s1"].startswith("#1")
        assert table["b"]["s1"].startswith("#2")
        assert table["b"]["s2"] == "-"
