"""Shared fixtures of the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig, ExperimentScale
from repro.platform.faults import FaultTolerancePolicy, MemoryModel, SpeedNoiseModel
from repro.platform.middleware import GridMiddleware, MiddlewareConfig
from repro.platform.spec import MachineRole, MachineSpec, PlatformSpec
from repro.simulation import Environment
from repro.workload.problems import PAPER_CATALOGUE, matmul_problem, wastecpu_problem
from repro.workload.tasks import Task
from repro.workload.testbed import (
    first_set_platform,
    matmul_metatask,
    second_set_platform,
    wastecpu_metatask,
)


@pytest.fixture
def env() -> Environment:
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic NumPy generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def catalogue():
    """The paper's problem catalogue (Tables 3 and 4)."""
    return PAPER_CATALOGUE


@pytest.fixture
def first_platform() -> PlatformSpec:
    """Testbed of the first experiment set."""
    return first_set_platform()


@pytest.fixture
def second_platform() -> PlatformSpec:
    """Testbed of the second experiment set."""
    return second_set_platform()


@pytest.fixture
def quiet_config() -> MiddlewareConfig:
    """A middleware configuration without noise or memory effects.

    Used by tests that assert exact timings: the ground truth then matches
    the HTM model perfectly.
    """
    return MiddlewareConfig(
        memory_enabled=False,
        noise_model=None,
        monitor_jitter_s=0.0,
        seed=7,
    )


@pytest.fixture
def default_config() -> MiddlewareConfig:
    """The default (paper-like) middleware configuration with a fixed seed."""
    return MiddlewareConfig(seed=7)


@pytest.fixture
def small_matmul_metatask(rng):
    """A small matrix-multiplication metatask (fast to simulate)."""
    return matmul_metatask(count=30, mean_interarrival=20.0, rng=rng, name="test-matmul")


@pytest.fixture
def small_wastecpu_metatask(rng):
    """A small waste-cpu metatask (fast to simulate)."""
    return wastecpu_metatask(count=30, mean_interarrival=20.0, rng=rng, name="test-wastecpu")


@pytest.fixture
def smoke_experiment_config() -> ExperimentConfig:
    """An experiment configuration small enough for unit tests."""
    return ExperimentConfig(scale=ExperimentScale(name="tiny", task_count=40, metatask_count=1, repetitions=1))


@pytest.fixture
def make_task():
    """Factory building tasks of catalogue problems with a running counter."""
    counter = {"n": 0}

    def factory(problem_name: str = "matmul-1200", arrival: float = 0.0) -> Task:
        counter["n"] += 1
        problem = PAPER_CATALOGUE.get(problem_name)
        return Task(task_id=f"t{counter['n']:03d}", problem=problem, arrival=arrival)

    return factory


@pytest.fixture
def single_server_platform() -> PlatformSpec:
    """A platform with a single (artimon) server, used for exact-timing tests."""
    from repro.workload.testbed import paper_platform

    return paper_platform(["artimon"])
