"""Persistence tests: versioned JSONL/CSV round-trips and byte-determinism."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ResultsError
from repro.experiments import ExperimentConfig, ExperimentScale, run_campaign
from repro.results import SCHEMA_VERSION, ResultSet
from repro.workload.testbed import first_set_platform, matmul_metatask

from test_resultset import make_record


def small_campaign(jobs: int = 1):
    config = ExperimentConfig(
        scale=ExperimentScale(
            name="persist", task_count=10, metatask_count=2, repetitions=2
        ),
        seed=2003,
        jobs=jobs,
    )
    metatasks = [
        matmul_metatask(10, 20.0, rng=np.random.default_rng(2003 + i), name=f"persist-m{i}")
        for i in range(2)
    ]
    return run_campaign(
        "persist-test", "persistence test table", first_set_platform(), metatasks, config
    )


@pytest.fixture(scope="module")
def campaign_table():
    return small_campaign()


class TestJsonlRoundTrip:
    def test_round_trip_preserves_records_and_meta(self, campaign_table):
        result_set = campaign_table.result_set
        loaded = ResultSet.from_jsonl(result_set.to_jsonl())
        assert loaded.records == result_set.sorted().records
        assert loaded.meta == result_set.meta

    def test_round_trip_through_a_file(self, campaign_table, tmp_path):
        path = tmp_path / "results.jsonl"
        campaign_table.result_set.save(path)
        loaded = ResultSet.load(path)
        assert loaded == campaign_table.result_set.sorted()

    def test_loaded_records_render_the_identical_table(self, campaign_table, tmp_path):
        path = tmp_path / "results.jsonl"
        campaign_table.result_set.save(path)
        assert ResultSet.load(path).pivot().render() == campaign_table.render()

    def test_float_values_round_trip_exactly(self, campaign_table):
        originals = {r.sort_key: r.metrics for r in campaign_table.result_set}
        for record in ResultSet.from_jsonl(campaign_table.result_set.to_jsonl()):
            assert dict(record.metrics) == dict(originals[record.sort_key])


class TestCsvRoundTrip:
    def test_round_trip_preserves_records(self, campaign_table):
        result_set = campaign_table.result_set
        loaded = ResultSet.from_csv(result_set.to_csv())
        assert loaded.records == result_set.sorted().records

    def test_round_trip_through_a_file(self, campaign_table, tmp_path):
        path = tmp_path / "results.csv"
        campaign_table.result_set.save(path)
        loaded = ResultSet.load(path)
        assert loaded.records == campaign_table.result_set.sorted().records
        assert loaded.pivot().columns == campaign_table.columns


class TestSchemaVersioning:
    def test_jsonl_header_from_the_future_is_rejected(self, campaign_table):
        lines = campaign_table.result_set.to_jsonl().splitlines()
        header = json.loads(lines[0])
        header["schema_version"] = SCHEMA_VERSION + 1
        doctored = "\n".join([json.dumps(header)] + lines[1:])
        with pytest.raises(ResultsError, match="schema version"):
            ResultSet.from_jsonl(doctored)

    def test_jsonl_record_from_the_future_is_rejected(self):
        result_set = ResultSet([make_record()])
        text = result_set.to_jsonl().replace(
            f'"schema_version":{SCHEMA_VERSION}', f'"schema_version":{SCHEMA_VERSION + 1}'
        )
        with pytest.raises(ResultsError, match="schema version"):
            ResultSet.from_jsonl(text)

    def test_csv_from_the_future_is_rejected(self):
        # schema_version sits right after the ``truncated`` column.
        text = ResultSet([make_record()]).to_csv().replace(
            f"false,{SCHEMA_VERSION}", f"false,{SCHEMA_VERSION + 1}"
        )
        with pytest.raises(ResultsError, match="schema version"):
            ResultSet.from_csv(text)

    def test_truncated_jsonl_files_are_rejected(self, campaign_table):
        """A partially-written file (interrupted save) must fail loudly, not
        load a plausible-looking subset."""
        lines = campaign_table.result_set.to_jsonl().splitlines()
        truncated = "\n".join(lines[:3]) + "\n"  # header + 2 of 16 records
        with pytest.raises(ResultsError, match="truncated results file"):
            ResultSet.from_jsonl(truncated)

    def test_non_results_files_are_rejected(self):
        with pytest.raises(ResultsError, match="not a repro results file"):
            ResultSet.from_jsonl('{"something": "else"}\n')
        with pytest.raises(ResultsError, match="empty"):
            ResultSet.from_jsonl("")

    def test_unknown_extension_is_rejected(self, tmp_path):
        with pytest.raises(ResultsError, match="extension"):
            ResultSet([make_record()]).save(tmp_path / "results.xml")
        with pytest.raises(ResultsError, match="extension"):
            ResultSet.load(tmp_path / "results.xml")


class TestByteDeterminism:
    def test_jobs_1_and_jobs_4_save_byte_identical_files(self, campaign_table, tmp_path):
        """The flagship determinism guarantee of the persistence layer."""
        parallel = small_campaign(jobs=4)
        path_serial = tmp_path / "serial.jsonl"
        path_parallel = tmp_path / "parallel.jsonl"
        campaign_table.result_set.save(path_serial)
        parallel.result_set.save(path_parallel)
        assert path_serial.read_bytes() == path_parallel.read_bytes()

        csv_serial = tmp_path / "serial.csv"
        csv_parallel = tmp_path / "parallel.csv"
        campaign_table.result_set.save(csv_serial)
        parallel.result_set.save(csv_parallel)
        assert csv_serial.read_bytes() == csv_parallel.read_bytes()

    def test_serialisation_is_independent_of_accumulation_order(self, campaign_table):
        result_set = campaign_table.result_set
        reversed_set = ResultSet(reversed(result_set.records), meta=result_set.meta)
        assert reversed_set.to_jsonl() == result_set.to_jsonl()
        assert reversed_set.to_csv() == result_set.to_csv()


class TestAtomicSave:
    """``save`` goes through temp-file + ``os.replace`` (the campaign store's
    atomic-write helper): a crash mid-save can never truncate a results file."""

    def test_save_leaves_no_temp_files(self, campaign_table, tmp_path):
        campaign_table.result_set.save(tmp_path / "results.jsonl")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["results.jsonl"]

    def test_interrupted_save_preserves_the_previous_file(
        self, campaign_table, tmp_path, monkeypatch
    ):
        import os as _os

        path = tmp_path / "results.jsonl"
        campaign_table.result_set.save(path)
        before = path.read_bytes()

        def exploding_replace(*args, **kwargs):
            raise OSError("simulated crash during replace")

        monkeypatch.setattr(_os, "replace", exploding_replace)
        with pytest.raises(OSError):
            campaign_table.result_set.save(path)
        # The previous complete file is intact — no truncated half-write.
        assert path.read_bytes() == before
        assert sorted(p.name for p in tmp_path.iterdir()) == ["results.jsonl"]
