"""Tests of the ``repro.api`` facade, streaming observers, the CLI results
commands and the deprecation shims."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro import api
from repro.cli import main as cli_main
from repro.errors import ExperimentError, ResultsError
from repro.experiments import ExperimentConfig, ExperimentScale, run_campaign
from repro.experiments.runner import run_table_experiment
from repro.results import (
    CampaignObserver,
    ProgressObserver,
    ResultSet,
    ResultSetObserver,
    RunRecord,
)
from repro.scenarios import run_sweep, sweep_scenarios
from repro.workload.testbed import first_set_platform, matmul_metatask

SMOKE_SCALE = ExperimentScale(name="api-smoke", task_count=15, metatask_count=1, repetitions=1)


def smoke_config(jobs: int = 1) -> ExperimentConfig:
    return ExperimentConfig(scale=SMOKE_SCALE, seed=2003, jobs=jobs)


@pytest.fixture(scope="module")
def table5():
    return api.run("table5", config=smoke_config())


class TestApiRun:
    def test_run_returns_a_table_carrying_records(self, table5):
        assert table5.experiment_id == "table5"
        assert table5.result_set is not None
        assert len(table5.result_set) == 4  # heuristics × 1 metatask × 1 rep
        assert table5.result_set.pivot().columns == table5.columns

    def test_scale_seed_and_jobs_overrides(self):
        table = api.run("table5", scale=SMOKE_SCALE, seed=2003, jobs=2)
        reference = api.run("table5", config=smoke_config())
        assert table.columns == reference.columns

    def test_named_scales_are_accepted(self):
        # smoke is the registered small scale — just check it resolves.
        table = api.run("table5", scale="smoke", seed=7)
        assert table.result_set.meta["scale"] == "smoke"

    def test_unknown_scale_name_fails_fast(self):
        with pytest.raises(ExperimentError, match="unknown scale"):
            api.run("table5", scale="gigantic")

    def test_records_carry_provenance(self, table5):
        for record in table5.result_set:
            assert record.experiment_id == "table5"
            assert record.config_hash == table5.result_set.meta["config_hash"]
            assert record.seed >= 2003
            assert not record.truncated


class TestApiSweepAndCompare:
    @pytest.fixture(scope="class")
    def sweep_result(self):
        return api.sweep(["paper-low-rate"], config=smoke_config())

    def test_sweep_combines_records_across_scenarios(self, sweep_result):
        result_set = sweep_result.result_set
        assert set(result_set.column("experiment_id")) == {"scenario-paper-low-rate"}
        table = sweep_result.tables["paper-low-rate"]
        assert len(result_set) == len(table.result_set)

    def test_save_load_compare_round_trip(self, sweep_result, tmp_path):
        path = api.save_results(sweep_result, tmp_path / "sweep.jsonl")
        loaded = api.load_results(path)
        diff = api.compare(sweep_result, loaded)
        assert diff.identical
        assert api.compare(path, path).identical

    def test_compare_detects_changed_metrics(self, table5):
        doctored = ResultSet(meta=table5.result_set.meta)
        for record in table5.result_set:
            metrics = dict(record.metrics)
            if record.heuristic == "msf":
                metrics["sum_flow"] = metrics["sum_flow"] + 1.0
            doctored.append(
                RunRecord(
                    experiment_id=record.experiment_id,
                    heuristic=record.heuristic,
                    metatask_index=record.metatask_index,
                    repetition=record.repetition,
                    seed=record.seed,
                    config_hash=record.config_hash,
                    truncated=record.truncated,
                    metrics=metrics,
                )
            )
        diff = api.compare(table5, doctored)
        assert not diff.identical
        assert any(change.what == "sum_flow" for change in diff.changes)
        # a generous relative tolerance swallows the drift
        assert api.compare(table5, doctored, rel_tol=0.5).identical

    def test_compare_reports_missing_records(self, table5):
        subset = table5.result_set.filter(heuristic="msf")
        diff = api.compare(table5, subset)
        assert not diff.identical
        assert len(diff.only_in_a) == 3 and not diff.only_in_b

    def test_compare_rejects_uninterpretable_values(self):
        with pytest.raises(ResultsError, match="cannot interpret"):
            api.compare(42, 43)

    def test_compare_surfaces_duplicate_coordinate_records(self, table5):
        """A doubled set must not diff 'identical' against the original."""
        doubled = table5.result_set.merge(table5.result_set)
        diff = api.compare(doubled, table5)
        assert not diff.identical
        assert any(change.what == "record count" for change in diff.changes)
        # ... while two equally-doubled sets still compare clean
        assert api.compare(doubled, doubled).identical


class TestObservers:
    def test_result_set_observer_streams_every_cell_in_order(self):
        class Recording(CampaignObserver):
            def __init__(self):
                self.started = []
                self.indices = []
                self.ended = []

            def on_campaign_start(self, experiment_id, total_cells):
                self.started.append((experiment_id, total_cells))

            def on_cell_complete(self, index, total, record):
                self.indices.append(index)

            def on_campaign_end(self, result_set):
                self.ended.append(len(result_set))

        recording = Recording()
        incremental = ResultSetObserver()
        table = api.run(
            "table5", config=smoke_config(), observers=[recording, incremental]
        )
        assert recording.started == [("table5", 4)]
        assert recording.indices == [0, 1, 2, 3]
        assert recording.ended == [4]
        assert incremental.result_set.records == table.result_set.records

    def test_streaming_order_is_preserved_under_parallel_execution(self):
        incremental = ResultSetObserver()
        table = api.run("table5", config=smoke_config(jobs=2), observers=[incremental])
        assert incremental.result_set.records == table.result_set.records

    def test_progress_observer_writes_one_line_per_cell(self):
        stream = io.StringIO()
        api.run("table5", config=smoke_config(), observers=[ProgressObserver(stream)])
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 1 + 4 + 1  # start + cells + end
        assert "4 cells planned" in lines[0]
        assert lines[1].startswith("[table5] 1/4 mct")

    def test_observers_never_change_the_numbers(self, table5):
        observed = api.run(
            "table5", config=smoke_config(), observers=[ProgressObserver(io.StringIO())]
        )
        assert observed.columns == table5.columns


class TestDeprecationShims:
    def test_run_table_experiment_warns_and_matches_the_api_path(self):
        config = smoke_config()
        platform = first_set_platform()
        metatask = matmul_metatask(15, 20.0, rng=np.random.default_rng(2003), name="shim")
        with pytest.warns(DeprecationWarning, match="run_table_experiment"):
            shimmed = run_table_experiment("shim", "shim", platform, [metatask], config)
        direct = run_campaign("shim", "shim", platform, [metatask], config)
        assert shimmed.columns == direct.columns
        assert shimmed.result_set.records == direct.result_set.records

    def test_sweep_scenarios_warns_and_matches_the_api_path(self):
        config = smoke_config()
        with pytest.warns(DeprecationWarning, match="sweep_scenarios"):
            shimmed = sweep_scenarios(["paper-low-rate"], config=config)
        direct = api.sweep(["paper-low-rate"], config=config)
        assert shimmed.ranking == direct.ranking
        assert shimmed.result_set.records == direct.result_set.records
        assert (
            shimmed.tables["paper-low-rate"].columns
            == direct.tables["paper-low-rate"].columns
        )

    def test_run_sweep_does_not_warn(self, recwarn):
        run_sweep(["paper-low-rate"], config=smoke_config())
        assert not [w for w in recwarn if issubclass(w.category, DeprecationWarning)]


class TestCliResults:
    def test_save_results_option_then_show(self, tmp_path, capsys):
        path = tmp_path / "t5.jsonl"
        assert (
            cli_main(
                ["table5", "--scale", "smoke", "--seed", "2003", "--save-results", str(path)]
            )
            == 0
        )
        shown = capsys.readouterr().out
        assert path.exists()
        assert cli_main(["results", "show", str(path)]) == 0
        reshown = capsys.readouterr().out
        # the table printed by the run and the one re-rendered from the saved
        # records are the same table
        assert reshown.strip() in shown

    def test_results_diff_identical_and_different(self, tmp_path, capsys):
        table = api.run("table5", config=smoke_config())
        path_a = api.save_results(table, tmp_path / "a.jsonl")
        path_b = api.save_results(table, tmp_path / "b.jsonl")
        assert cli_main(["results", "diff", path_a, path_b]) == 0
        assert "identical" in capsys.readouterr().out

        other = api.run("table5", config=smoke_config().with_seed(7))
        path_c = api.save_results(other, tmp_path / "c.jsonl")
        assert cli_main(["results", "diff", path_a, path_c]) == 1
        assert "difference" in capsys.readouterr().out

    def test_results_show_renders_multi_experiment_files_per_experiment(
        self, tmp_path, capsys
    ):
        table_a = api.run("table5", config=smoke_config())
        table_b = api.run("table6", config=smoke_config())
        merged = table_a.result_set.merge(table_b.result_set)
        path = merged.save(tmp_path / "both.jsonl")
        assert cli_main(["results", "show", str(path)]) == 0
        shown = capsys.readouterr().out
        assert "table5" in shown and "table6" in shown

    def test_save_results_extension_is_validated_before_the_run(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["table5", "--scale", "smoke", "--save-results", "out.parquet"])
        assert "--save-results needs" in capsys.readouterr().err

    def test_unwritable_save_path_fails_cleanly(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            cli_main(
                [
                    "table5",
                    "--scale",
                    "smoke",
                    "--save-results",
                    str(tmp_path / "missing-dir" / "out.jsonl"),
                ]
            )
        assert "could not save results" in capsys.readouterr().err

    def test_negative_rel_tol_is_a_clean_argument_error(self, tmp_path, capsys):
        table = api.run("table5", config=smoke_config())
        path = api.save_results(table, tmp_path / "a.jsonl")
        with pytest.raises(SystemExit):
            cli_main(["results", "diff", path, path, "--rel-tol", "-1"])
        assert "--rel-tol must be >= 0" in capsys.readouterr().err

    def test_results_show_rejects_bad_files(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"not": "results"}\n')
        with pytest.raises(SystemExit):
            cli_main(["results", "show", str(bad)])

    def test_progress_flag_streams_to_stderr_without_touching_stdout(self, capsys):
        assert cli_main(["table5", "--scale", "smoke", "--progress"]) == 0
        progress_out, progress_err = capsys.readouterr()
        assert "cells planned" in progress_err
        assert cli_main(["table5", "--scale", "smoke"]) == 0
        plain_out, plain_err = capsys.readouterr()
        assert progress_out == plain_out
        assert "cells planned" not in plain_err
