"""Tests of the columnar ResultSet: schema, query API and pivot views."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ResultsError
from repro.experiments import ExperimentConfig, ExperimentScale, run_campaign
from repro.metrics.aggregate import Aggregate
from repro.results import (
    METRIC_ROW_TO_SUMMARY_FIELD,
    SCHEMA_VERSION,
    SOONER_ROW,
    ResultSet,
    RunRecord,
    config_fingerprint,
)
from repro.workload.testbed import first_set_platform, matmul_metatask


def make_record(
    experiment_id: str = "exp",
    heuristic: str = "mct",
    metatask_index: int = 0,
    repetition: int = 0,
    seed: int = 42,
    sooner: float = None,
    **metric_overrides,
) -> RunRecord:
    metrics = {
        "n_completed": 25.0,
        "makespan": 100.0,
        "sum_flow": 500.0,
        "max_flow": 50.0,
        "max_stretch": 2.0,
        "mean_flow": 20.0,
        "mean_stretch": 1.5,
    }
    metrics.update(metric_overrides)
    if sooner is not None:
        metrics["sooner"] = sooner
    return RunRecord(
        experiment_id=experiment_id,
        heuristic=heuristic,
        metatask_index=metatask_index,
        repetition=repetition,
        seed=seed,
        config_hash="abc123def456",
        metrics=metrics,
    )


def tiny_table(jobs: int = 1, repetitions: int = 1, experiment_id: str = "rs-test"):
    config = ExperimentConfig(
        scale=ExperimentScale(
            name="tiny", task_count=20, metatask_count=1, repetitions=repetitions
        ),
        seed=2003,
        jobs=jobs,
    )
    metatask = matmul_metatask(20, 20.0, rng=np.random.default_rng(2003), name="rs-test")
    return run_campaign(
        experiment_id, "a tiny table", first_set_platform(), [metatask], config
    )


class TestRunRecord:
    def test_sort_key_is_the_canonical_coordinate_tuple(self):
        record = make_record("table5", "msf", 2, 1)
        assert record.sort_key == ("table5", "msf", 2, 1)

    def test_json_dict_round_trip(self):
        record = make_record(sooner=12.0)
        assert RunRecord.from_json_dict(record.to_json_dict()) == record

    def test_future_schema_version_is_rejected(self):
        data = make_record().to_json_dict()
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ResultsError, match="schema version"):
            RunRecord.from_json_dict(data)

    def test_config_fingerprint_ignores_execution_only_knobs(self):
        config = ExperimentConfig(seed=2003)
        assert config_fingerprint(config) == config_fingerprint(config.with_jobs(8))

    def test_config_fingerprint_tracks_number_determining_fields(self):
        config = ExperimentConfig(seed=2003)
        assert config_fingerprint(config) != config_fingerprint(config.with_seed(7))


class TestResultSetBasics:
    def test_append_iter_and_records(self):
        records = [make_record(heuristic=h) for h in ("mct", "msf")]
        result_set = ResultSet(records)
        assert len(result_set) == 2
        assert result_set.records == records
        assert list(result_set) == records

    def test_metric_columns_stay_aligned_across_sparse_metrics(self):
        result_set = ResultSet(
            [make_record(heuristic="mct"), make_record(heuristic="msf", sooner=9.0)]
        )
        assert result_set.column("sooner") == [None, 9.0]
        assert result_set.records[0].metric("sooner") is None

    def test_column_rejects_unknown_names(self):
        with pytest.raises(ResultsError, match="unknown column"):
            ResultSet([make_record()]).column("nope")

    def test_merge_concatenates_and_keeps_left_meta(self):
        a = ResultSet([make_record(repetition=0)], meta={"title": "a"})
        b = ResultSet([make_record(repetition=1)], meta={"title": "b"})
        merged = a.merge(b)
        assert len(merged) == 2
        assert merged.meta == {"title": "a"}


class TestQueryApi:
    def test_filter_by_field_equality(self):
        result_set = ResultSet(
            [make_record(heuristic=h, repetition=r) for h in ("mct", "msf") for r in (0, 1)]
        )
        msf = result_set.filter(heuristic="msf")
        assert len(msf) == 2
        assert set(msf.column("heuristic")) == {"msf"}

    def test_filter_with_predicate(self):
        result_set = ResultSet([make_record(repetition=r) for r in range(4)])
        odd = result_set.filter(lambda record: record.repetition % 2 == 1)
        assert [r.repetition for r in odd] == [1, 3]

    def test_filter_rejects_unknown_field(self):
        with pytest.raises(ResultsError, match="unknown filter field"):
            ResultSet([make_record()]).filter(flavour="mint")

    def test_group_by_single_and_multiple_fields(self):
        result_set = ResultSet(
            [make_record(heuristic=h, metatask_index=m) for h in ("mct", "msf") for m in (0, 1)]
        )
        by_heuristic = result_set.group_by("heuristic")
        assert list(by_heuristic) == ["mct", "msf"]
        assert all(len(group) == 2 for group in by_heuristic.values())
        by_pair = result_set.group_by("heuristic", "metatask_index")
        assert list(by_pair) == [("mct", 0), ("mct", 1), ("msf", 0), ("msf", 1)]

    def test_aggregate_whole_set_and_grouped(self):
        result_set = ResultSet(
            [
                make_record(heuristic="mct", sum_flow=100.0),
                make_record(heuristic="mct", repetition=1, sum_flow=200.0),
                make_record(heuristic="msf", sum_flow=60.0),
            ]
        )
        overall = result_set.aggregate("sum_flow")
        assert isinstance(overall, Aggregate)
        assert overall.mean == pytest.approx(120.0)
        grouped = result_set.aggregate("sum_flow", by="heuristic")
        assert grouped["mct"].mean == pytest.approx(150.0)
        assert grouped["msf"].n == 1
        assert result_set.mean("sum_flow") == pytest.approx(120.0)

    def test_aggregate_skips_inapplicable_values(self):
        result_set = ResultSet(
            [make_record(heuristic="mct"), make_record(heuristic="msf", sooner=10.0)]
        )
        assert result_set.aggregate("sooner").n == 1

    def test_aggregate_rejects_unknown_metric(self):
        with pytest.raises(ResultsError, match="unknown metric"):
            ResultSet([make_record()]).aggregate("nope")


class TestPivot:
    def test_campaign_table_is_a_pure_pivot_view(self):
        """The acceptance-criterion invariant: ``table.columns`` equals the
        pivot of the records the campaign streamed."""
        table = tiny_table()
        assert table.result_set is not None
        assert table.result_set.pivot().columns == table.columns

    def test_paper_pivot_rows_and_sooner_row(self):
        table = tiny_table()
        columns = table.result_set.pivot().columns
        for heuristic, column in columns.items():
            assert set(METRIC_ROW_TO_SUMMARY_FIELD) <= set(column)
            if heuristic == "mct":
                assert SOONER_ROW not in column
            else:
                assert SOONER_ROW in column

    def test_pivot_render_matches_table_render(self):
        table = tiny_table()
        assert table.result_set.pivot().render() == table.render()

    def test_generic_pivot_by_fields(self):
        result_set = ResultSet(
            [
                make_record("exp-a", "mct", sum_flow=100.0),
                make_record("exp-b", "mct", sum_flow=300.0),
                make_record("exp-a", "msf", sum_flow=80.0),
            ]
        )
        table = result_set.pivot(rows="experiment_id", cols="heuristic", metric="sum_flow")
        assert table.columns["mct"] == {"exp-a": 100.0, "exp-b": 300.0}
        assert table.columns["msf"] == {"exp-a": 80.0}

    def test_generic_pivot_requires_a_metric(self):
        with pytest.raises(ResultsError, match="metric"):
            ResultSet([make_record()]).pivot(rows="experiment_id")

    def test_pivot_rejects_unknown_fields(self):
        with pytest.raises(ResultsError, match="unknown pivot"):
            ResultSet([make_record()]).pivot(cols="flavour")
