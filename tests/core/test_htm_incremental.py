"""Equivalence of the HTM's incremental prediction mode with the legacy path.

The incremental mode caches the free-run "without the new task" baseline of
each server trace instead of deep-copying and re-simulating the network per
candidate server.  These tests drive two HTMs — one per mode — through the
same randomized sequences of commits, predictions, completions and clock
advances, and assert that every :class:`HtmPrediction` matches.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.htm import HistoricalTraceManager
from repro.workload.problems import matmul_problem
from repro.workload.tasks import Task

SERVERS = ("artimon", "pulney", "cabestan")


def make_pair(**kwargs):
    """Two HTMs over the same servers: legacy and incremental."""
    pair = (
        HistoricalTraceManager(incremental_predictions=False, **kwargs),
        HistoricalTraceManager(incremental_predictions=True, **kwargs),
    )
    for htm in pair:
        for server in SERVERS:
            htm.register_server(server, lambda problem, s=server: problem.costs_on(s))
    return pair


def random_task(rng: np.random.Generator, task_id: str, arrival: float) -> Task:
    problem = matmul_problem(int(rng.choice([1200, 1500, 1800])))
    return Task(task_id=task_id, problem=problem, arrival=arrival)


def assert_predictions_match(legacy, incremental):
    assert incremental.server == legacy.server
    assert incremental.new_task_completion == pytest.approx(
        legacy.new_task_completion, rel=1e-9, abs=1e-6
    )
    assert set(incremental.completions_without) == set(legacy.completions_without)
    assert set(incremental.completions_with) == set(legacy.completions_with)
    for task_id, value in legacy.completions_without.items():
        assert incremental.completions_without[task_id] == pytest.approx(
            value, rel=1e-9, abs=1e-6
        )
    for task_id, value in legacy.perturbations.items():
        assert incremental.perturbations[task_id] == pytest.approx(value, abs=1e-6)


class TestIncrementalEquivalence:
    @pytest.mark.parametrize("sweep_seed", [0, 1, 2, 3, 4])
    def test_randomized_mapped_task_scenario_sweep(self, sweep_seed):
        """Random program of commits / predict_all / completions over 3 servers."""
        rng = np.random.default_rng(sweep_seed)
        legacy, incremental = make_pair()
        now = 0.0
        committed = []  # (task_id, server)
        counter = 0

        for _ in range(40):
            now += float(rng.exponential(10.0))
            action = rng.random()
            if action < 0.55 or not committed:
                # Predict on every candidate server, then commit on a random one.
                counter += 1
                task = random_task(rng, f"t{counter:03d}", now)
                predictions_legacy = legacy.predict_all(SERVERS, task, now)
                predictions_incremental = incremental.predict_all(SERVERS, task, now)
                for server in SERVERS:
                    assert_predictions_match(
                        predictions_legacy[server], predictions_incremental[server]
                    )
                server = SERVERS[int(rng.integers(len(SERVERS)))]
                legacy.commit(server, task, now)
                incremental.commit(server, task, now)
                committed.append(task.task_id)
            elif action < 0.8:
                # The platform reports a completion (possibly early).
                task_id = committed.pop(int(rng.integers(len(committed))))
                legacy.notify_completion(task_id, now)
                incremental.notify_completion(task_id, now)
            else:
                # Pure clock advance: must keep the cache valid, not wrong.
                legacy.advance_to(now)
                incremental.advance_to(now)

        # The traces themselves agree at the end of the program.
        for server in SERVERS:
            a = legacy.predicted_completions(server)
            b = incremental.predicted_completions(server)
            assert set(a) == set(b)
            for task_id, value in a.items():
                assert b[task_id] == pytest.approx(value, rel=1e-9, abs=1e-6)

    def test_repeated_predictions_at_the_same_date_hit_the_cache(self):
        legacy, incremental = make_pair()
        for i in range(10):
            task = Task(f"t{i}", matmul_problem(1500), arrival=0.0)
            legacy.commit("artimon", task, float(i))
            incremental.commit("artimon", task, float(i))
        trace = incremental.trace("artimon")
        new_task = Task("new", matmul_problem(1800), arrival=20.0)

        incremental.predict("artimon", new_task, now=20.0)
        cached = trace._cached_completions
        assert cached is not None
        incremental.predict("artimon", new_task, now=20.0)
        assert trace._cached_completions is cached  # second call reused the baseline

        assert_predictions_match(
            legacy.predict("artimon", new_task, now=20.0),
            incremental.predict("artimon", new_task, now=20.0),
        )

    def test_commit_invalidates_the_cached_baseline(self):
        _, incremental = make_pair()
        first = Task("t0", matmul_problem(1200), arrival=0.0)
        incremental.commit("artimon", first, 0.0)
        probe = Task("probe", matmul_problem(1500), arrival=1.0)
        before = incremental.predict("artimon", probe, now=1.0)
        assert "t0" in before.completions_without

        second = Task("t1", matmul_problem(1800), arrival=2.0)
        incremental.commit("artimon", second, 2.0)
        after = incremental.predict("artimon", probe, now=2.0)
        # The baseline now accounts for the newly committed task: t0 is
        # delayed by the shared cpu, which a stale cache would have missed.
        assert after.completions_without["t0"] > before.completions_without["t0"] + 1.0
        assert "t1" in after.completions_without

    def test_completion_notification_invalidates_the_cached_baseline(self):
        _, incremental = make_pair()
        a = Task("a", matmul_problem(1500), arrival=0.0)
        b = Task("b", matmul_problem(1500), arrival=0.0)
        incremental.commit("artimon", a, 0.0)
        incremental.commit("artimon", b, 0.0)
        probe = Task("probe", matmul_problem(1200), arrival=1.0)
        before = incremental.predict("artimon", probe, now=1.0)

        # "a" finishes much earlier than simulated: the trace re-anchors.
        incremental.notify_completion("a", at=2.0)
        after = incremental.predict("artimon", probe, now=2.0)
        assert "a" not in after.completions_without
        assert after.completions_without["b"] < before.completions_without["b"]

    def test_equivalence_with_communication_model_disabled(self):
        legacy, incremental = make_pair(model_communication=False)
        rng = np.random.default_rng(7)
        now = 0.0
        for i in range(8):
            now += float(rng.exponential(5.0))
            task = random_task(rng, f"t{i}", now)
            assert_predictions_match(
                legacy.predict("pulney", task, now),
                incremental.predict("pulney", task, now),
            )
            legacy.commit("pulney", task, now)
            incremental.commit("pulney", task, now)

    def test_middleware_config_knob_reaches_the_htm(self):
        from repro.platform.middleware import GridMiddleware, MiddlewareConfig
        from repro.workload.testbed import first_set_platform

        on = GridMiddleware(first_set_platform(), "msf", config=MiddlewareConfig(seed=1))
        off = GridMiddleware(
            first_set_platform(), "msf", config=MiddlewareConfig(seed=1, htm_incremental=False)
        )
        assert on.agent.htm.incremental_predictions is True
        assert off.agent.htm.incremental_predictions is False
