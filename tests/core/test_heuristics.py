"""Tests of the scheduling heuristics on hand-crafted contexts."""

from __future__ import annotations

import pytest

from repro.core.heuristics import (
    HEURISTIC_REGISTRY,
    PAPER_HEURISTICS,
    FastestServerHeuristic,
    HmctHeuristic,
    MctHeuristic,
    MinLoadHeuristic,
    MniHeuristic,
    MpHeuristic,
    MsfHeuristic,
    RandomHeuristic,
    RoundRobinHeuristic,
    SchedulingContext,
    ServerInfo,
    available_heuristics,
    create_heuristic,
)
from repro.core.htm import HistoricalTraceManager
from repro.errors import NoCandidateServer, SchedulingError
from repro.workload.problems import PhaseCosts, matmul_problem
from repro.workload.tasks import Task


def info(name, compute, load=0.0, correction=0, up=True, cpu_count=1, input_s=2.0, output_s=1.0):
    return ServerInfo(
        name=name,
        costs=PhaseCosts(input_s, compute, output_s),
        reported_load=load,
        pending_correction=correction,
        is_up=up,
        cpu_count=cpu_count,
    )


def context_without_htm(task=None, servers=()):
    task = task or Task(task_id="t", problem=matmul_problem(1200), arrival=0.0)
    return SchedulingContext(now=0.0, task=task, servers=tuple(servers))


def context_with_htm(servers=("artimon", "pulney"), now=0.0, task=None):
    htm = HistoricalTraceManager()
    infos = []
    for server in servers:
        htm.register_server(server, lambda p, s=server: p.costs_on(s))
        infos.append(
            ServerInfo(name=server, costs=matmul_problem(1200).costs_on(server))
        )
    task = task or Task(task_id="new", problem=matmul_problem(1200), arrival=now)
    return SchedulingContext(now=now, task=task, servers=tuple(infos), htm=htm), htm


class TestRegistry:
    def test_paper_heuristics_are_registered(self):
        for name in PAPER_HEURISTICS:
            assert name in HEURISTIC_REGISTRY
            assert create_heuristic(name).name == name

    def test_available_heuristics_is_sorted(self):
        names = available_heuristics()
        assert names == sorted(names)
        assert "msf" in names

    def test_unknown_heuristic_raises(self):
        with pytest.raises(SchedulingError):
            create_heuristic("does-not-exist")

    def test_kwargs_are_forwarded(self):
        heuristic = create_heuristic("msf", memory_aware=True, memory_limits={"a": 10.0})
        assert isinstance(heuristic, MsfHeuristic)
        assert heuristic.memory_aware


class TestMct:
    def test_estimate_accounts_for_load(self):
        heuristic = MctHeuristic()
        idle = info("idle", compute=10.0, load=0.0)
        busy = info("busy", compute=10.0, load=3.0)
        assert heuristic.estimate_completion(idle, now=0.0) == pytest.approx(13.0)
        assert heuristic.estimate_completion(busy, now=0.0) == pytest.approx(43.0)

    def test_picks_minimum_estimated_completion(self):
        heuristic = MctHeuristic()
        decision = heuristic.select(
            context_without_htm(servers=[info("slow", 100.0), info("fast", 10.0)])
        )
        assert decision.server == "fast"
        assert decision.scores["slow"] > decision.scores["fast"]

    def test_load_correction_steers_away_from_recently_loaded_server(self):
        heuristic = MctHeuristic()
        # "fast" got 5 assignments since the last report: MCT should avoid it.
        fast = info("fast", compute=10.0, load=0.0, correction=5)
        other = info("other", compute=30.0, load=0.0, correction=0)
        assert heuristic.select(context_without_htm(servers=[fast, other])).server == "other"
        # Without the correction mechanism it would still pick "fast".
        uncorrected = MctHeuristic(use_load_correction=False)
        assert uncorrected.select(context_without_htm(servers=[fast, other])).server == "fast"

    def test_dual_cpu_increases_availability(self):
        heuristic = MctHeuristic()
        single = info("single", compute=10.0, load=1.0, cpu_count=1)
        dual = info("dual", compute=10.0, load=1.0, cpu_count=2)
        assert heuristic.estimate_completion(dual, 0.0) < heuristic.estimate_completion(single, 0.0)

    def test_down_servers_are_excluded(self):
        heuristic = MctHeuristic()
        decision = heuristic.select(
            context_without_htm(servers=[info("down", 1.0, up=False), info("up", 100.0)])
        )
        assert decision.server == "up"

    def test_no_candidate_raises(self):
        with pytest.raises(NoCandidateServer):
            MctHeuristic().select(context_without_htm(servers=[info("down", 1.0, up=False)]))


class TestHmct:
    def test_requires_htm(self):
        with pytest.raises(SchedulingError):
            HmctHeuristic().select(context_without_htm(servers=[info("a", 1.0)]))

    def test_picks_fastest_server_when_all_idle(self):
        context, _ = context_with_htm()
        decision = HmctHeuristic().select(context)
        # pulney is the fastest for matmul-1200 (3 + 14 + 1 = 18s vs 22s).
        assert decision.server == "pulney"
        assert decision.estimated_completion == pytest.approx(18.0)

    def test_accounts_for_already_mapped_tasks(self):
        context, htm = context_with_htm()
        # Load pulney with two large tasks: artimon becomes the better choice.
        for i in range(2):
            htm.commit("pulney", Task(f"busy{i}", matmul_problem(1800), arrival=0.0), now=0.0)
        decision = HmctHeuristic().select(context)
        assert decision.server == "artimon"

    def test_predictions_are_cached_in_the_context(self):
        context, _ = context_with_htm()
        HmctHeuristic().select(context)
        assert set(context.predictions) == {"artimon", "pulney"}


class TestMp:
    def test_tie_break_on_completion_when_no_perturbation(self):
        context, _ = context_with_htm()
        decision = MpHeuristic().select(context)
        assert decision.server == "pulney"  # both perturbations are 0

    def test_prefers_idle_slow_server_over_perturbing_fast_one(self):
        context, htm = context_with_htm()
        htm.commit("pulney", Task("running", matmul_problem(1800), arrival=0.0), now=0.0)
        decision = MpHeuristic().select(context)
        # mapping on pulney would delay "running"; artimon is idle.
        assert decision.server == "artimon"
        assert decision.scores["pulney"] > 0.0
        assert decision.scores["artimon"] == pytest.approx(0.0)


class TestMsf:
    def test_balances_perturbation_and_new_task_flow(self):
        context, htm = context_with_htm()
        htm.commit("pulney", Task("running", matmul_problem(1200), arrival=0.0), now=0.0)
        decision = MsfHeuristic().select(context)
        # scores are sum_flow increases; the chosen server has the smallest one
        assert decision.server in ("artimon", "pulney")
        chosen_score = decision.scores[decision.server]
        assert chosen_score == pytest.approx(min(decision.scores.values()))

    def test_memory_aware_variant_skips_saturated_servers(self):
        context, htm = context_with_htm()
        heuristic = MsfHeuristic(memory_aware=True, memory_limits={"pulney": 50.0, "artimon": 1e9})
        heuristic.notify_commit("pulney", 40.0)
        task = context.task  # matmul-1200 needs ~33 MB: pulney would overflow
        decision = heuristic.select(context)
        assert decision.server == "artimon"
        heuristic.notify_release("pulney", 40.0)
        decision = heuristic.select(
            SchedulingContext(now=0.0, task=task, servers=context.servers, htm=htm)
        )
        assert decision.server == "pulney"

    def test_memory_aware_falls_back_when_everything_is_saturated(self):
        context, _ = context_with_htm()
        heuristic = MsfHeuristic(memory_aware=True, memory_limits={"pulney": 1.0, "artimon": 1.0})
        decision = heuristic.select(context)
        assert decision.server in ("artimon", "pulney")


class TestMni:
    def test_minimises_number_of_perturbed_tasks(self):
        context, htm = context_with_htm()
        # pulney runs two tasks, artimon runs one bigger task.
        htm.commit("pulney", Task("p1", matmul_problem(1200), arrival=0.0), now=0.0)
        htm.commit("pulney", Task("p2", matmul_problem(1200), arrival=0.0), now=0.0)
        htm.commit("artimon", Task("a1", matmul_problem(1800), arrival=0.0), now=0.0)
        decision = MniHeuristic().select(context)
        assert decision.server == "artimon"  # 1 perturbed task instead of 2


class TestExtras:
    def test_random_only_picks_live_candidates(self):
        import numpy as np

        heuristic = RandomHeuristic(rng=np.random.default_rng(0))
        servers = [info("down", 1.0, up=False), info("a", 1.0), info("b", 1.0)]
        for _ in range(20):
            assert heuristic.select(context_without_htm(servers=servers)).server in ("a", "b")

    def test_round_robin_cycles_in_name_order(self):
        heuristic = RoundRobinHeuristic()
        servers = [info("b", 1.0), info("a", 1.0)]
        picks = [heuristic.select(context_without_htm(servers=servers)).server for _ in range(4)]
        assert picks == ["a", "b", "a", "b"]

    def test_min_load_prefers_least_loaded(self):
        heuristic = MinLoadHeuristic()
        decision = heuristic.select(
            context_without_htm(servers=[info("busy", 1.0, load=4.0), info("idle", 50.0, load=0.0)])
        )
        assert decision.server == "idle"

    def test_fastest_ignores_load_entirely(self):
        heuristic = FastestServerHeuristic()
        decision = heuristic.select(
            context_without_htm(servers=[info("fast", 5.0, load=50.0), info("slow", 50.0)])
        )
        assert decision.server == "fast"


class TestContext:
    def test_server_lookup_and_unknown_server(self):
        context = context_without_htm(servers=[info("a", 1.0)])
        assert context.server("a").name == "a"
        with pytest.raises(SchedulingError):
            context.server("zzz")

    def test_corrected_load_is_never_negative(self):
        assert info("a", 1.0, load=0.0, correction=-5).corrected_load == 0.0


class _InfinitePredictionHtm:
    """Stub HTM whose predictions are all unusable (every score infinite).

    Exercises the defensive no-candidate path of the selection loops: no
    comparison against ``inf`` scores ever succeeds, so no server can be
    picked.  Before the fix this died on a bare ``assert`` (which silently
    passes under ``python -O``); now every heuristic raises
    :class:`NoCandidateServer` like the rest of the stack.
    """

    def predict(self, server, task, now):
        import math
        from types import SimpleNamespace

        return SimpleNamespace(
            server=server,
            new_task_completion=math.inf,
            sum_flow_increase=math.inf,
            sum_perturbation=math.inf,
            n_perturbed=math.inf,
            perturbations={},
        )


class TestNoCandidateHandling:
    """All heuristics raise NoCandidateServer instead of dying on asserts."""

    def _stub_context(self, servers=("a", "b")):
        task = Task(task_id="t", problem=matmul_problem(1200), arrival=0.0)
        infos = tuple(info(name, 10.0) for name in servers)
        return SchedulingContext(
            now=0.0, task=task, servers=infos, htm=_InfinitePredictionHtm()
        )

    @pytest.mark.parametrize(
        "heuristic_cls", [HmctHeuristic, MpHeuristic, MsfHeuristic, MniHeuristic]
    )
    def test_htm_heuristics_raise_when_every_score_is_infinite(self, heuristic_cls):
        with pytest.raises(NoCandidateServer):
            heuristic_cls().select(self._stub_context())

    def test_mct_raises_when_every_estimate_is_infinite(self):
        import math

        unusable = info("a", compute=math.inf)
        with pytest.raises(NoCandidateServer):
            MctHeuristic().select(context_without_htm(servers=[unusable]))

    def test_msf_raises_with_zero_live_candidates(self):
        """The issue's scenario: every server down, MSF must raise (not assert)."""
        task = Task(task_id="t", problem=matmul_problem(1200), arrival=0.0)
        context = SchedulingContext(
            now=0.0,
            task=task,
            servers=(info("down-1", 10.0, up=False), info("down-2", 10.0, up=False)),
            htm=_InfinitePredictionHtm(),
        )
        with pytest.raises(NoCandidateServer):
            MsfHeuristic().select(context)
