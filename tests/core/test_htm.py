"""Tests of the Historical Trace Manager."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.htm import HistoricalTraceManager
from repro.errors import SchedulingError
from repro.workload.problems import PAPER_CATALOGUE, matmul_problem
from repro.workload.tasks import Task


def make_htm(servers=("artimon", "pulney"), **kwargs) -> HistoricalTraceManager:
    htm = HistoricalTraceManager(**kwargs)
    for server in servers:
        htm.register_server(server, lambda problem, s=server: problem.costs_on(s))
    return htm


def task_of(size: int, task_id: str, arrival: float = 0.0) -> Task:
    return Task(task_id=task_id, problem=matmul_problem(size), arrival=arrival)


class TestRegistration:
    def test_register_and_list_servers(self):
        htm = make_htm()
        assert set(htm.servers()) == {"artimon", "pulney"}
        assert htm.has_server("artimon")
        assert not htm.has_server("valette")

    def test_duplicate_registration_rejected(self):
        htm = make_htm()
        with pytest.raises(SchedulingError):
            htm.register_server("artimon", lambda p: p.costs_on("artimon"))

    def test_unknown_server_access_rejected(self):
        htm = make_htm()
        with pytest.raises(SchedulingError):
            htm.trace("valette")

    def test_unregister_forgets_placements(self):
        htm = make_htm()
        task = task_of(1200, "t1")
        htm.commit("artimon", task, now=0.0)
        htm.unregister_server("artimon")
        assert htm.placement_of("t1") is None


class TestPredictions:
    def test_empty_server_prediction_is_the_unloaded_duration(self):
        htm = make_htm()
        task = task_of(1200, "t1")
        prediction = htm.predict("artimon", task, now=100.0)
        # artimon matmul-1200: 3 + 18 + 1 = 22 seconds, starting at t=100.
        assert prediction.new_task_completion == pytest.approx(122.0)
        assert prediction.sum_perturbation == 0.0
        assert prediction.n_perturbed == 0
        assert prediction.predicted_flow == pytest.approx(22.0)

    def test_prediction_does_not_modify_the_trace(self):
        htm = make_htm()
        task = task_of(1200, "t1")
        htm.predict("artimon", task, now=0.0)
        assert htm.tracked_task_count("artimon") == 0

    def test_perturbation_of_compute_sharing(self):
        """Two compute-heavy tasks on the same CPU delay each other measurably."""
        htm = make_htm()
        first = task_of(1800, "first")   # artimon: 8 + 53 + 2 = 63s
        htm.commit("artimon", first, now=0.0)
        second = task_of(1800, "second")
        prediction = htm.predict("artimon", second, now=0.0)
        assert prediction.perturbations["first"] > 0
        assert prediction.n_perturbed == 1
        # The second task cannot finish before twice the compute time.
        assert prediction.new_task_completion > 63.0
        assert prediction.sum_flow_increase == pytest.approx(
            prediction.sum_perturbation + prediction.predicted_flow
        )

    def test_perturbation_zero_on_another_server(self):
        htm = make_htm()
        htm.commit("artimon", task_of(1800, "first"), now=0.0)
        prediction = htm.predict("pulney", task_of(1800, "second"), now=0.0)
        assert prediction.sum_perturbation == 0.0

    def test_fig1_style_remaining_time_decision(self):
        """The HTM prefers the server whose running task finishes first."""
        htm = make_htm(servers=("s1", "s2"))
        # Give both servers an identical catalogue cost via a custom provider:
        # use matmul-1200 on artimon costs for both (22s) and matmul-1800 (63s).
        short = task_of(1200, "short")
        long = task_of(1800, "long")
        htm = HistoricalTraceManager()
        for server in ("s1", "s2"):
            htm.register_server(server, lambda p: p.costs_on("artimon"))
        htm.commit("s1", short, now=0.0)
        htm.commit("s2", long, now=0.0)
        new = task_of(1500, "new")
        p1 = htm.predict("s1", new, now=10.0)
        p2 = htm.predict("s2", new, now=10.0)
        assert p1.new_task_completion < p2.new_task_completion

    def test_predict_all_covers_every_candidate(self):
        htm = make_htm()
        predictions = htm.predict_all(["artimon", "pulney"], task_of(1200, "t"), now=0.0)
        assert set(predictions) == {"artimon", "pulney"}


class TestCommitAndSync:
    def test_commit_tracks_placement_and_local_number(self):
        htm = make_htm()
        record1 = htm.commit("artimon", task_of(1200, "t1"), now=0.0)
        record2 = htm.commit("artimon", task_of(1500, "t2"), now=5.0)
        assert htm.placement_of("t1") == "artimon"
        assert record1.local_number == 1
        assert record2.local_number == 2
        assert htm.tracked_task_count("artimon") == 2

    def test_double_commit_rejected(self):
        htm = make_htm()
        task = task_of(1200, "t1")
        htm.commit("artimon", task, now=0.0)
        with pytest.raises(SchedulingError):
            htm.commit("pulney", task, now=0.0)

    def test_completion_notification_removes_the_task(self):
        htm = make_htm()
        htm.commit("artimon", task_of(1200, "t1"), now=0.0)
        htm.notify_completion("t1", at=30.0)
        assert htm.placement_of("t1") is None
        assert htm.tracked_task_count("artimon") == 0

    def test_early_completion_reanchors_the_trace(self):
        htm = make_htm()
        htm.commit("artimon", task_of(1800, "slow"), now=0.0)
        htm.commit("artimon", task_of(1200, "other"), now=0.0)
        # The platform says "slow" finished far earlier than simulated.
        htm.notify_completion("slow", at=5.0)
        predictions = htm.predicted_completions("artimon")
        assert "slow" not in predictions
        # "other" now finishes earlier than it would have with "slow" around.
        assert predictions["other"] < 22.0 + 63.0

    def test_resync_disabled_keeps_the_simulated_trace(self):
        htm = make_htm(resync_on_completion=False)
        htm.commit("artimon", task_of(1800, "slow"), now=0.0)
        htm.notify_completion("slow", at=5.0)
        # The placement is forgotten but the simulated load remains.
        assert htm.placement_of("slow") is None
        assert htm.tracked_task_count("artimon") == 1

    def test_failure_notification_removes_running_task(self):
        htm = make_htm()
        htm.commit("artimon", task_of(1800, "t1"), now=0.0)
        htm.notify_failure("t1", at=10.0)
        assert htm.tracked_task_count("artimon") == 0

    def test_clear_server_drops_everything(self):
        htm = make_htm()
        for i in range(3):
            htm.commit("pulney", task_of(1200, f"t{i}"), now=float(i))
        htm.clear_server("pulney", at=10.0)
        assert htm.tracked_task_count("pulney") == 0
        assert htm.placement_of("t0") is None

    def test_unknown_completion_is_ignored(self):
        htm = make_htm()
        htm.notify_completion("ghost", at=1.0)  # must not raise

    def test_model_communication_off_uses_compute_only(self):
        htm_full = make_htm()
        htm_compute = make_htm(model_communication=False)
        task = task_of(1800, "t1")
        full = htm_full.predict("artimon", task, now=0.0)
        compute_only = htm_compute.predict("artimon", task, now=0.0)
        assert full.new_task_completion == pytest.approx(63.0)
        assert compute_only.new_task_completion == pytest.approx(53.0)

    def test_gantt_chart_of_a_trace(self):
        htm = make_htm()
        htm.commit("artimon", task_of(1200, "t1"), now=0.0)
        htm.commit("artimon", task_of(1500, "t2"), now=5.0)
        chart = htm.gantt("artimon")
        assert len(chart) == 2
        assert chart.row("t1").end is not None
        text = chart.render()
        assert "t1" in text and "t2" in text


class TestPerturbationProperties:
    @given(
        sizes=st.lists(st.sampled_from([1200, 1500, 1800]), min_size=1, max_size=8),
        new_size=st.sampled_from([1200, 1500, 1800]),
    )
    @settings(max_examples=30, deadline=None)
    def test_predictions_are_consistent_with_commitment(self, sizes, new_size):
        """The completion predicted for the new task equals the completion the
        trace simulates once the task is actually committed."""
        htm = make_htm()
        for i, size in enumerate(sizes):
            htm.commit("artimon", task_of(size, f"t{i}"), now=float(i))
        now = float(len(sizes))
        new_task = task_of(new_size, "new")
        prediction = htm.predict("artimon", new_task, now=now)
        htm.commit("artimon", new_task, now=now)
        simulated = htm.trace("artimon").network.copy().run_to_completion()
        assert simulated["new"] == pytest.approx(prediction.new_task_completion, rel=1e-9)
        for task_id, completion in prediction.completions_with.items():
            assert simulated[task_id] == pytest.approx(completion, rel=1e-9)

    @given(sizes=st.lists(st.sampled_from([1200, 1500, 1800]), min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_sum_perturbation_is_finite_and_not_strongly_negative(self, sizes):
        htm = make_htm()
        for i, size in enumerate(sizes):
            htm.commit("pulney", task_of(size, f"t{i}"), now=0.0)
        prediction = htm.predict("pulney", task_of(1500, "new"), now=1.0)
        assert prediction.sum_perturbation >= -1e-6
        assert prediction.new_task_completion >= 1.0
