"""Tests of Gantt charts, HTM records and the perturbation report."""

from __future__ import annotations

import pytest

from repro.core.gantt import GanttChart, GanttPhase, GanttRow, chart_from_states
from repro.core.perturbation import CandidateSummary, PerturbationReport
from repro.core.records import HtmPrediction, TracedTask
from repro.simulation.fluid import FluidNetwork, FluidStage


def build_network_chart():
    network = FluidNetwork({"net_in": 1.0, "cpu": 1.0, "net_out": 1.0})
    network.add_task("t1", arrival=0.0, stages=(
        FluidStage("net_in", 2.0), FluidStage("cpu", 10.0), FluidStage("net_out", 1.0)))
    network.add_task("t2", arrival=5.0, stages=(
        FluidStage("net_in", 2.0), FluidStage("cpu", 10.0), FluidStage("net_out", 1.0)))
    network.run_to_completion()
    return chart_from_states("artimon", network.tasks())


class TestGantt:
    def test_chart_rows_are_sorted_by_arrival(self):
        chart = build_network_chart()
        assert [row.task_id for row in chart.rows] == ["t1", "t2"]

    def test_phase_boundaries_are_consistent(self):
        chart = build_network_chart()
        for row in chart:
            for earlier, later in zip(row.phases, row.phases[1:]):
                assert later.start == pytest.approx(earlier.end)
            assert row.end == pytest.approx(row.phases[-1].end)
            assert all(phase.duration >= 0 for phase in row.phases)

    def test_unfinished_tasks_have_partial_rows(self):
        network = FluidNetwork({"cpu": 1.0})
        network.add_task("t", arrival=0.0, stages=(FluidStage("cpu", 100.0),))
        network.advance_to(10.0)
        chart = chart_from_states("s", network.tasks())
        assert chart.row("t").end is None

    def test_completions_and_horizon(self):
        chart = build_network_chart()
        completions = chart.completions()
        assert set(completions) == {"t1", "t2"}
        assert chart.horizon == pytest.approx(max(completions.values()))

    def test_row_lookup_raises_for_unknown_task(self):
        chart = build_network_chart()
        with pytest.raises(KeyError):
            chart.row("ghost")

    def test_render_contains_every_task_and_legend(self):
        text = build_network_chart().render(width=60)
        assert "t1" in text and "t2" in text
        assert "legend" in text
        assert "[artimon]" in text

    def test_empty_chart_renders_gracefully(self):
        chart = GanttChart(server="empty", rows=())
        assert "(empty)" in chart.render()
        assert chart.horizon == 0.0

    def test_phase_lookup_by_name(self):
        chart = build_network_chart()
        row = chart.row("t1")
        assert row.phase("compute") is not None
        assert row.phase("nonexistent") is None


class TestRecords:
    def test_traced_task_unloaded_duration(self):
        record = TracedTask(
            task_id="t", server="s", mapped_at=0.0, input_s=2.0, compute_s=10.0, output_s=1.0,
            local_number=3,
        )
        assert record.unloaded_duration == pytest.approx(13.0)

    def test_prediction_derived_quantities(self):
        prediction = HtmPrediction(
            server="s",
            task_id="new",
            now=100.0,
            new_task_completion=150.0,
            completions_without={"a": 120.0, "b": 130.0},
            completions_with={"a": 125.0, "b": 130.0},
            perturbations={"a": 5.0, "b": 0.0},
        )
        assert prediction.sum_perturbation == pytest.approx(5.0)
        assert prediction.n_perturbed == 1
        assert prediction.predicted_flow == pytest.approx(50.0)
        assert prediction.sum_flow_increase == pytest.approx(55.0)
        assert prediction.perturbation_of("a") == 5.0
        assert prediction.perturbation_of("missing") == 0.0


class TestPerturbationReport:
    def _predictions(self):
        return {
            "fast": HtmPrediction(
                server="fast", task_id="t", now=0.0, new_task_completion=20.0,
                perturbations={"x": 15.0},
            ),
            "slow": HtmPrediction(
                server="slow", task_id="t", now=0.0, new_task_completion=60.0,
                perturbations={},
            ),
        }

    def test_report_best_by_each_criterion(self):
        report = PerturbationReport.from_predictions(self._predictions(), "t", 0.0)
        assert report.best_by("new_task_completion").server == "fast"
        assert report.best_by("sum_perturbation").server == "slow"

    def test_rows_and_render(self):
        report = PerturbationReport.from_predictions(self._predictions(), "t", 0.0)
        rows = report.as_rows()
        assert {r["server"] for r in rows} == {"fast", "slow"}
        text = report.render()
        assert "fast" in text and "slow" in text

    def test_empty_report_best_by_raises(self):
        report = PerturbationReport(task_id="t", now=0.0, candidates=())
        with pytest.raises(ValueError):
            report.best_by("new_task_completion")

    def test_candidate_summary_from_prediction(self):
        prediction = self._predictions()["fast"]
        summary = CandidateSummary.from_prediction(prediction)
        assert summary.server == "fast"
        assert summary.sum_perturbation == pytest.approx(15.0)
        assert summary.sum_flow_increase == pytest.approx(35.0)
