"""Tests of the content-addressed cell cache (:mod:`repro.store.cache`)."""

from __future__ import annotations

import pytest

from repro.errors import StoreError
from repro.results import SCHEMA_VERSION, RunRecord
from repro.store import CampaignStore, CellEntry, CellKey, open_store


def _key(**overrides) -> CellKey:
    base = dict(
        config_hash="abc123def456",
        experiment_id="table5",
        heuristic="mct",
        metatask_index=0,
        repetition=0,
        seed=2003,
    )
    base.update(overrides)
    return CellKey(**base)


def _record(key: CellKey, **metrics) -> RunRecord:
    return RunRecord(
        experiment_id=key.experiment_id,
        heuristic=key.heuristic,
        metatask_index=key.metatask_index,
        repetition=key.repetition,
        seed=key.seed,
        config_hash=key.config_hash,
        metrics={"n_completed": 40.0, "sum_flow": 123.456789, **metrics},
    )


class TestCellKey:
    def test_digest_is_stable(self):
        assert _key().digest == _key().digest

    @pytest.mark.parametrize(
        "field, value",
        [
            ("config_hash", "other"),
            ("experiment_id", "table6"),
            ("heuristic", "msf"),
            ("metatask_index", 1),
            ("repetition", 1),
            ("seed", 2004),
            ("workload_hash", "other-workload"),
            ("schema_version", SCHEMA_VERSION + 1),
        ],
    )
    def test_every_field_changes_the_address(self, field, value):
        assert _key().digest != _key(**{field: value}).digest

    def test_json_round_trip(self):
        key = _key()
        assert CellKey.from_json_dict(key.to_json_dict()) == key


class TestCampaignStore:
    def test_put_get_round_trip(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        key = _key()
        entry = CellEntry(key=key, record=_record(key), completions={"t1": 12.25})
        store.put(entry)
        got = store.get(key)
        assert got == entry
        assert store.hits == 1 and store.misses == 0 and store.puts == 1

    def test_miss_counts(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        assert store.get(_key()) is None
        assert store.misses == 1 and store.hits == 0

    def test_entries_survive_reopen(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        key = _key()
        store.put(CellEntry(key=key, record=_record(key)))
        store.close()
        reopened = CampaignStore(tmp_path / "store")
        assert len(reopened) == 1
        got = reopened.get(key)
        # Records round-trip byte-exactly through the journal (floats keep
        # their shortest-repr text).
        assert got.record == _record(key)
        assert got.completions is None

    def test_completion_floats_round_trip_exactly(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        key = _key()
        completions = {"t1": 0.1 + 0.2, "t2": 1e-17, "t3": 123456.789012345}
        store.put(CellEntry(key=key, record=_record(key), completions=completions))
        store.close()
        got = CampaignStore(tmp_path / "store").get(key)
        assert got.completions == completions

    def test_last_write_wins(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        key = _key()
        store.put(CellEntry(key=key, record=_record(key, makespan=1.0)))
        store.put(CellEntry(key=key, record=_record(key, makespan=2.0)))
        assert store.get(key).record.metric("makespan") == 2.0
        assert len(store) == 1  # the index deduplicates on the address

    def test_prune_compacts_journal(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        k5, k6 = _key(), _key(experiment_id="table6")
        store.put(CellEntry(key=k5, record=_record(k5)))
        store.put(CellEntry(key=k6, record=_record(k6)))
        removed = store.prune(lambda entry: entry.key.experiment_id == "table5")
        assert removed == 1 and len(store) == 1
        reopened = CampaignStore(tmp_path / "store")
        assert reopened.peek(k5) is None and reopened.peek(k6) is not None

    def test_prune_nothing_is_a_no_op(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        key = _key()
        store.put(CellEntry(key=key, record=_record(key)))
        assert store.prune(lambda entry: False) == 0
        assert len(store) == 1

    def test_stats_accumulate_across_sessions(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        key = _key()
        store.get(key)  # miss
        store.put(CellEntry(key=key, record=_record(key)))
        store.get(key)  # hit
        store.flush_stats()
        store.close()
        second = CampaignStore(tmp_path / "store")
        second.get(key)  # hit
        stats = second.stats()
        assert stats == {
            "hits": 2,
            "misses": 1,
            "puts": 1,
            "entries": 1,
            "experiments": ["table5"],
        }
        # Flushing twice never double-counts session activity.
        second.flush_stats()
        assert second.flush_stats()["hits"] == 2

    def test_torn_journal_tail_recovers_remaining_cells(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        keys = [_key(repetition=r) for r in range(3)]
        for key in keys:
            store.put(CellEntry(key=key, record=_record(key)))
        store.close()
        journal_path = tmp_path / "store" / "journal.jsonl"
        text = journal_path.read_text()
        journal_path.write_text(text[: len(text) - 25])  # torn final append
        recovered = CampaignStore(tmp_path / "store")
        assert recovered.recovered_torn_tail
        assert len(recovered) == 2
        assert recovered.peek(keys[0]) is not None
        assert recovered.peek(keys[2]) is None

    def test_open_store_coercions(self, tmp_path):
        store = open_store(tmp_path / "store")
        assert isinstance(store, CampaignStore)
        assert open_store(store) is store
        assert open_store(None) is None
        with pytest.raises(StoreError, match="cannot interpret"):
            open_store(42)

    def test_unknown_journal_kinds_are_ignored(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        key = _key()
        store.put(CellEntry(key=key, record=_record(key)))
        store.journal.append({"kind": "future-extension", "payload": 1})
        store.close()
        reopened = CampaignStore(tmp_path / "store")
        assert len(reopened) == 1
