"""Unit tests of the store's durability primitives (atomic writes, WAL)."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import StoreError
from repro.store.journal import JOURNAL_FORMAT, JOURNAL_VERSION, Journal, atomic_write_text


class TestAtomicWriteText:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "out.txt"
        returned = atomic_write_text(path, "hello\n")
        assert returned == str(path)
        assert path.read_text() == "hello\n"

    def test_replaces_existing_file(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_leaves_no_temp_files_behind(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "x" * 10_000)
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_failed_write_preserves_target_and_cleans_up(self, tmp_path, monkeypatch):
        path = tmp_path / "out.txt"
        path.write_text("precious")
        monkeypatch.setattr(os, "replace", _raise_oserror)
        with pytest.raises(OSError):
            atomic_write_text(path, "doomed")
        assert path.read_text() == "precious"
        assert os.listdir(tmp_path) == ["out.txt"]


def _raise_oserror(*args, **kwargs):
    raise OSError("simulated replace failure")


class TestJournal:
    def test_append_then_recover_round_trips(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append({"kind": "cell", "n": 1})
        journal.append({"kind": "cell", "n": 2})
        journal.close()
        entries, torn = Journal(tmp_path / "j.jsonl").recover()
        assert not torn
        assert [e["n"] for e in entries] == [1, 2]

    def test_missing_file_recovers_empty(self, tmp_path):
        entries, torn = Journal(tmp_path / "absent.jsonl").recover()
        assert entries == [] and not torn

    def test_header_line_is_stamped_first(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append({"kind": "cell"})
        journal.close()
        first = json.loads((tmp_path / "j.jsonl").read_text().splitlines()[0])
        assert first == {"format": JOURNAL_FORMAT, "version": JOURNAL_VERSION}

    def test_torn_final_line_is_dropped_and_repaired(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        for n in range(3):
            journal.append({"kind": "cell", "n": n})
        journal.close()
        text = path.read_text()
        # Crash mid-append: the last line is cut, no trailing newline.
        path.write_text(text[: len(text) - 10])
        entries, torn = Journal(path).recover()
        assert torn
        assert [e["n"] for e in entries] == [0, 1]
        # The repair is durable: a second recovery sees a clean journal.
        entries2, torn2 = Journal(path).recover()
        assert not torn2 and entries2 == entries

    def test_append_after_torn_recovery_extends_cleanly(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append({"kind": "cell", "n": 0})
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "cell", "n')  # torn tail
        recovered = Journal(path)
        entries, torn = recovered.recover()
        assert torn and [e["n"] for e in entries] == [0]
        recovered.append({"kind": "cell", "n": 1})
        recovered.close()
        entries, torn = Journal(path).recover()
        assert not torn
        assert [e["n"] for e in entries] == [0, 1]

    def test_corruption_in_the_middle_fails_loudly(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append({"kind": "cell", "n": 0})
        journal.append({"kind": "cell", "n": 1})
        journal.close()
        lines = path.read_text().splitlines()
        lines[1] = "garbage{{{"  # not the final line: a crash cannot do this
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(StoreError, match="malformed entry on line 2"):
            Journal(path).recover()

    def test_wrong_format_header_is_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"format":"something-else","version":1}\n')
        with pytest.raises(StoreError, match="not a campaign-store journal"):
            Journal(path).recover()

    def test_future_version_is_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        header = {"format": JOURNAL_FORMAT, "version": JOURNAL_VERSION + 1}
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(StoreError, match="layout version"):
            Journal(path).recover()

    def test_rewrite_compacts_atomically(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        for n in range(5):
            journal.append({"kind": "cell", "n": n})
        journal.rewrite([{"kind": "cell", "n": 99}])
        entries, torn = Journal(path).recover()
        assert not torn and [e["n"] for e in entries] == [99]
        assert os.listdir(tmp_path) == ["j.jsonl"]

    def test_torn_very_first_append_recovers_empty(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"format":"repro-store-j')  # torn header
        entries, torn = Journal(path).recover()
        assert torn and entries == []

    def test_append_survives_a_concurrent_rewrite(self, tmp_path):
        """A maintenance rewrite (prune in another process) swaps the
        journal's inode; a live writer must detect that and append to the
        *current* file, not the orphaned old one."""
        path = tmp_path / "j.jsonl"
        writer = Journal(path)
        writer.append({"kind": "cell", "n": 0})
        # Another process compacts the journal behind the writer's back.
        Journal(path).rewrite([{"kind": "cell", "n": 100}])
        writer.append({"kind": "cell", "n": 1})
        writer.close()
        entries, torn = Journal(path).recover()
        assert not torn
        assert [e["n"] for e in entries] == [100, 1]
