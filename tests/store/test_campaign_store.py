"""End-to-end store semantics: cold vs warm equivalence, kill-and-resume.

The acceptance contract of the campaign store: a warm re-run executes zero
simulations yet produces byte-identical saved results, and a campaign killed
mid-flight (journal truncated, torn final line included) resumes to
byte-identical output.
"""

from __future__ import annotations

import io

import pytest

from repro import api
from repro.errors import StoreError
from repro.experiments.config import ExperimentConfig, ExperimentScale
from repro.results import CampaignObserver, ProgressObserver
from repro.scenarios import run_sweep
from repro.store import CampaignStore, open_store, resume_experiment

#: Small enough for unit tests, big enough for real comparisons.
TINY = ExperimentScale(name="tiny", task_count=12, metatask_count=1, repetitions=1)

SWEEP_SCENARIOS = ["paper-low-rate", "flaky-servers"]


def _tiny_config() -> ExperimentConfig:
    return ExperimentConfig(scale=TINY)


@pytest.fixture
def store(tmp_path) -> CampaignStore:
    return CampaignStore(tmp_path / "store")


class TestColdVsWarm:
    def test_warm_table_run_executes_nothing_and_is_byte_identical(self, tmp_path, store):
        cold = api.run("table5", config=_tiny_config(), store=store)
        assert cold.cache_info["executed"] > 0 and cold.cache_info["recovered"] == 0
        warm = api.run("table5", config=_tiny_config(), store=store)
        assert warm.cache_info["executed"] == 0
        assert warm.cache_info["recovered"] == cold.cache_info["executed"]
        cold_path = api.save_results(cold, tmp_path / "cold.jsonl")
        warm_path = api.save_results(warm, tmp_path / "warm.jsonl")
        assert open(cold_path, "rb").read() == open(warm_path, "rb").read()
        assert cold.render() == warm.render()

    def test_warm_run_crosses_jobs_levels(self, tmp_path, store):
        cold = api.run("table5", config=_tiny_config(), jobs=2, store=store)
        warm = api.run("table5", config=_tiny_config(), jobs=1, store=store)
        assert warm.cache_info["executed"] == 0
        assert cold.result_set.to_jsonl() == warm.result_set.to_jsonl()

    def test_scenario_sweep_cold_then_warm(self, tmp_path, store):
        cold = run_sweep(SWEEP_SCENARIOS, config=_tiny_config(), store=store)
        executed_cold = store.puts
        assert executed_cold == len(cold.result_set)
        warm = run_sweep(SWEEP_SCENARIOS, config=_tiny_config(), store=store)
        assert store.puts == executed_cold  # zero new simulations
        cold_path = api.save_results(cold, tmp_path / "cold.jsonl")
        warm_path = api.save_results(warm, tmp_path / "warm.jsonl")
        assert open(cold_path, "rb").read() == open(warm_path, "rb").read()
        assert cold.render() == warm.render()

    def test_config_mismatch_warns_before_running_cold(self, store):
        """Resuming with the wrong scale/seed must not silently re-simulate
        everything: the zero-hit + same-experiment case warns up front."""
        api.run("table5", config=_tiny_config(), store=store)
        other = ExperimentConfig(
            scale=TINY, seed=2026  # same experiment, different fingerprint
        )
        with pytest.warns(UserWarning, match="different configuration"):
            api.run("table5", config=other, store=store)

    def test_custom_workloads_do_not_alias(self, store):
        """Two custom run_campaign workloads under the same experiment id and
        config must not serve each other's cached cells: the workload
        fingerprint keys them apart."""
        import numpy as np

        from repro.experiments.campaign import run_campaign
        from repro.workload.testbed import first_set_platform, matmul_metatask

        platform = first_set_platform()
        config = _tiny_config()

        def campaign(mean_interarrival):
            metatask = matmul_metatask(
                count=10,
                mean_interarrival=mean_interarrival,
                rng=np.random.default_rng(7),
                name="custom",
            )
            return run_campaign(
                "custom-exp", "t", platform, [metatask], config, store=store
            )

        tables = [campaign(20.0)]
        with pytest.warns(UserWarning, match="configuration or workload"):
            tables.append(campaign(2.0))  # genuinely different workload
        assert tables[1].cache_info["recovered"] == 0  # no cross-workload hits
        assert tables[0].render() != tables[1].render()
        # Each workload warms only its own cells.
        metatask = matmul_metatask(
            count=10, mean_interarrival=20.0, rng=np.random.default_rng(7), name="custom"
        )
        warm = run_campaign("custom-exp", "t", platform, [metatask], config, store=store)
        assert warm.cache_info["executed"] == 0
        assert warm.render() == tables[0].render()

    def test_store_never_changes_numbers_vs_storeless_run(self, store):
        plain = api.run("table5", config=_tiny_config())
        stored = api.run("table5", config=_tiny_config(), store=store)
        assert plain.result_set.to_jsonl() == stored.result_set.to_jsonl()
        warm = api.run("table5", config=_tiny_config(), store=store)
        assert plain.result_set.to_jsonl() == warm.result_set.to_jsonl()


class TestKillAndResume:
    def _truncate_journal(self, store: CampaignStore, keep_cells: int, torn: bool):
        """Simulate a crash: keep the header + ``keep_cells`` committed lines,
        optionally followed by a torn partial append."""
        store.close()
        path = store.journal.path
        lines = open(path, "r", encoding="utf-8").read().splitlines(keepends=True)
        kept = "".join(lines[: 1 + keep_cells])
        if torn:
            kept += lines[1 + keep_cells][:37]  # mid-line cut, no newline
        open(path, "w", encoding="utf-8").write(kept)

    @pytest.mark.parametrize("torn", [False, True], ids=["clean-kill", "torn-last-line"])
    def test_resume_is_byte_identical(self, tmp_path, torn):
        reference = api.run("table5", config=_tiny_config())
        reference_path = api.save_results(reference, tmp_path / "reference.jsonl")

        store = CampaignStore(tmp_path / "store")
        api.run("table5", config=_tiny_config(), store=store)
        total = store.puts
        self._truncate_journal(store, keep_cells=2, torn=torn)

        recovered_store = CampaignStore(tmp_path / "store")
        assert recovered_store.recovered_torn_tail is torn
        assert len(recovered_store) == 2
        report = resume_experiment("table5", recovered_store, config=_tiny_config())
        assert report.recovered == 2
        assert report.executed == total - 2
        resumed_path = api.save_results(report.result, tmp_path / "resumed.jsonl")
        assert open(reference_path, "rb").read() == open(resumed_path, "rb").read()

    def test_resume_of_complete_store_executes_nothing(self, tmp_path, store):
        api.run("table5", config=_tiny_config(), store=store)
        report = resume_experiment("table5", store, config=_tiny_config())
        assert report.executed == 0 and report.recovered > 0
        assert "already complete" in report.render()

    def test_api_resume_accepts_a_path(self, tmp_path):
        api.run("table5", config=_tiny_config(), store=str(tmp_path / "store"))
        report = api.resume("table5", str(tmp_path / "store"), config=_tiny_config())
        assert report.executed == 0

    def test_non_campaign_experiments_are_not_resumable(self, store):
        with pytest.raises(StoreError, match="not.*resumable|does not run through"):
            resume_experiment("table1", store, config=_tiny_config())


class TestPartialWarm:
    def test_cached_reference_feeds_fresh_candidate_comparisons(self, tmp_path, store):
        """The paper's pairwise "sooner" metric must survive the mixed case:
        reference cells recovered from the journal, candidate cells freshly
        executed against the cached completion maps."""
        reference = api.run("table5", config=_tiny_config(), store=store)
        reference_path = api.save_results(reference, tmp_path / "reference.jsonl")
        removed = store.prune(lambda entry: entry.key.heuristic != "mct")
        assert removed > 0 and len(store) > 0

        mixed = api.run("table5", config=_tiny_config(), store=store)
        assert mixed.cache_info["recovered"] == len(
            [r for r in mixed.result_set if r.heuristic == "mct"]
        )
        assert mixed.cache_info["executed"] == removed
        mixed_path = api.save_results(mixed, tmp_path / "mixed.jsonl")
        assert open(reference_path, "rb").read() == open(mixed_path, "rb").read()

    def test_damaged_reference_entry_fails_loudly(self, store):
        from repro.store import CellEntry

        api.run("table5", config=_tiny_config(), store=store)
        # Strip the completion maps off the reference entries (a damaged or
        # hand-edited journal): the mixed path must refuse, not mis-compute.
        damaged = [
            CellEntry(key=e.key, record=e.record, completions=None)
            for e in store.entries()
            if e.key.heuristic == "mct"
        ]
        for entry in damaged:
            store.put(entry)
        store.prune(lambda entry: entry.key.heuristic != "mct")
        with pytest.raises(StoreError, match="completion map"):
            api.run("table5", config=_tiny_config(), store=store)


class TestObserverIntegration:
    def test_progress_observer_reports_cached_cells(self, store):
        api.run("table5", config=_tiny_config(), store=store)
        stream = io.StringIO()
        api.run(
            "table5",
            config=_tiny_config(),
            store=store,
            observers=(ProgressObserver(stream=stream),),
        )
        output = stream.getvalue()
        assert "(cached)" in output
        assert "0 computed" in output

    def test_legacy_observer_signature_still_works(self, store):
        class LegacyObserver(CampaignObserver):
            def __init__(self):
                self.seen = 0

            def on_cell_complete(self, index, total, record):  # no `cached`
                self.seen += 1

        legacy = LegacyObserver()
        api.run("table5", config=_tiny_config(), store=store, observers=(legacy,))
        first = legacy.seen
        assert first > 0
        api.run("table5", config=_tiny_config(), store=store, observers=(legacy,))
        assert legacy.seen == 2 * first
