"""Store listings are independent of journal commit order (DET-ORDER fix).

The in-memory index is populated in journal-replay order, which is whatever
order the campaign's workers happened to commit in — ``--jobs 1`` and
``--jobs 4`` runs of the same campaign journal the same cells in different
orders.  ``entries()`` therefore sorts by cell coordinates, so ``repro cache
ls`` and anything else built on it renders identically whatever execution
produced the store.
"""

from __future__ import annotations

from repro.results.records import RunRecord
from repro.store import CampaignStore, CellEntry, CellKey


def entry(heuristic: str, metatask: int, repetition: int = 0, experiment="table5"):
    key = CellKey(
        config_hash="abc123",
        experiment_id=experiment,
        heuristic=heuristic,
        metatask_index=metatask,
        repetition=repetition,
        seed=2003 + metatask,
    )
    record = RunRecord(
        experiment_id=experiment,
        heuristic=heuristic,
        metatask_index=metatask,
        repetition=repetition,
        seed=key.seed,
        config_hash=key.config_hash,
        metrics={"sum_flow": 1.5},
    )
    return CellEntry(key=key, record=record)


SCRAMBLED = [
    entry("msf", 2),
    entry("mct", 0),
    entry("mp", 1),
    entry("hmct", 2),
    entry("mct", 1),
    entry("table9-first", 0, experiment="table4"),
]


def coordinates(store):
    return [
        (e.key.experiment_id, e.key.heuristic, e.key.metatask_index)
        for e in store.entries()
    ]


class TestCanonicalEntryOrder:
    def test_entries_sort_by_cell_coordinates(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        for cell in SCRAMBLED:
            store.put(cell)
        assert coordinates(store) == sorted(coordinates(store))

    def test_listing_is_independent_of_commit_order(self, tmp_path):
        forward = CampaignStore(tmp_path / "forward")
        backward = CampaignStore(tmp_path / "backward")
        for cell in SCRAMBLED:
            forward.put(cell)
        for cell in reversed(SCRAMBLED):
            backward.put(cell)
        assert coordinates(forward) == coordinates(backward)

    def test_reopened_store_lists_identically(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        for cell in SCRAMBLED:
            store.put(cell)
        listing = coordinates(store)
        assert coordinates(CampaignStore(tmp_path / "store")) == listing

    def test_last_write_still_wins_after_sorting(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        first = entry("mct", 0)
        store.put(first)
        updated = CellEntry(
            key=first.key,
            record=RunRecord(
                experiment_id="table5",
                heuristic="mct",
                metatask_index=0,
                repetition=0,
                seed=first.key.seed,
                config_hash=first.key.config_hash,
                metrics={"sum_flow": 9.0},
            ),
        )
        store.put(updated)
        entries = list(store.entries())
        assert len(entries) == 1
        assert entries[0].record.metrics["sum_flow"] == 9.0
