"""Fingerprint invariance guard: execution-only knobs must not fragment keys.

The store addresses cells by ``config_fingerprint``; if a knob that cannot
change the numbers (``jobs``, ``progress`` observers, store settings) leaked
into the fingerprint, every such knob combination would silently get its own
cache namespace — warm runs would stop hitting and resumed campaigns would
re-execute everything.  These tests pin the boundary from both sides.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments.config import SMOKE_SCALE, ExperimentConfig
from repro.platform.middleware import MiddlewareConfig
from repro.results import ProgressObserver, ResultSetObserver, config_fingerprint
from repro.store import CampaignStore


BASE = ExperimentConfig()


class TestExecutionOnlyKnobsAreExcluded:
    def test_jobs_does_not_change_the_fingerprint(self):
        assert config_fingerprint(BASE) == config_fingerprint(BASE.with_jobs(8))
        assert config_fingerprint(BASE) == config_fingerprint(BASE.with_jobs(64))

    def test_progress_observer_does_not_change_the_fingerprint(self):
        with_progress = replace(BASE, observers=(ProgressObserver(),))
        assert config_fingerprint(BASE) == config_fingerprint(with_progress)

    def test_result_set_observer_does_not_change_the_fingerprint(self):
        observing = replace(BASE, observers=(ResultSetObserver(),))
        assert config_fingerprint(BASE) == config_fingerprint(observing)

    def test_store_does_not_change_the_fingerprint(self, tmp_path):
        with_store = BASE.with_store(CampaignStore(tmp_path / "store"))
        assert config_fingerprint(BASE) == config_fingerprint(with_store)
        with_path_store = BASE.with_store(str(tmp_path / "other"))
        assert config_fingerprint(BASE) == config_fingerprint(with_path_store)

    def test_all_execution_knobs_together(self, tmp_path):
        noisy = replace(
            BASE,
            jobs=16,
            observers=(ProgressObserver(), ResultSetObserver()),
            store=CampaignStore(tmp_path / "store"),
        )
        assert config_fingerprint(BASE) == config_fingerprint(noisy)


class TestNumberDeterminingKnobsAreIncluded:
    @pytest.mark.parametrize(
        "mutation",
        [
            lambda c: c.with_seed(2004),
            lambda c: c.with_scale(SMOKE_SCALE),
            lambda c: replace(c, low_rate_s=21.0),
            lambda c: replace(c, high_rate_s=14.0),
            lambda c: replace(c, heuristics=("mct", "msf")),
            lambda c: replace(c, reference="msf", heuristics=("msf", "mct")),
            lambda c: replace(c, middleware=MiddlewareConfig(memory_enabled=False)),
        ],
        ids=["seed", "scale", "low-rate", "high-rate", "heuristics", "reference", "middleware"],
    )
    def test_changing_the_numbers_changes_the_fingerprint(self, mutation):
        assert config_fingerprint(BASE) != config_fingerprint(mutation(BASE))
