"""Tests of the client process, the fault models and the package surface."""

from __future__ import annotations

import pytest

import repro
from repro.errors import ServerCollapsed, TaskRejected
from repro.platform.client import Client
from repro.platform.faults import FaultTolerancePolicy, MemoryModel, SpeedNoiseModel
from repro.simulation import Environment, RandomStreams
from repro.workload.problems import matmul_problem
from repro.workload.tasks import Task


class TestClient:
    def test_tasks_are_submitted_at_their_arrival_dates(self, env):
        tasks = [
            Task("a", matmul_problem(1200), arrival=5.0),
            Task("b", matmul_problem(1500), arrival=1.0),
            Task("c", matmul_problem(1800), arrival=9.0),
        ]
        submissions = []
        client = Client(env, "zanzibar", tasks, submit=lambda t: submissions.append((t.task_id, env.now)))
        env.run()
        assert submissions == [("b", 1.0), ("a", 5.0), ("c", 9.0)]
        assert client.submitted == 3

    def test_client_name_is_stamped_on_tasks(self, env):
        task = Task("a", matmul_problem(1200), arrival=0.0, client="other")
        Client(env, "zanzibar", [task], submit=lambda t: None)
        env.run()
        assert task.client == "zanzibar"

    def test_simultaneous_arrivals_are_submitted_in_id_order(self, env):
        tasks = [Task(i, matmul_problem(1200), arrival=2.0) for i in ("b", "a")]
        order = []
        Client(env, "c", tasks, submit=lambda t: order.append(t.task_id))
        env.run()
        assert order == ["a", "b"]


class TestFaultModels:
    def test_memory_model_thrash_factor_bounds(self):
        model = MemoryModel(enabled=True, thrashing=True, min_thrash_factor=0.25)
        assert model.thrash_factor(resident_mb=50.0, usable_memory_mb=100.0) == 1.0
        assert model.thrash_factor(resident_mb=200.0, usable_memory_mb=100.0) == pytest.approx(0.5)
        assert model.thrash_factor(resident_mb=10_000.0, usable_memory_mb=100.0) == 0.25
        disabled = MemoryModel(enabled=False)
        assert disabled.thrash_factor(10_000.0, 100.0) == 1.0

    def test_speed_noise_validation_and_draws(self):
        with pytest.raises(ValueError):
            SpeedNoiseModel(relative_sigma=-0.1)
        with pytest.raises(ValueError):
            SpeedNoiseModel(period_s=0.0)
        silent = SpeedNoiseModel(relative_sigma=0.0)
        assert not silent.enabled
        assert silent.draw_factor(RandomStreams(0)["x"]) == 1.0
        noisy = SpeedNoiseModel(relative_sigma=0.1)
        rng = RandomStreams(0)["x"]
        draws = [noisy.draw_factor(rng) for _ in range(200)]
        assert all(d > 0 for d in draws)
        assert min(draws) < 1.0 < max(draws)

    def test_fault_tolerance_validation(self):
        with pytest.raises(ValueError):
            FaultTolerancePolicy(max_attempts=0)
        with pytest.raises(ValueError):
            FaultTolerancePolicy(retry_delay_s=-1.0)


class TestErrors:
    def test_server_collapsed_carries_context(self):
        error = ServerCollapsed("pulney", at=123.4, resident_mb=812.0)
        assert error.server_name == "pulney"
        assert "pulney" in str(error) and "123.4" in str(error)

    def test_task_rejected_carries_context(self):
        error = TaskRejected("artimon", "task-1", "not enough memory")
        assert error.reason == "not enough memory"
        assert "task-1" in str(error)

    def test_every_library_error_derives_from_reproerror(self):
        from repro import errors

        for name in errors.__all__:
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError)


class TestPackageSurface:
    def test_version_and_main_exports(self):
        assert repro.__version__
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_paper_heuristics_constant_matches_registry(self):
        for name in repro.PAPER_HEURISTICS:
            assert name in repro.HEURISTIC_REGISTRY

    def test_quickstart_docstring_snippet_runs(self):
        """The usage snippet advertised in the package docstring must work."""
        import numpy as np

        from repro import GridMiddleware
        from repro.metrics import summarize
        from repro.workload.testbed import first_set_platform, matmul_metatask

        metatask = matmul_metatask(count=10, mean_interarrival=20.0,
                                   rng=np.random.default_rng(0))
        result = GridMiddleware(first_set_platform(), heuristic="msf").run(metatask)
        summary = summarize(result.tasks, "msf")
        assert summary.n_completed == 10
