"""Tests of the ground-truth compute server."""

from __future__ import annotations

import pytest

from repro.errors import TaskRejected
from repro.platform.faults import MemoryModel, SpeedNoiseModel
from repro.platform.server import ComputeServer
from repro.platform.spec import PAPER_MACHINES, MachineSpec, MachineRole
from repro.simulation import Environment, RandomStreams
from repro.workload.problems import PAPER_CATALOGUE, matmul_problem
from repro.workload.tasks import Task, TaskStatus


def make_server(env, name="artimon", memory=None, noise=None, spec=None, problems=None):
    spec = spec or PAPER_MACHINES[name]
    return ComputeServer(
        env=env,
        spec=spec,
        problems=problems or [p.name for p in PAPER_CATALOGUE],
        catalogue=PAPER_CATALOGUE,
        memory_model=memory,
        noise_model=noise,
        rng=RandomStreams(0)[f"noise/{name}"],
    )


def make_task(task_id, size=1200, arrival=0.0):
    task = Task(task_id=task_id, problem=matmul_problem(size), arrival=arrival)
    return task


class TestSingleTaskExecution:
    def test_single_task_finishes_after_unloaded_duration(self, env):
        server = make_server(env)
        completions = []
        server.on_completion.append(lambda task, at: completions.append((task.task_id, at)))
        task = make_task("t1")
        task.new_attempt("artimon", 0.0)
        server.submit(task)
        env.run()
        # matmul-1200 on artimon: 3 + 18 + 1 = 22 seconds.
        assert completions == [("t1", pytest.approx(22.0))]
        assert task.completed
        assert task.completion_time == pytest.approx(22.0)
        assert task.attempts[-1].input_done_at == pytest.approx(3.0)
        assert task.attempts[-1].compute_done_at == pytest.approx(21.0)

    def test_two_tasks_share_every_phase(self, env):
        server = make_server(env)
        tasks = [make_task("a"), make_task("b")]
        for task in tasks:
            task.new_attempt("artimon", 0.0)
            server.submit(task)
        env.run()
        # shared: input 6, compute 36, output 2 -> both complete at 44.
        for task in tasks:
            assert task.completion_time == pytest.approx(44.0)

    def test_submission_mid_flight_shares_only_the_overlap(self, env):
        server = make_server(env)
        first = make_task("first", size=1800)  # 8 + 53 + 2 on artimon
        first.new_attempt("artimon", 0.0)
        server.submit(first)

        def late_submission():
            yield env.timeout(30.0)
            second = make_task("second", size=1200, arrival=30.0)
            second.new_attempt("artimon", 30.0)
            server.submit(second)

        env.process(late_submission())
        env.run()
        assert first.completed and first.completion_time > 63.0

    def test_server_stats_track_completions(self, env):
        server = make_server(env)
        task = make_task("t1")
        task.new_attempt("artimon", 0.0)
        server.submit(task)
        env.run()
        assert server.stats.submitted == 1
        assert server.stats.completed == 1
        assert server.stats.failed == 0
        assert server.stats.busy_compute_seconds == pytest.approx(18.0)


class TestRejections:
    def test_unknown_problem_is_rejected(self, env):
        server = make_server(env, problems=["matmul-1500"])
        task = make_task("t1", size=1200)
        task.new_attempt("artimon", 0.0)
        with pytest.raises(TaskRejected):
            server.submit(task)
        assert server.stats.rejected == 1

    def test_memory_reject_mode_refuses_overflow(self, env):
        tiny = MachineSpec(
            "tiny", "test", 500.0, memory_mb=100.0, swap_mb=0.0, role=MachineRole.SERVER,
            os_reserved_mb=0.0,
        )
        # matmul-1200 needs ~33 MB: the fourth concurrent task overflows 100 MB.
        server = make_server(
            env, spec=tiny, memory=MemoryModel(enabled=True, collapse=False),
            problems=["matmul-1200"],
        )
        accepted = 0
        for i in range(4):
            task = make_task(f"t{i}")
            task.new_attempt("tiny", 0.0)
            try:
                server.submit(task)
                accepted += 1
            except TaskRejected:
                pass
        assert accepted == 3
        assert server.stats.rejected == 1


class TestCollapse:
    def _overloaded_server(self, env):
        tiny = MachineSpec(
            "tiny", "test", 500.0, memory_mb=100.0, swap_mb=20.0, role=MachineRole.SERVER,
            os_reserved_mb=0.0,
        )
        return make_server(
            env, spec=tiny,
            memory=MemoryModel(enabled=True, collapse=True, recovery_s=50.0),
            problems=["matmul-1200"],
        )

    def test_collapse_fails_every_resident_task(self, env):
        server = self._overloaded_server(env)
        failures, collapses = [], []
        server.on_failure.append(lambda task, at, reason: failures.append(task.task_id))
        server.on_collapse.append(lambda srv, at: collapses.append(at))
        tasks = []
        for i in range(4):  # 4 x 33 MB > 120 MB
            task = make_task(f"t{i}")
            task.new_attempt("tiny", 0.0)
            tasks.append(task)
            server.submit(task)
        assert collapses and not server.is_up
        assert len(failures) == 4
        assert all(t.status is TaskStatus.FAILED for t in tasks)
        assert server.stats.collapses == 1

    def test_collapsed_server_rejects_submissions_until_recovery(self, env):
        server = self._overloaded_server(env)
        for i in range(4):
            task = make_task(f"t{i}")
            task.new_attempt("tiny", 0.0)
            server.submit(task)
        late = make_task("late")
        late.new_attempt("tiny", 0.0)
        with pytest.raises(TaskRejected):
            server.submit(late)

        recovered = []
        server.on_recovery.append(lambda srv, at: recovered.append(at))
        env.run(until=100.0)
        assert server.is_up
        assert recovered == [pytest.approx(50.0)]

    def test_thrashing_slows_the_cpu_down(self, env):
        tiny = MachineSpec(
            "tiny", "test", 500.0, memory_mb=60.0, swap_mb=1000.0, role=MachineRole.SERVER,
            os_reserved_mb=0.0,
        )
        server = make_server(
            env, spec=tiny,
            memory=MemoryModel(enabled=True, thrashing=True, collapse=True),
            problems=["matmul-1200"],
        )
        for i in range(3):  # ~99 MB resident > 60 MB physical -> thrashing
            task = make_task(f"t{i}")
            task.new_attempt("tiny", 0.0)
            server.submit(task)
        assert server.cpu_capacity() < 1.0


class TestMonitoringViews:
    def test_cpu_task_count_and_resident_memory(self, env):
        server = make_server(env, memory=MemoryModel(enabled=True))
        task = make_task("t1")
        task.new_attempt("artimon", 0.0)
        server.submit(task)
        assert server.resident_task_count() == 1
        assert server.resident_memory_mb() == pytest.approx(matmul_problem(1200).memory_mb)
        env.run()
        assert server.resident_task_count() == 0
        assert server.resident_memory_mb() == pytest.approx(0.0)

    def test_load_average_rises_with_running_tasks(self, env):
        server = make_server(env)
        assert server.load_average() == pytest.approx(0.0)
        for i in range(3):
            task = make_task(f"t{i}", size=1800)
            task.new_attempt("artimon", 0.0)
            server.submit(task)

        def probe():
            yield env.timeout(60.0)
            return server.load_average()

        load = env.run(until=env.process(probe()))
        assert load > 1.0

    def test_speed_noise_changes_completion_times(self, env):
        noisy = make_server(env, noise=SpeedNoiseModel(relative_sigma=0.3, period_s=5.0))
        task = make_task("t1", size=1800)
        task.new_attempt("artimon", 0.0)
        noisy.submit(task)
        env.run(until=500.0)
        assert task.completed
        assert task.completion_time != pytest.approx(63.0, abs=1e-6)

    def test_costs_for_problem_spec_matches_catalogue(self, env):
        server = make_server(env)
        costs = server.costs_for_problem_spec(matmul_problem(1500))
        assert costs.compute_s == 33.0
        assert server.costs_for("matmul-1500").compute_s == 33.0
