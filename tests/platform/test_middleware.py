"""Integration tests of the full middleware (client → agent → servers)."""

from __future__ import annotations

import pytest

from repro.core.heuristics import PAPER_HEURISTICS
from repro.errors import PlatformError
from repro.platform.faults import FaultTolerancePolicy, MemoryModel
from repro.platform.middleware import GridMiddleware, MiddlewareConfig
from repro.platform.spec import MachineRole, MachineSpec, PlatformSpec
from repro.workload.problems import matmul_problem
from repro.workload.tasks import Task, TaskStatus
from repro.workload.testbed import first_set_platform, matmul_metatask, wastecpu_metatask


class TestBasicRuns:
    @pytest.mark.parametrize("heuristic", PAPER_HEURISTICS)
    def test_every_paper_heuristic_completes_a_small_metatask(
        self, heuristic, first_platform, small_matmul_metatask, quiet_config
    ):
        middleware = GridMiddleware(first_platform, heuristic, config=quiet_config)
        result = middleware.run(small_matmul_metatask)
        assert result.heuristic == heuristic
        assert result.completed_count == len(small_matmul_metatask)
        assert result.failed_count == 0
        assert result.duration > 0
        # every task carries a full lifecycle record
        for task in result.tasks:
            assert task.status is TaskStatus.COMPLETED
            assert task.completion_time >= task.arrival
            assert task.server in first_platform.server_names()

    def test_second_set_platform_runs_wastecpu(self, second_platform, small_wastecpu_metatask, quiet_config):
        result = GridMiddleware(second_platform, "msf", config=quiet_config).run(
            small_wastecpu_metatask
        )
        assert result.completed_count == len(small_wastecpu_metatask)

    def test_run_result_accessors(self, first_platform, small_matmul_metatask, quiet_config):
        result = GridMiddleware(first_platform, "hmct", config=quiet_config).run(
            small_matmul_metatask
        )
        some_task = result.tasks[0]
        assert result.task_by_id(some_task.task_id) is some_task
        with pytest.raises(KeyError):
            result.task_by_id("missing")
        assert sum(result.agent_decisions.values()) >= len(result.tasks)
        assert set(result.server_stats) == set(first_platform.server_names())

    def test_middleware_cannot_run_twice(self, first_platform, small_matmul_metatask, quiet_config):
        middleware = GridMiddleware(first_platform, "mct", config=quiet_config)
        middleware.run(small_matmul_metatask)
        with pytest.raises(PlatformError):
            middleware.run(small_matmul_metatask)

    def test_same_seed_is_reproducible(self, first_platform, small_matmul_metatask):
        config = MiddlewareConfig(seed=11)
        first = GridMiddleware(first_platform, "msf", config=config).run(small_matmul_metatask)
        second = GridMiddleware(first_platform, "msf", config=config).run(small_matmul_metatask)
        completions_a = {t.task_id: t.completion_time for t in first.tasks}
        completions_b = {t.task_id: t.completion_time for t in second.tasks}
        assert completions_a == completions_b

    def test_different_heuristics_make_different_decisions(
        self, first_platform, small_matmul_metatask, quiet_config
    ):
        mct = GridMiddleware(first_platform, "mct", config=quiet_config).run(small_matmul_metatask)
        mp = GridMiddleware(first_platform, "mp", config=quiet_config).run(small_matmul_metatask)
        assert mct.agent_decisions != mp.agent_decisions


class TestDeterministicTimings:
    def test_single_task_end_to_end_duration(self, quiet_config, rng):
        """A lone task on a quiet platform completes after its unloaded duration."""
        platform = first_set_platform()
        metatask = matmul_metatask(count=1, mean_interarrival=20.0, rng=rng)
        result = GridMiddleware(platform, "hmct", config=quiet_config).run(metatask)
        task = result.tasks[0]
        # HMCT maps the single task on its fastest server (pulney: 18 s).
        assert task.server == "pulney"
        assert task.flow == pytest.approx(18.0, abs=1e-6)


class TestFaultTolerance:
    def _pressure_config(self, **kwargs):
        return MiddlewareConfig(
            memory_enabled=True,
            memory_model=MemoryModel(enabled=True, collapse=True, recovery_s=60.0),
            noise_model=None,
            monitor_jitter_s=0.0,
            seed=3,
            **kwargs,
        )

    def test_mct_retries_after_collapses_but_hmct_does_not(self, rng):
        platform = first_set_platform()
        # A fast burst of memory-hungry tasks triggers collapses on the fast servers.
        metatask = matmul_metatask(count=80, mean_interarrival=2.0, rng=rng)
        mct_result = GridMiddleware(platform, "mct", config=self._pressure_config()).run(metatask)
        hmct_result = GridMiddleware(platform, "hmct", config=self._pressure_config()).run(metatask)

        mct_collapses = sum(s["collapses"] for s in mct_result.server_stats.values())
        hmct_collapses = sum(s["collapses"] for s in hmct_result.server_stats.values())
        assert mct_collapses >= 1
        assert hmct_collapses >= 1
        # MCT benefits from NetSolve fault tolerance: some tasks have several attempts.
        assert any(t.n_attempts > 1 for t in mct_result.tasks)
        # The new heuristics do not (paper protocol): failed tasks stay failed.
        assert all(t.n_attempts == 1 for t in hmct_result.tasks)
        assert hmct_result.failed_count >= 1
        assert mct_result.completed_count >= hmct_result.completed_count

    def test_disabling_fault_tolerance_for_mct(self, rng):
        platform = first_set_platform()
        metatask = matmul_metatask(count=80, mean_interarrival=2.0, rng=rng)
        config = self._pressure_config(fault_tolerant_heuristics=())
        result = GridMiddleware(platform, "mct", config=config).run(metatask)
        assert all(t.n_attempts == 1 for t in result.tasks)

    def test_fault_policy_selection_logic(self):
        config = MiddlewareConfig()
        assert config.fault_policy_for("mct").enabled
        assert not config.fault_policy_for("msf").enabled
        policy = FaultTolerancePolicy(max_attempts=2)
        assert policy.should_retry(1)
        assert not policy.should_retry(2)
        assert not FaultTolerancePolicy.disabled().should_retry(0)

    def test_memory_disabled_config_never_collapses(self, rng):
        platform = first_set_platform()
        metatask = matmul_metatask(count=80, mean_interarrival=2.0, rng=rng)
        config = MiddlewareConfig(memory_enabled=False, noise_model=None, seed=3)
        result = GridMiddleware(platform, "mct", config=config).run(metatask)
        assert result.completed_count == 80
        assert sum(s["collapses"] for s in result.server_stats.values()) == 0


class TestRetryStatusWindow:
    """Regression: a retried task must stay FAILED during the back-off delay.

    The old code flipped the task to SUBMITTED the instant the failure was
    observed, ``retry_delay_s`` seconds before the deferred dispatch actually
    fired — so a concurrent terminal check during the window saw the task as
    in flight although nothing was scheduled to run it yet.
    """

    def _rejecting_middleware(self):
        # A platform whose only server cannot fit any task within memory +
        # swap: with collapse disabled, every submission is rejected ("not
        # enough memory") while the server stays up — so the middleware keeps
        # scheduling retries through the fault-tolerance back-off.
        platform = PlatformSpec(
            machines={
                "pulney": MachineSpec("pulney", "tiny-memory", 500.0, memory_mb=70.0, swap_mb=0.0),
                "dispatch": MachineSpec(
                    "dispatch", "synthetic", 1000.0, 1024.0, 1024.0, MachineRole.AGENT
                ),
                "zanzibar": MachineSpec(
                    "zanzibar", "synthetic", 1000.0, 1024.0, 1024.0, MachineRole.CLIENT
                ),
            }
        )
        config = MiddlewareConfig(
            noise_model=None,
            seed=1,
            memory_model=MemoryModel(enabled=True, collapse=False),
            monitor_jitter_s=0.0,
        )
        return GridMiddleware(platform, "mct", config=config)

    def test_task_reports_failed_during_the_backoff_window(self):
        middleware = self._rejecting_middleware()
        delay = middleware.fault_policy.retry_delay_s
        task = Task("t-000001", matmul_problem(1200), arrival=0.0)
        middleware.submit(task)
        assert task.n_attempts == 1
        assert task.status is TaskStatus.FAILED  # was SUBMITTED before the fix
        middleware.env.run(until=delay / 2)
        assert task.status is TaskStatus.FAILED

    def test_deferred_dispatch_fires_after_the_delay(self):
        middleware = self._rejecting_middleware()
        delay = middleware.fault_policy.retry_delay_s
        task = Task("t-000001", matmul_problem(1200), arrival=0.0)
        middleware.submit(task)
        middleware.env.run(until=delay + 1.0)
        # The retry really happened: a second attempt was made (and rejected
        # again, since every server is still down).
        assert task.n_attempts == 2
        assert task.status is TaskStatus.FAILED


class TestHorizonTruncation:
    """Regression: when ``max_horizon_s`` fires, in-flight tasks must be
    finalised as failed (reason ``"horizon"``) and the run flagged."""

    def _long_tasks(self, count: int = 3):
        return [
            Task(f"t-{i:06d}", matmul_problem(1500), arrival=0.0, client="zanzibar")
            for i in range(count)
        ]

    def test_in_flight_tasks_are_finalized_as_failed(self):
        config = MiddlewareConfig(noise_model=None, seed=1, max_horizon_s=5.0)
        result = GridMiddleware(first_set_platform(), "msf", config=config).run(
            self._long_tasks()
        )
        assert result.truncated
        assert result.completed_count == 0
        assert result.duration == pytest.approx(5.0)
        for task in result.tasks:
            assert task.status is TaskStatus.FAILED
            assert task.attempts, "tasks were mapped before the horizon fired"
            assert task.attempts[-1].failure_reason == "horizon"
            assert task.attempts[-1].failed_at == pytest.approx(5.0)

    def test_complete_runs_are_not_flagged(self, first_platform, small_matmul_metatask, quiet_config):
        result = GridMiddleware(first_platform, "msf", config=quiet_config).run(
            small_matmul_metatask
        )
        assert not result.truncated
        assert result.completed_count == len(small_matmul_metatask)
