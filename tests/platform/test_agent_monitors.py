"""Tests of the agent, the monitors and the platform specifications."""

from __future__ import annotations

import pytest

from repro.core.heuristics import HmctHeuristic, MctHeuristic
from repro.errors import NoCandidateServer, PlatformError, SchedulingError
from repro.platform.agent import Agent
from repro.platform.monitors import LoadMonitor, LoadReport
from repro.platform.server import ComputeServer
from repro.platform.spec import (
    DEFAULT_LINK,
    PAPER_MACHINES,
    LinkSpec,
    MachineRole,
    MachineSpec,
    PlatformSpec,
)
from repro.simulation import Environment
from repro.workload.problems import PAPER_CATALOGUE, matmul_problem
from repro.workload.tasks import Task


def build_agent(env, heuristic=None, servers=("artimon", "pulney")):
    agent = Agent(env, heuristic or MctHeuristic())
    built = {}
    for name in servers:
        server = ComputeServer(
            env=env,
            spec=PAPER_MACHINES[name],
            problems=[p.name for p in PAPER_CATALOGUE],
            catalogue=PAPER_CATALOGUE,
        )
        agent.register_server(server)
        built[name] = server
    return agent, built


class TestSpec:
    def test_link_transfer_time(self):
        link = LinkSpec(bandwidth_mb_s=10.0, latency_s=0.5)
        assert link.transfer_time(20.0) == pytest.approx(2.5)
        with pytest.raises(ValueError):
            LinkSpec(bandwidth_mb_s=0.0)

    def test_platform_requires_each_role(self):
        servers_only = {"artimon": PAPER_MACHINES["artimon"]}
        with pytest.raises(PlatformError):
            PlatformSpec(machines=servers_only)

    def test_platform_key_mismatch_rejected(self):
        machines = {
            "wrong-key": PAPER_MACHINES["artimon"],
            "xrousse": PAPER_MACHINES["xrousse"],
            "zanzibar": PAPER_MACHINES["zanzibar"],
        }
        with pytest.raises(PlatformError):
            PlatformSpec(machines=machines)

    def test_link_lookup_is_symmetric_with_default(self, first_platform):
        explicit = LinkSpec(bandwidth_mb_s=100.0)
        platform = PlatformSpec(
            machines=first_platform.machines,
            links={("zanzibar", "artimon"): explicit},
        )
        assert platform.link("artimon", "zanzibar") is explicit
        assert platform.link("zanzibar", "pulney") is DEFAULT_LINK

    def test_subset_keeps_agent_and_client(self, first_platform):
        subset = first_platform.subset(["artimon"])
        assert subset.server_names() == ("artimon",)
        assert subset.agent_name == "xrousse"
        with pytest.raises(PlatformError):
            first_platform.subset(["unknown-server"])

    def test_machine_validation(self):
        with pytest.raises(ValueError):
            MachineSpec("x", "cpu", speed_mhz=0.0, memory_mb=1.0, swap_mb=1.0)
        with pytest.raises(ValueError):
            MachineSpec("x", "cpu", 100.0, 1.0, 1.0, role="weird")
        with pytest.raises(ValueError):
            MachineSpec("x", "cpu", 100.0, 1.0, 1.0, cpu_count=0)

    def test_with_role_returns_modified_copy(self):
        spec = PAPER_MACHINES["artimon"].with_role(MachineRole.CLIENT)
        assert spec.role == MachineRole.CLIENT
        assert PAPER_MACHINES["artimon"].role == MachineRole.SERVER


class TestMonitors:
    def test_monitor_emits_initial_and_periodic_reports(self, env):
        server = ComputeServer(
            env, PAPER_MACHINES["artimon"], ["matmul-1200"], PAPER_CATALOGUE
        )
        received = []
        LoadMonitor(env, server, deliver=received.append, period=10.0, delay=0.0, jitter=0.0)
        env.run(until=35.0)
        assert len(received) == 4  # t=0, 10, 20, 30
        assert all(isinstance(report, LoadReport) for report in received)
        assert received[0].server == "artimon"
        assert received[0].is_up

    def test_monitor_delay_shifts_reception(self, env):
        server = ComputeServer(
            env, PAPER_MACHINES["artimon"], ["matmul-1200"], PAPER_CATALOGUE
        )
        received = []
        LoadMonitor(
            env, server,
            deliver=lambda report: received.append(env.now),
            period=10.0, delay=2.0, jitter=0.0,
        )
        env.run(until=25.0)
        assert received[0] == pytest.approx(2.0)
        assert received[1] == pytest.approx(12.0)

    def test_invalid_monitor_parameters(self, env):
        server = ComputeServer(
            env, PAPER_MACHINES["artimon"], ["matmul-1200"], PAPER_CATALOGUE
        )
        with pytest.raises(ValueError):
            LoadMonitor(env, server, deliver=lambda r: None, period=0.0)
        with pytest.raises(ValueError):
            LoadMonitor(env, server, deliver=lambda r: None, period=1.0, delay=-1.0)


class TestAgent:
    def test_registration_and_duplicate_rejection(self, env):
        agent, servers = build_agent(env)
        assert set(agent.registered_servers()) == {"artimon", "pulney"}
        with pytest.raises(SchedulingError):
            agent.register_server(servers["artimon"])
        with pytest.raises(SchedulingError):
            agent.registration("nowhere")

    def test_schedule_updates_corrections_and_logs(self, env):
        agent, _ = build_agent(env)
        task = Task("t1", matmul_problem(1200), arrival=0.0)
        decision = agent.schedule(task)
        assert decision.server in ("artimon", "pulney")
        assert agent.registration(decision.server).pending_correction == 1
        assert agent.stats.mappings == 1
        assert agent.decision_log[0][1] == "t1"

    def test_load_report_resets_pending_correction(self, env):
        agent, _ = build_agent(env)
        task = Task("t1", matmul_problem(1200), arrival=0.0)
        decision = agent.schedule(task)
        report = LoadReport(
            server=decision.server, load=1.0, resident_tasks=1, is_up=True,
            emitted_at=0.0, received_at=0.0,
        )
        agent.receive_load_report(report)
        registration = agent.registration(decision.server)
        assert registration.pending_correction == 0
        assert registration.last_report is report

    def test_completion_message_decrements_correction_and_updates_htm(self, env):
        agent, _ = build_agent(env, heuristic=HmctHeuristic())
        task = Task("t1", matmul_problem(1200), arrival=0.0)
        decision = agent.schedule(task)
        assert agent.htm.tracked_task_count(decision.server) == 1
        agent.notify_completion(task, decision.server, at=30.0)
        assert agent.registration(decision.server).pending_correction == 0
        assert agent.htm.tracked_task_count(decision.server) == 0

    def test_failure_notification_removes_task_from_htm(self, env):
        agent, _ = build_agent(env, heuristic=HmctHeuristic())
        task = Task("t1", matmul_problem(1200), arrival=0.0)
        decision = agent.schedule(task)
        agent.notify_failure(task, decision.server, at=5.0)
        assert agent.htm.tracked_task_count(decision.server) == 0

    def test_server_down_excludes_it_from_candidates(self, env):
        agent, _ = build_agent(env)
        agent.notify_server_down("pulney", at=0.0)
        context = agent.build_context(Task("t1", matmul_problem(1200), arrival=0.0))
        assert [info.name for info in context.candidate_servers()] == ["artimon"]
        agent.notify_server_up("pulney", at=10.0)
        context = agent.build_context(Task("t2", matmul_problem(1200), arrival=0.0))
        assert len(context.candidate_servers()) == 2

    def test_no_candidate_server_raises(self, env):
        agent = Agent(env, MctHeuristic())
        server = ComputeServer(
            env, PAPER_MACHINES["artimon"], ["matmul-1500"], PAPER_CATALOGUE
        )
        agent.register_server(server)
        with pytest.raises(NoCandidateServer):
            agent.schedule(Task("t1", matmul_problem(1200), arrival=0.0))

    def test_htm_created_automatically_for_htm_heuristics(self, env):
        agent = Agent(env, HmctHeuristic())
        assert agent.htm is not None
        agent_mct = Agent(env, MctHeuristic())
        assert agent_mct.htm is None

    def test_context_exposes_static_costs_and_cpu_count(self, env):
        agent, _ = build_agent(env)
        context = agent.build_context(Task("t1", matmul_problem(1800), arrival=0.0))
        artimon = context.server("artimon")
        assert artimon.costs.compute_s == 53.0
        assert artimon.cpu_count == 1
