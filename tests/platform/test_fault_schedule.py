"""Tests of scheduled fault/churn windows (outages and slowdowns)."""

from __future__ import annotations

import pytest

from repro.errors import PlatformError
from repro.platform.faults import FaultSchedule, OutageWindow, SlowdownWindow
from repro.platform.middleware import GridMiddleware, MiddlewareConfig
from repro.workload.metatask import generate_metatask
from repro.workload.arrivals import FixedIntervalArrivals
from repro.workload.problems import WASTECPU_PROBLEMS
from repro.workload.testbed import second_set_platform


def _quiet_config(**kwargs) -> MiddlewareConfig:
    """A noise-free middleware config so fault effects are the only variable."""
    defaults = dict(noise_model=None, memory_enabled=False, seed=1)
    defaults.update(kwargs)
    return MiddlewareConfig(**defaults)


def _wastecpu_metatask(count: int = 12, interval: float = 30.0):
    problems = [WASTECPU_PROBLEMS[k] for k in sorted(WASTECPU_PROBLEMS)]
    import numpy as np

    return generate_metatask(
        name="fault-schedule-test",
        problems=problems,
        count=count,
        arrivals=FixedIntervalArrivals(interval),
        rng=np.random.default_rng(0),
    )


class TestWindowValidation:
    def test_window_bounds_are_validated(self):
        with pytest.raises(ValueError):
            OutageWindow("a", start_s=-1.0, end_s=10.0)
        with pytest.raises(ValueError):
            OutageWindow("a", start_s=10.0, end_s=10.0)
        with pytest.raises(ValueError):
            SlowdownWindow("a", start_s=0.0, end_s=10.0, factor=0.0)

    def test_overlapping_same_kind_windows_are_rejected(self):
        with pytest.raises(ValueError, match="overlapping"):
            FaultSchedule(
                windows=(
                    SlowdownWindow("a", 0.0, 100.0, 0.5),
                    SlowdownWindow("a", 50.0, 150.0, 0.25),
                )
            )

    def test_disjoint_and_cross_kind_windows_are_fine(self):
        schedule = FaultSchedule(
            windows=(
                SlowdownWindow("a", 0.0, 100.0, 0.5),
                SlowdownWindow("a", 100.0, 150.0, 0.25),
                OutageWindow("a", 20.0, 30.0),
                OutageWindow("b", 20.0, 30.0),
            )
        )
        assert schedule.server_names() == ("a", "b")
        assert len(schedule.for_server("a")) == 3
        assert [w.start_s for w in schedule.for_server("a")] == [0.0, 20.0, 100.0]

    def test_unknown_server_fails_fast_at_middleware_construction(self):
        config = _quiet_config(
            fault_schedule=FaultSchedule(windows=(OutageWindow("nope", 0.0, 10.0),))
        )
        with pytest.raises(PlatformError, match="unknown servers"):
            GridMiddleware(platform=second_set_platform(), heuristic="mct", config=config)


class TestScheduledOutage:
    def test_outage_fails_resident_tasks_and_server_recovers(self):
        # Arrivals every 60 s up to t = 420 s; spinnaker (the fastest server,
        # where MCT sends the first task) dies at 10 s — killing that resident
        # task — and returns at 300 s, before the run ends, so recovery is
        # observable.
        schedule = FaultSchedule(windows=(OutageWindow("spinnaker", 10.0, 300.0),))
        middleware = GridMiddleware(
            platform=second_set_platform(),
            heuristic="mct",
            config=_quiet_config(
                fault_schedule=schedule,
                fault_tolerance=middleware_retry_policy(),
            ),
        )
        result = middleware.run(_wastecpu_metatask(count=8, interval=60.0))
        server = middleware.servers["spinnaker"]
        assert server.stats.outages == 1
        assert server.is_up  # recovered after the window
        # At least one task died to the outage; fault tolerance re-ran it.
        outage_failures = [
            t
            for t in result.tasks
            for a in t.attempts
            if a.failure_reason and "outage" in a.failure_reason
        ]
        assert outage_failures
        assert result.completed_count == len(result.tasks)

    def test_back_to_back_outage_windows_keep_the_server_down_in_any_order(self):
        # Two windows sharing the boundary instant t=200, in either
        # declaration order: the server must stay down until the *last*
        # window closes, with no momentary recovery (agent re-registration)
        # at the boundary.
        for windows in (
            (OutageWindow("spinnaker", 100.0, 200.0), OutageWindow("spinnaker", 200.0, 300.0)),
            (OutageWindow("spinnaker", 200.0, 300.0), OutageWindow("spinnaker", 100.0, 200.0)),
        ):
            middleware = GridMiddleware(
                platform=second_set_platform(),
                heuristic="mct",
                config=_quiet_config(fault_schedule=FaultSchedule(windows=windows)),
            )
            server = middleware.servers["spinnaker"]
            recoveries = []
            server.on_recovery.append(lambda _s, at: recoveries.append(at))
            probes = {}
            for at in (150.0, 250.0, 350.0):
                timeout = middleware.env.timeout(at)
                timeout.callbacks.append(
                    lambda _evt, t=at: probes.__setitem__(t, server.is_up)
                )
            middleware.env.run(until=400.0)
            assert probes == {150.0: False, 250.0: False, 350.0: True}, windows
            assert recoveries == [300.0], windows  # one recovery, at the end

    def test_outage_window_cannot_shorten_collapse_recovery(self, env):
        # A memory collapse mandates recovery_s of downtime; an outage window
        # opening during the collapse and closing *before* the recovery is due
        # must not bring the server back early.
        from repro.platform.faults import MemoryModel
        from repro.platform.server import ComputeServer
        from repro.platform.spec import PAPER_MACHINES
        from repro.workload.problems import PAPER_CATALOGUE

        server = ComputeServer(
            env,
            PAPER_MACHINES["artimon"],
            ["matmul-1200"],
            PAPER_CATALOGUE,
            memory_model=MemoryModel(enabled=True, recovery_s=100.0),
        )
        server._collapse(0.0)  # recovery due at t=100
        server.begin_outage()  # outage overlaps the collapse downtime
        probes = {}
        for at, action in (
            (20.0, server.end_outage),  # closes before the recovery is due
            (30.0, lambda: probes.__setitem__(30.0, server.is_up)),
            (150.0, lambda: probes.__setitem__(150.0, server.is_up)),
        ):
            timeout = env.timeout(at - env.now) if at > env.now else env.timeout(0)
            timeout.callbacks.append(lambda _evt, f=action: f())
        env.run(until=200.0)
        assert probes == {30.0: False, 150.0: True}

    def test_outage_without_fault_tolerance_loses_tasks(self):
        schedule = FaultSchedule(windows=(OutageWindow("spinnaker", 50.0, 400.0),))
        middleware = GridMiddleware(
            platform=second_set_platform(),
            heuristic="msf",  # paper protocol: no resubmission for HTM heuristics
            config=_quiet_config(fault_schedule=schedule),
        )
        result = middleware.run(_wastecpu_metatask(count=8, interval=45.0))
        assert result.failed_count > 0
        assert all(
            "outage" in t.attempts[-1].failure_reason for t in result.failed_tasks
        )


class TestScheduledSlowdown:
    def test_slowdown_stretches_completions_inside_the_window(self):
        metatask = _wastecpu_metatask(count=6, interval=40.0)

        def run(schedule):
            middleware = GridMiddleware(
                platform=second_set_platform(),
                heuristic="mct",
                config=_quiet_config(fault_schedule=schedule),
            )
            return middleware.run(metatask)

        baseline = run(None)
        slowed = run(
            FaultSchedule(
                windows=(SlowdownWindow("spinnaker", 0.0, 100_000.0, 0.25),)
            )
        )
        assert baseline.completed_count == slowed.completed_count == 6
        spinnaker_tasks = [t for t in slowed.tasks if t.server == "spinnaker"]
        assert spinnaker_tasks, "expected MCT to use the fastest server"
        for task in spinnaker_tasks:
            assert (
                task.completion_time
                > baseline.task_by_id(task.task_id).completion_time + 1.0
            )

    def test_back_to_back_slowdowns_apply_in_any_declaration_order(self):
        # The earlier window's end-callback must not undo the later window's
        # start-callback at the shared boundary instant, whatever the tuple
        # order — the middleware wires windows sorted by start date.
        for windows in (
            (
                SlowdownWindow("spinnaker", 0.0, 10.0, 0.5),
                SlowdownWindow("spinnaker", 10.0, 1000.0, 0.3),
            ),
            (
                SlowdownWindow("spinnaker", 10.0, 1000.0, 0.3),
                SlowdownWindow("spinnaker", 0.0, 10.0, 0.5),
            ),
        ):
            middleware = GridMiddleware(
                platform=second_set_platform(),
                heuristic="mct",
                config=_quiet_config(fault_schedule=FaultSchedule(windows=windows)),
            )
            factors = {}
            server = middleware.servers["spinnaker"]
            for at in (5.0, 15.0):
                timeout = middleware.env.timeout(at)
                timeout.callbacks.append(
                    lambda _evt, t=at: factors.__setitem__(t, server._slowdown_factor)
                )
            middleware.env.run(until=20.0)
            assert factors == {5.0: 0.5, 15.0: 0.3}, windows

    def test_slowdown_window_restores_nominal_speed_after_end(self):
        # Window covers only the far future relative to the workload: no effect.
        metatask = _wastecpu_metatask(count=4, interval=20.0)

        def run(schedule):
            middleware = GridMiddleware(
                platform=second_set_platform(),
                heuristic="mct",
                config=_quiet_config(fault_schedule=schedule),
            )
            return middleware.run(metatask)

        baseline = run(None)
        inert = run(
            FaultSchedule(windows=(SlowdownWindow("spinnaker", 500_000.0, 600_000.0, 0.1),))
        )
        for task in baseline.tasks:
            assert inert.task_by_id(task.task_id).completion_time == pytest.approx(
                task.completion_time
            )


def middleware_retry_policy():
    from repro.platform.faults import FaultTolerancePolicy

    return FaultTolerancePolicy(enabled=True, max_attempts=5, retry_delay_s=5.0)
