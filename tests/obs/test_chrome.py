"""Schema golden tests of the Chrome ``trace_event`` exporter."""

from __future__ import annotations

import json

from repro.obs import CellTrace, TraceEvent, chrome_trace, write_chrome_trace


def _cell():
    return CellTrace(
        heuristic="mct",
        metatask_index=0,
        repetition=0,
        events=(
            TraceEvent(0.0, "task.submit", (("task", "t1"), ("problem", "matmul-1200"))),
            TraceEvent(0.5, "task.dispatch", (("task", "t1"), ("server", "adonis"))),
            TraceEvent(4.25, "task.complete", (("task", "t1"), ("server", "adonis"))),
        ),
    )


class TestChromeTrace:
    def test_document_shape_is_the_pinned_schema(self):
        doc = chrome_trace([_cell()])
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["clock"] == "virtual"

    def test_metadata_events_name_cell_and_lanes(self):
        events = chrome_trace([_cell()])["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert meta[0] == {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "mct m0 rep0"},
        }
        lane_names = [e["args"]["name"] for e in meta[1:]]
        assert lane_names == sorted(lane_names)  # tids over sorted actors
        assert "agent" in lane_names and "adonis" in lane_names

    def test_instant_events_scale_virtual_seconds_to_microseconds(self):
        events = chrome_trace([_cell()])["traceEvents"]
        instants = [e for e in events if e["ph"] == "i"]
        assert [e["ts"] for e in instants] == [0.0, 0.5e6, 4.25e6]
        for e in instants:
            assert e["s"] == "t"
            assert e["cat"] == "task"
            assert e["args"]["task"] == "t1"

    def test_server_events_land_on_the_server_lane(self):
        events = chrome_trace([_cell()])["traceEvents"]
        lanes = {e["args"]["name"]: e["tid"] for e in events if e["ph"] == "M" and e["tid"]}
        dispatch = next(e for e in events if e["name"] == "task.dispatch")
        assert dispatch["tid"] == lanes["adonis"]
        submit = next(e for e in events if e["name"] == "task.submit")
        assert submit["tid"] == lanes["agent"]

    def test_cells_become_processes_in_planned_order(self):
        second = CellTrace(heuristic="msf", metatask_index=1, repetition=2,
                           events=(TraceEvent(1.0, "task.submit", (("task", "t2"),)),))
        events = chrome_trace([_cell(), second])["traceEvents"]
        assert {e["pid"] for e in events} == {1, 2}
        names = [e["args"]["name"] for e in events if e["name"] == "process_name"]
        assert names == ["mct m0 rep0", "msf m1 rep2"]

    def test_write_is_valid_json_and_returns_event_count(self, tmp_path):
        path = str(tmp_path / "chrome.json")
        count = write_chrome_trace(path, [_cell()])
        doc = json.load(open(path, encoding="utf-8"))
        assert len(doc["traceEvents"]) == count
