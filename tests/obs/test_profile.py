"""End-to-end tests of the profiling harness and trace determinism.

The two contracts the subsystem ships on:

* a traced campaign's JSONL (and Chrome export) is byte-identical at any
  ``--jobs`` level — the trace is a function of the plan, not the executor;
* turning tracing on does not change a single record.
"""

from __future__ import annotations

import filecmp
import json

import pytest

from repro.errors import ExperimentError
from repro.obs.profile import profile_scenario, trace_scenario

_TASKS = 20


class TestProfileScenario:
    def test_report_has_phases_and_fluid_counters(self):
        report = profile_scenario("diurnal-week", tasks=_TASKS)
        assert [name for name, _ in report.phases] == [
            "setup",
            "workload-gen",
            "simulate",
            "aggregate",
            "report",
        ]
        assert report.cells_counted == report.cells_total > 0
        assert report.tasks_simulated == _TASKS * report.cells_total
        assert any(key.startswith("fluid.") for key in report.counters)
        assert report.profile_top == []  # cProfile off by default

    def test_cprofile_populates_hottest_functions(self):
        report = profile_scenario("diurnal-week", tasks=_TASKS, profile=True, top=5)
        assert 0 < len(report.profile_top) <= 5
        assert all("cumtime_s" in entry for entry in report.profile_top)

    def test_heuristic_subset_is_validated(self):
        with pytest.raises(ExperimentError):
            profile_scenario("diurnal-week", tasks=_TASKS, heuristics=["nope"])

    def test_heuristic_subset_shrinks_the_campaign(self):
        report = profile_scenario("diurnal-week", tasks=_TASKS, heuristics=["mct"])
        assert report.cells_total == 1


class TestTraceDeterminism:
    def test_trace_is_byte_identical_across_jobs(self, tmp_path):
        paths = {}
        for jobs in (1, 2):
            out = str(tmp_path / f"trace-j{jobs}.jsonl")
            chrome = str(tmp_path / f"chrome-j{jobs}.json")
            result = trace_scenario(
                "diurnal-week", out=out, chrome_out=chrome, tasks=_TASKS, jobs=jobs
            )
            assert result.events > 0 and result.dropped == 0
            paths[jobs] = (out, chrome)
        assert filecmp.cmp(paths[1][0], paths[2][0], shallow=False)
        assert filecmp.cmp(paths[1][1], paths[2][1], shallow=False)

    def test_trace_covers_the_event_taxonomy(self, tmp_path):
        out = str(tmp_path / "trace.jsonl")
        trace_scenario("diurnal-week", out=out, tasks=_TASKS)
        kinds = {json.loads(line)["kind"] for line in open(out, encoding="utf-8")}
        assert {"task.submit", "task.dispatch", "task.complete", "monitor.report"} <= kinds
        assert any(kind.startswith("htm.") for kind in kinds)  # hmct/msf cells

    def test_ring_limit_truncates_visibly(self, tmp_path):
        out = str(tmp_path / "trace.jsonl")
        result = trace_scenario("diurnal-week", out=out, tasks=_TASKS, limit=10)
        assert result.dropped > 0
        markers = [
            json.loads(line)
            for line in open(out, encoding="utf-8")
            if json.loads(line)["kind"] == "trace.dropped"
        ]
        assert sum(marker["count"] for marker in markers) == result.dropped

    def test_chrome_export_loads_and_uses_virtual_clock(self, tmp_path):
        out = str(tmp_path / "trace.jsonl")
        chrome = str(tmp_path / "chrome.json")
        trace_scenario("diurnal-week", out=out, chrome_out=chrome, tasks=_TASKS)
        doc = json.load(open(chrome, encoding="utf-8"))
        assert doc["otherData"]["clock"] == "virtual"
        assert any(event["ph"] == "i" for event in doc["traceEvents"])


class TestTracingNeverChangesRecords:
    def test_traced_and_untraced_campaigns_agree(self):
        from repro.experiments.campaign import run_campaign
        from repro.experiments.config import ExperimentConfig, ExperimentScale
        from repro.scenarios.scenario import (
            build_scenario_metatasks,
            get_scenario,
            scenario_config,
        )

        scenario = get_scenario("diurnal-week")
        config = scenario_config(
            scenario,
            ExperimentConfig(
                scale=ExperimentScale(
                    name="tiny", task_count=_TASKS, metatask_count=1, repetitions=1
                )
            ),
        )
        kwargs = dict(
            experiment_id=f"scenario-{scenario.name}",
            title="t",
            platform=scenario.platform_factory(),
            metatasks=build_scenario_metatasks(scenario, config),
            config=config,
            jobs=1,
        )
        plain = run_campaign(**kwargs)
        # rebuild the platform: a middleware cannot run twice
        kwargs["platform"] = scenario.platform_factory()
        traced = run_campaign(**kwargs, trace=True)
        assert plain.result_set.records == traced.result_set.records
        assert plain.render() == traced.render()
        assert plain.traces == []
        assert len(traced.traces) > 0
        assert all(len(cell.events) > 0 for cell in traced.traces)


class TestCli:
    def test_profile_run_and_trace_from_the_shell(self, tmp_path, capsys):
        from repro.cli import main

        json_path = str(tmp_path / "perf.json")
        assert main([
            "profile", "run", "diurnal-week",
            "--tasks", str(_TASKS), "--heuristics", "mct", "--json", json_path,
        ]) == 0
        assert "perf report: diurnal-week" in capsys.readouterr().out
        assert json.load(open(json_path))["schema"] == "perf-report/v1"

        out = str(tmp_path / "trace.jsonl")
        assert main([
            "profile", "trace", "diurnal-week",
            "--tasks", str(_TASKS), "--heuristics", "mct", "--out", out,
        ]) == 0
        assert "trace: diurnal-week" in capsys.readouterr().out
        assert len(open(out).read().splitlines()) > 0

    def test_profile_rejects_bad_jobs(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["profile", "run", "diurnal-week", "--jobs", "0"])
