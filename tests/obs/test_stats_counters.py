"""Tests of the sequential stopping engine's ``stats.*`` counter family."""

from __future__ import annotations

import io

import numpy as np

from repro.experiments import ExperimentConfig, ExperimentScale, run_campaign
from repro.obs import PerfReportObserver
from repro.results import ProgressObserver
from repro.workload.testbed import first_set_platform, matmul_metatask


def _metatask():
    return matmul_metatask(
        count=12, mean_interarrival=20.0, rng=np.random.default_rng(42), name="seq"
    )


def _sequential_config() -> ExperimentConfig:
    return ExperimentConfig(
        scale=ExperimentScale(name="tiny", task_count=12, metatask_count=1, repetitions=1),
        seed=2003,
        heuristics=("mct", "msf"),
        ci_target=0.5,
        ci_min_reps=3,
        ci_max_reps=4,
    )


class TestSequentialCounters:
    def test_sequential_meta_carries_the_counter_family(self):
        table = run_campaign(
            "seq", "t", first_set_platform(), [_metatask()], _sequential_config()
        )
        counters = table.result_set.meta["sequential"]["counters"]
        assert counters["stats.rounds"] >= 1
        assert counters["stats.cells"] == len(table.result_set)
        assert counters["stats.cells_last_round"] >= 1
        assert counters["stats.groups"] == 2  # (heuristic, metatask) groups
        assert 0 <= counters["stats.groups_unresolved"] <= counters["stats.groups"]

    def test_fixed_campaigns_carry_no_stats_counters(self):
        config = ExperimentConfig(
            scale=ExperimentScale(name="tiny", task_count=12, metatask_count=1),
            seed=2003,
            heuristics=("mct", "msf"),
        )
        table = run_campaign("fixed", "t", first_set_platform(), [_metatask()], config)
        assert "sequential" not in table.result_set.meta

    def test_perf_report_observer_merges_them_into_its_rollup(self):
        observer = PerfReportObserver()
        run_campaign(
            "seq", "t", first_set_platform(), [_metatask()], _sequential_config(),
            observers=[observer],
        )
        counters = observer.counters()
        assert counters["stats.rounds"] == observer.campaign_counters["stats.rounds"]
        assert "stats.cells" in counters
        # Cell-level counters still roll up alongside the campaign-level ones.
        assert any(not key.startswith("stats.") for key in counters)

    def test_progress_observer_end_line_reports_the_stop_state(self):
        stream = io.StringIO()
        run_campaign(
            "seq", "t", first_set_platform(), [_metatask()], _sequential_config(),
            observers=[ProgressObserver(stream=stream)],
        )
        end_line = stream.getvalue().strip().splitlines()[-1]
        assert "sequential:" in end_line
        assert "round(s)" in end_line and "unresolved at stop" in end_line

    def test_progress_end_line_is_unchanged_for_fixed_campaigns(self):
        stream = io.StringIO()
        config = ExperimentConfig(
            scale=ExperimentScale(name="tiny", task_count=12, metatask_count=1),
            seed=2003,
            heuristics=("mct",),
        )
        run_campaign(
            "fixed", "t", first_set_platform(), [_metatask()], config,
            observers=[ProgressObserver(stream=stream)],
        )
        assert "sequential:" not in stream.getvalue().splitlines()[-1]
