"""Unit tests of the trace bus: events, ring bounds, JSONL serialisation."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    CellTrace,
    TraceEvent,
    Tracer,
    event_line,
    read_trace_jsonl,
    write_trace_jsonl,
)


class TestTraceEvent:
    def test_as_dict_puts_t_and_kind_first(self):
        event = TraceEvent(1.5, "task.dispatch", (("task", "t1"), ("server", "a")))
        assert list(event.as_dict()) == ["t", "kind", "task", "server"]

    def test_events_are_hashable_and_frozen(self):
        event = TraceEvent(0.0, "task.submit", (("task", "t1"),))
        assert {event, event} == {event}
        with pytest.raises(AttributeError):
            event.t = 1.0


class TestTracer:
    def test_emit_preserves_order_and_payload(self):
        tracer = Tracer()
        tracer.emit(0.5, "task.submit", task="t1")
        tracer.emit(1.0, "task.dispatch", task="t1", server="adonis")
        kinds = [event.kind for event in tracer.events()]
        assert kinds == ["task.submit", "task.dispatch"]
        assert tracer.events()[1].data == (("task", "t1"), ("server", "adonis"))

    def test_ring_limit_keeps_newest_and_counts_dropped(self):
        tracer = Tracer(limit=3)
        for i in range(5):
            tracer.emit(float(i), "tick", i=i)
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert [dict(e.data)["i"] for e in tracer.events()] == [2, 3, 4]

    def test_unbounded_by_default(self):
        tracer = Tracer()
        for i in range(100):
            tracer.emit(float(i), "tick")
        assert len(tracer) == 100 and tracer.dropped == 0

    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(limit=0)


class TestJsonl:
    def _cell(self, events, dropped=0):
        return CellTrace(
            heuristic="mct",
            metatask_index=0,
            repetition=1,
            events=tuple(events),
            dropped=dropped,
        )

    def test_event_line_is_compact_and_cell_tagged(self):
        event = TraceEvent(2.5, "task.complete", (("task", "t9"),))
        line = event_line(event, self._cell([event]))
        assert line == '{"cell":"mct/m0/rep1","t":2.5,"kind":"task.complete","task":"t9"}'

    def test_event_line_rejects_non_finite_payloads(self):
        event = TraceEvent(0.0, "bad", (("x", float("inf")),))
        with pytest.raises(ValueError):
            event_line(event)

    def test_write_read_roundtrip(self, tmp_path):
        events = [TraceEvent(float(i), "tick", (("i", i),)) for i in range(3)]
        path = str(tmp_path / "trace.jsonl")
        assert write_trace_jsonl(path, [self._cell(events)]) == 3
        loaded = read_trace_jsonl(path)
        assert [entry["i"] for entry in loaded] == [0, 1, 2]
        assert all(entry["cell"] == "mct/m0/rep1" for entry in loaded)

    def test_truncated_cell_gets_a_dropped_marker_line(self, tmp_path):
        events = [TraceEvent(1.0, "tick")]
        path = str(tmp_path / "trace.jsonl")
        assert write_trace_jsonl(path, [self._cell(events, dropped=7)]) == 2
        marker = read_trace_jsonl(path)[-1]
        assert marker["kind"] == "trace.dropped"
        assert marker["count"] == 7

    def test_lines_are_valid_json(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_trace_jsonl(path, [self._cell([TraceEvent(0.25, "tick", (("ok", True),))])])
        for line in open(path, encoding="utf-8"):
            assert json.loads(line)["t"] == 0.25
