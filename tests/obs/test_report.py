"""Tests of the perf-report observer, document schema and persistence."""

from __future__ import annotations

import json

import pytest

from repro.obs import PerfReport, PerfReportObserver


class _Record:
    def __init__(self, heuristic="mct", metatask_index=0, repetition=0, truncated=False):
        self.heuristic = heuristic
        self.metatask_index = metatask_index
        self.repetition = repetition
        self.truncated = truncated


class _Run:
    def __init__(self, counters, n_tasks):
        self.counters = counters
        self.tasks = [object()] * n_tasks


class TestPerfReportObserver:
    def test_counts_fresh_cells_and_merges_counters(self):
        observer = PerfReportObserver()
        observer.on_campaign_start("exp", 3)
        observer.on_cell_complete(0, 3, _Record(), run=_Run({"a": 1, "b": 2}, 10))
        observer.on_cell_complete(1, 3, _Record(repetition=1), run=_Run({"a": 5}, 10))
        observer.on_cell_complete(2, 3, _Record(repetition=2), cached=True)
        assert observer.cells_total == 3
        assert observer.cells_counted == 2
        assert observer.cells_cached == 1
        assert observer.tasks_simulated == 20
        assert observer.counters() == {"a": 6, "b": 2}
        assert observer.per_cell[0][0] == "mct/m0/rep0"

    def test_truncated_cells_are_flagged(self):
        observer = PerfReportObserver()
        observer.on_campaign_start("exp", 1)
        observer.on_cell_complete(0, 1, _Record(truncated=True), run=_Run({}, 0))
        assert observer.truncated_cells == 1


def _report(**overrides):
    kwargs = dict(
        scenario="diurnal-week",
        experiment_id="scenario-diurnal-week",
        scale={"tasks_per_metatask": 40},
        phases=[("setup", 0.1), ("simulate", 0.9)],
        counters={"fluid.completions": 40},
        cells_total=4,
        cells_counted=4,
        tasks_simulated=160,
    )
    kwargs.update(overrides)
    return PerfReport(**kwargs)


class TestPerfReport:
    def test_as_dict_schema(self):
        doc = _report().as_dict()
        assert doc["schema"] == "perf-report/v1"
        assert doc["wall_s_total"] == pytest.approx(1.0)
        assert doc["phases"][1] == {"name": "simulate", "wall_s": 0.9, "share": 0.9}
        assert doc["cells"] == {"total": 4, "counted": 4, "cached": 0, "truncated": 0}
        assert doc["throughput"]["tasks_simulated"] == 160

    def test_throughput_handles_zero_wall_time(self):
        assert _report(phases=[]).tasks_per_s == 0.0

    def test_save_json_writes_atomically(self, tmp_path):
        path = str(tmp_path / "perf-report.json")
        assert _report().save_json(path) == path
        doc = json.load(open(path, encoding="utf-8"))
        assert doc["schema"] == "perf-report/v1"
        leftovers = [p for p in tmp_path.iterdir() if p.name != "perf-report.json"]
        assert leftovers == []  # no temp file survives a clean save

    def test_render_lists_phases_and_counters(self):
        text = _report().render()
        assert "perf report: diurnal-week" in text
        assert "simulate" in text and "fluid.completions" in text
