"""Tests of Chrome counter-track ("C") events built from metric samples."""

from __future__ import annotations

import json

from repro.obs import CellMetrics, CellTrace, MetricSeries, TraceEvent, chrome_trace, write_chrome_trace


def _metrics_cell(heuristic: str = "mct") -> CellMetrics:
    series = MetricSeries()
    series.append(0.0, {"inflight": 0.0, "queue.a": 0.0, "queue.b": 1.0})
    series.append(60.0, {"inflight": 2.0, "queue.a": 1.0, "queue.b": 0.0})
    return CellMetrics.from_series(heuristic, 0, 0, series)


class TestCounterEvents:
    def test_columns_group_into_families(self):
        document = chrome_trace([], cell_metrics=[_metrics_cell()])
        counters = [e for e in document["traceEvents"] if e["ph"] == "C"]
        # 2 samples x 2 families (inflight, queue).
        assert len(counters) == 4
        by_name = {}
        for event in counters:
            by_name.setdefault(event["name"], []).append(event)
        assert set(by_name) == {"inflight", "queue"}
        # Dotted columns become per-series args on one family track; scalar
        # columns get the "value" key.
        assert by_name["queue"][0]["args"] == {"a": 0.0, "b": 1.0}
        assert by_name["inflight"][1]["args"] == {"value": 2.0}
        # Timestamps are virtual seconds in microseconds.
        assert [e["ts"] for e in by_name["queue"]] == [0.0, 60.0 * 1e6]

    def test_metrics_share_the_pid_of_the_matching_traced_cell(self):
        trace = CellTrace(
            heuristic="mct",
            metatask_index=0,
            repetition=0,
            events=(TraceEvent(0.0, "task.submitted"),),
        )
        document = chrome_trace([trace], cell_metrics=[_metrics_cell("mct")])
        events = document["traceEvents"]
        process_names = [e for e in events if e["name"] == "process_name"]
        assert len(process_names) == 1  # shared pid: no second process entry
        pid = process_names[0]["pid"]
        assert all(e["pid"] == pid for e in events if e["ph"] == "C")

    def test_unmatched_metrics_cell_gets_its_own_process(self):
        trace = CellTrace(
            heuristic="mct", metatask_index=0, repetition=0, events=()
        )
        document = chrome_trace([trace], cell_metrics=[_metrics_cell("msf")])
        process_names = [
            e for e in document["traceEvents"] if e["name"] == "process_name"
        ]
        assert len(process_names) == 2
        assert process_names[1]["args"]["name"] == "msf m0 rep0"

    def test_write_counts_counter_events_and_is_valid_json(self, tmp_path):
        path = str(tmp_path / "trace.json")
        count = write_chrome_trace(path, [], cell_metrics=[_metrics_cell()])
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        assert count == len(document["traceEvents"]) == 5  # 1 metadata + 4 "C"
