"""Tests of the virtual-time metrics sampler, serialisation and dashboards."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.errors import ResultsError
from repro.obs import (
    CellMetrics,
    MetricSeries,
    MetricsSampler,
    SeriesView,
    read_metrics_jsonl,
    render_metrics_html,
    render_metrics_text,
    sparkline,
    views_from_rows,
    write_metrics_csv,
    write_metrics_html,
    write_metrics_jsonl,
)
from repro.platform.middleware import GridMiddleware, MiddlewareConfig


class TestMetricSeries:
    def test_append_and_columns(self):
        series = MetricSeries()
        series.append(0.0, {"a": 1.0, "b": 2.0})
        series.append(60.0, {"a": 3.0, "b": 4.0})
        assert len(series) == 2
        assert series.times == [0.0, 60.0]
        assert series.columns == ("a", "b")
        assert series.column("a") == [1.0, 3.0]

    def test_column_set_is_fixed_by_the_first_row(self):
        series = MetricSeries()
        series.append(0.0, {"a": 1.0})
        with pytest.raises(ValueError):
            series.append(60.0, {"a": 1.0, "b": 2.0})

    def test_pickles_across_worker_boundaries(self):
        series = MetricSeries()
        series.append(0.0, {"a": 1.0})
        clone = pickle.loads(pickle.dumps(series))
        assert clone.times == series.times
        assert clone.column("a") == series.column("a")


class TestMetricsSampler:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            MetricsSampler(0.0)

    def test_window_defaults_to_a_multiple_of_the_interval(self):
        assert MetricsSampler(60.0).window == 300.0
        assert MetricsSampler(60.0, window=100.0).window == 100.0

    def test_window_stats_prune_old_completions(self):
        sampler = MetricsSampler(10.0, window=100.0)
        sampler.note_completion(50.0, latency=5.0)
        sampler.note_completion(120.0, latency=15.0)
        throughput, latency = sampler.window_stats(160.0)
        # Only the t=120 completion is inside (60, 160].
        assert throughput == pytest.approx(1.0 / 100.0)
        assert latency == pytest.approx(15.0)
        assert sampler.window_stats(1000.0) == (0.0, 0.0)


class TestMiddlewareSampling:
    def _run(self, platform, metatask, sampler=None):
        config = MiddlewareConfig(
            memory_enabled=False, noise_model=None, monitor_jitter_s=0.0, seed=7
        )
        middleware = GridMiddleware(
            platform, "mct", config=config, sampler=sampler
        )
        return middleware.run(metatask)

    def test_sampled_run_produces_the_series(
        self, first_platform, small_matmul_metatask
    ):
        sampler = MetricsSampler(60.0)
        result = self._run(first_platform, small_matmul_metatask, sampler)
        series = result.metric_series
        assert series is not None and len(series) >= 2
        names = set(series.columns)
        assert {"inflight", "completed", "failed", "throughput_w",
                "latency_w", "staleness_s", "htm_unfinished"} <= names
        for server in first_platform.server_names():
            assert f"queue.{server}" in names
            assert f"util.{server}" in names
        # Cumulative completions are monotone and end at the task count.
        completed = series.column("completed")
        assert completed == sorted(completed)
        assert completed[-1] == float(len(small_matmul_metatask))
        assert all(0.0 <= u <= 1.0 for u in series.column("util.pulney"))

    def test_sampling_does_not_change_the_run(
        self, first_platform, small_matmul_metatask
    ):
        plain = self._run(first_platform, small_matmul_metatask)
        sampled = self._run(first_platform, small_matmul_metatask, MetricsSampler(60.0))
        assert plain.duration == sampled.duration
        assert [t.completion_time for t in plain.tasks] == [
            t.completion_time for t in sampled.tasks
        ]
        assert plain.counters == sampled.counters

    def test_unsampled_run_has_no_series(self, first_platform, small_matmul_metatask):
        assert self._run(first_platform, small_matmul_metatask).metric_series is None

    def test_zero_task_run_samples_until_the_horizon(self, first_platform):
        sampler = MetricsSampler(60.0)
        config = MiddlewareConfig(
            memory_enabled=False, noise_model=None, monitor_jitter_s=0.0,
            seed=7, max_horizon_s=200.0,
        )
        result = GridMiddleware(
            first_platform, "mct", config=config, sampler=sampler
        ).run([])
        assert not result.truncated  # zero expected, zero terminal
        series = result.metric_series
        assert len(series) >= 3
        assert all(v == 0.0 for v in series.column("inflight"))
        assert all(v == 0.0 for v in series.column("completed"))

    def test_horizon_truncated_run_closes_with_a_final_sample(
        self, first_platform, small_matmul_metatask
    ):
        sampler = MetricsSampler(2.0)
        config = MiddlewareConfig(
            memory_enabled=False, noise_model=None, monitor_jitter_s=0.0,
            seed=7, max_horizon_s=5.0,
        )
        result = GridMiddleware(
            first_platform, "mct", config=config, sampler=sampler
        ).run(small_matmul_metatask)
        assert result.truncated
        series = result.metric_series
        # The closing sample lands at the horizon and still shows the tasks
        # as in flight: the post-hoc 'horizon' failures are bookkeeping, not
        # something the simulation observed.
        assert series.times[-1] == 5.0
        assert series.column("inflight")[-1] > 0.0
        assert series.column("failed")[-1] == 0.0


class TestCellMetrics:
    def test_from_series_and_views(self):
        series = MetricSeries()
        series.append(0.0, {"a": 1.0})
        series.append(60.0, {"a": 2.0})
        cell = CellMetrics.from_series("mct", 0, 1, series)
        assert cell.cell_id == "mct/m0/rep1"
        assert cell.column("a") == (1.0, 2.0)
        with pytest.raises(KeyError):
            cell.column("missing")
        view = cell.view()
        assert view.label == "mct/m0/rep1"
        assert view.columns["a"] == (1.0, 2.0)

    def test_from_none_is_an_empty_cell(self):
        cell = CellMetrics.from_series("mct", 0, 0, None)
        assert cell.times == () and cell.columns == ()


def _two_cells():
    series = MetricSeries()
    series.append(0.0, {"inflight": 0.0, "queue.a": 0.0})
    series.append(60.0, {"inflight": 2.0, "queue.a": 1.5})
    full = CellMetrics.from_series("mct", 0, 0, series)
    empty = CellMetrics.from_series("msf", 0, 0, None)
    return [full, empty]


class TestSerialisation:
    def test_jsonl_roundtrip(self, tmp_path):
        path = str(tmp_path / "metrics.jsonl")
        assert write_metrics_jsonl(path, _two_cells()) == 2
        header, rows = read_metrics_jsonl(path)
        assert header == {"schema": "metrics/v1", "cells": 2}
        assert [row["cell"] for row in rows] == ["mct/m0/rep0"] * 2
        assert rows[1]["queue.a"] == 1.5
        views = views_from_rows(rows)
        assert [view.label for view in views] == ["mct/m0/rep0"]
        assert views[0].columns["inflight"] == (0.0, 2.0)

    def test_schema_mismatch_is_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema":"metrics/v999","cells":0}\n', encoding="utf-8")
        with pytest.raises(ResultsError):
            read_metrics_jsonl(str(path))

    def test_csv_export(self, tmp_path):
        path = str(tmp_path / "metrics.csv")
        write_metrics_csv(path, _two_cells())
        lines = (tmp_path / "metrics.csv").read_text(encoding="utf-8").splitlines()
        assert lines[0] == "cell,t,inflight,queue.a"
        assert lines[1] == "mct/m0/rep0,0.0,0.0,0.0"
        assert lines[2] == "mct/m0/rep0,60.0,2.0,1.5"


class TestCampaignDeterminism:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_metrics_jsonl_is_byte_identical_across_jobs(self, tmp_path, jobs):
        from repro.obs.profile import metrics_scenario

        paths = []
        for tag, level in (("serial", 1), ("parallel", jobs)):
            path = str(tmp_path / f"metrics-{tag}.jsonl")
            metrics_scenario(
                "paper-low-rate", out=path, tasks=15, jobs=level, interval=120.0
            )
            paths.append(path)
        with open(paths[0], "rb") as a, open(paths[1], "rb") as b:
            assert a.read() == b.read()

    def test_store_recovered_cells_have_empty_series(self, tmp_path):
        import numpy as np

        from repro.experiments import ExperimentConfig, ExperimentScale, run_campaign
        from repro.workload.testbed import first_set_platform, matmul_metatask

        config = ExperimentConfig(
            scale=ExperimentScale(name="tiny", task_count=10, metatask_count=1),
            seed=42,
        )
        metatask = matmul_metatask(10, 20.0, rng=np.random.default_rng(42), name="m")
        store = str(tmp_path / "store")
        cold = run_campaign(
            "t", "t", first_set_platform(), [metatask], config,
            store=store, metrics_interval=60.0,
        )
        assert all(len(cell.times) > 0 for cell in cold.metrics)
        warm = run_campaign(
            "t", "t", first_set_platform(), [metatask], config,
            store=store, metrics_interval=60.0,
        )
        assert [r.__dict__ for r in warm.result_set] == [
            r.__dict__ for r in cold.result_set
        ]
        assert all(cell.times == () for cell in warm.metrics)

    def test_metrics_off_campaign_has_no_ride_along(self):
        import numpy as np

        from repro.experiments import ExperimentConfig, ExperimentScale, run_campaign
        from repro.workload.testbed import first_set_platform, matmul_metatask

        config = ExperimentConfig(
            scale=ExperimentScale(name="tiny", task_count=10, metatask_count=1),
            seed=42,
        )
        metatask = matmul_metatask(10, 20.0, rng=np.random.default_rng(42), name="m")
        table = run_campaign("t", "t", first_set_platform(), [metatask], config)
        assert table.metrics == []


GOLDEN_VIEWS = [
    SeriesView(
        label="mct/m0/rep0",
        times=(0.0, 60.0, 120.0, 180.0),
        columns={
            "inflight": (0.0, 2.0, 4.0, 1.0),
            "completed": (0.0, 1.0, 3.0, 6.0),
        },
    ),
    SeriesView(
        label="msf/m0/rep0",
        times=(0.0, 60.0, 120.0),
        columns={"inflight": (0.0, 3.0, 0.0), "completed": (0.0, 2.0, 5.0)},
    ),
]

GOLDEN_TEXT = """\
metrics: 2 cell(s), 7 sample(s), 2 column(s)
mct/m0/rep0 — 4 samples, t 0..180 s
  inflight   min          0  mean       1.75  max          4  ▁▅█▃
  completed  min          0  mean        2.5  max          6  ▁▂▅█
msf/m0/rep0 — 3 samples, t 0..120 s
  inflight   min          0  mean          1  max          3  ▁█▁
  completed  min          0  mean    2.33333  max          5  ▁▄█"""


class TestDashboards:
    def test_sparkline_shapes(self):
        assert sparkline([0.0, 1.0, 2.0, 3.0], width=4) == "▁▃▆█"
        assert sparkline([5.0, 5.0, 5.0], width=3) == "▁▁▁"  # flat stays low
        assert sparkline([], width=4) == ""
        with pytest.raises(ValueError):
            sparkline([1.0], width=0)

    def test_golden_text_snapshot(self):
        assert render_metrics_text(GOLDEN_VIEWS, width=8) == GOLDEN_TEXT

    def test_golden_html_snapshot(self, tmp_path):
        html = render_metrics_html(GOLDEN_VIEWS, columns=["inflight"], title="golden")
        assert html.startswith("<!DOCTYPE html>")
        assert "<title>golden</title>" in html
        # One polyline per series, palette colours in legend order.
        assert html.count("<polyline") == 2
        assert 'stroke="#0072b2"' in html and 'stroke="#d55e00"' in html
        assert (
            'points="0.00,120.00 213.33,60.00 426.67,0.00 640.00,90.00"' in html
        )
        # Self-contained: no external references of any kind.
        assert "http" not in html and "src=" not in html
        path = str(tmp_path / "report.html")
        write_metrics_html(path, GOLDEN_VIEWS, columns=["inflight"], title="golden")
        assert (tmp_path / "report.html").read_text(encoding="utf-8") == html + "\n"

    def test_empty_views_render_helpfully(self):
        assert "no samples" in render_metrics_text(
            [SeriesView(label="x", times=(), columns={})]
        )
        assert "no samples" in render_metrics_html(
            [SeriesView(label="x", times=(), columns={})], columns=["inflight"]
        )
