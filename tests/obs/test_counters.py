"""Counter registry tests: merging, and a real run's harvested counters."""

from __future__ import annotations

from repro.obs import Tracer, merge_counters, middleware_counters
from repro.platform.middleware import GridMiddleware


class TestMergeCounters:
    def test_key_wise_sum_with_sorted_keys(self):
        merged = merge_counters([{"b": 1, "a": 2}, {"b": 3, "c": 4}])
        assert merged == {"a": 2, "b": 4, "c": 4}
        assert list(merged) == ["a", "b", "c"]

    def test_empty_input(self):
        assert merge_counters([]) == {}


class TestMiddlewareCounters:
    def test_run_harvests_all_counter_families(
        self, first_platform, small_matmul_metatask, quiet_config
    ):
        middleware = GridMiddleware(first_platform, "hmct", config=quiet_config)
        result = middleware.run(small_matmul_metatask)
        counters = middleware_counters(middleware)
        assert counters == result.counters  # run() snapshots the same rollup
        assert list(counters) == sorted(counters)
        n = len(small_matmul_metatask)
        assert counters["agent.requests"] == n
        assert counters["agent.mappings"] == n
        assert counters["agent.completion_messages"] == n
        # the ground truth did real fluid work (each task crosses several
        # stage queues, so stage completions exceed the task count)
        assert counters["fluid.completions"] >= n
        assert counters["fluid.heap_pushes"] >= n
        assert counters["htm.commits"] == n
        assert counters["htm.predicts"] > 0
        assert counters["monitor.reports_sent"] > 0
        # prediction-cache split is exhaustive
        assert (
            counters["htm.baseline_cache_hits"] + counters["htm.baseline_cache_misses"]
            > 0
        )

    def test_mct_has_no_htm_counters(
        self, first_platform, small_matmul_metatask, quiet_config
    ):
        middleware = GridMiddleware(first_platform, "mct", config=quiet_config)
        middleware.run(small_matmul_metatask)
        counters = middleware_counters(middleware)
        assert not any(key.startswith("htm.") for key in counters)

    def test_counters_are_deterministic(
        self, first_platform, small_matmul_metatask, quiet_config
    ):
        runs = [
            GridMiddleware(first_platform, "msf", config=quiet_config).run(
                small_matmul_metatask
            )
            for _ in range(2)
        ]
        assert runs[0].counters == runs[1].counters


class TestMonitorSummary:
    def test_summary_reports_traffic_and_staleness(
        self, first_platform, small_matmul_metatask, quiet_config
    ):
        result = GridMiddleware(first_platform, "mct", config=quiet_config).run(
            small_matmul_metatask
        )
        summary = result.monitor_summary
        assert summary["reports_sent"] >= summary["reports_received"] > 0
        assert summary["reports_dropped"] == 0
        n = len(small_matmul_metatask)
        assert (
            summary["dispatches_with_report"] + summary["dispatches_without_report"]
            == n
        )
        assert summary["staleness_max_s"] >= summary["staleness_mean_s"] >= 0.0

    def test_tracing_does_not_change_the_numbers(
        self, first_platform, small_matmul_metatask, quiet_config
    ):
        plain = GridMiddleware(first_platform, "hmct", config=quiet_config).run(
            small_matmul_metatask
        )
        traced = GridMiddleware(
            first_platform, "hmct", config=quiet_config, tracer=Tracer()
        ).run(small_matmul_metatask)
        assert [
            (t.task_id, t.server, t.completion_time) for t in plain.tasks
        ] == [(t.task_id, t.server, t.completion_time) for t in traced.tasks]
        assert plain.counters == traced.counters
        assert plain.monitor_summary == traced.monitor_summary
        assert plain.trace_events == ()
        assert len(traced.trace_events) > 0
