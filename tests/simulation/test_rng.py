"""Tests of the reproducible named random streams."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import RandomStreams


class TestDeterminism:
    def test_same_seed_same_name_gives_same_draws(self):
        a = RandomStreams(42)["arrivals"].random(10)
        b = RandomStreams(42)["arrivals"].random(10)
        assert np.allclose(a, b)

    def test_different_names_give_independent_streams(self):
        streams = RandomStreams(42)
        a = streams["arrivals"].random(10)
        b = streams["noise"].random(10)
        assert not np.allclose(a, b)

    def test_request_order_does_not_matter(self):
        first = RandomStreams(1)
        second = RandomStreams(1)
        _ = first["x"]
        a = first["y"].random(5)
        b = second["y"].random(5)  # requested without touching "x" first
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(1)["arrivals"].random(5)
        b = RandomStreams(2)["arrivals"].random(5)
        assert not np.allclose(a, b)

    def test_generator_alias(self):
        streams = RandomStreams(0)
        assert streams.generator("x") is streams["x"]

    def test_names_tracks_requested_streams(self):
        streams = RandomStreams(0)
        _ = streams["a"], streams["b"]
        assert set(streams.names()) == {"a", "b"}

    def test_spawn_creates_independent_family(self):
        parent = RandomStreams(3)
        child = parent.spawn("worker")
        assert child.seed != parent.seed
        # the spawned family is itself deterministic
        again = RandomStreams(3).spawn("worker")
        assert np.allclose(child["x"].random(5), again["x"].random(5))

    @given(st.text(min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_any_stream_name_is_reproducible(self, name):
        a = RandomStreams(7)[name].random(3)
        b = RandomStreams(7)[name].random(3)
        assert np.allclose(a, b)
