"""Unit and property tests of the processor-sharing queue."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.simulation.fluid import EPSILON, ProcessorSharingQueue


class TestSingleJob:
    def test_single_job_completes_after_its_work(self):
        queue = ProcessorSharingQueue(capacity=1.0)
        queue.add("a", 10.0, now=0.0)
        assert queue.next_completion_time() == pytest.approx(10.0)
        completions = queue.advance_to(10.0)
        assert completions == [(pytest.approx(10.0), "a")]
        assert len(queue) == 0

    def test_capacity_scales_completion_time(self):
        queue = ProcessorSharingQueue(capacity=2.0)
        queue.add("a", 10.0, now=0.0)
        assert queue.next_completion_time() == pytest.approx(5.0)

    def test_zero_capacity_means_no_progress(self):
        queue = ProcessorSharingQueue(capacity=0.0)
        queue.add("a", 10.0, now=0.0)
        assert queue.next_completion_time() == math.inf
        queue.advance_to(100.0)
        assert queue.remaining("a") == pytest.approx(10.0)

    def test_zero_work_job_completes_immediately(self):
        queue = ProcessorSharingQueue()
        queue.add("a", 0.0, now=0.0)
        completions = queue.advance_to(1.0)
        assert [key for _, key in completions] == ["a"]


class TestSharing:
    def test_two_equal_jobs_finish_together_at_double_time(self):
        queue = ProcessorSharingQueue()
        queue.add("a", 10.0, now=0.0)
        queue.add("b", 10.0, now=0.0)
        completions = queue.advance_to(25.0)
        assert [(round(t, 6), k) for t, k in completions] == [(20.0, "a"), (20.0, "b")]

    def test_staggered_arrival_slows_the_first_job(self):
        # a: 10 units at t=0; b: 10 units at t=5.
        # a has 5 left at t=5, shared rate 1/2 -> a finishes at 15;
        # b then has 5 left, alone -> finishes at 20.
        queue = ProcessorSharingQueue()
        queue.add("a", 10.0, now=0.0)
        queue.add("b", 10.0, now=5.0)
        completions = dict((k, t) for t, k in queue.advance_to(30.0))
        assert completions["a"] == pytest.approx(15.0)
        assert completions["b"] == pytest.approx(20.0)

    def test_rate_reflects_number_of_jobs(self):
        queue = ProcessorSharingQueue(capacity=1.0)
        assert queue.rate() == 0.0
        queue.add("a", 10.0, now=0.0)
        assert queue.rate() == pytest.approx(1.0)
        queue.add("b", 10.0, now=0.0)
        assert queue.rate() == pytest.approx(0.5)

    def test_per_job_cap_limits_single_job_rate(self):
        queue = ProcessorSharingQueue(capacity=2.0, per_job_cap=1.0)
        queue.add("a", 10.0, now=0.0)
        # A dual-CPU machine does not run one task twice as fast.
        assert queue.next_completion_time() == pytest.approx(10.0)

    def test_per_job_cap_allows_parallel_jobs_without_interference(self):
        queue = ProcessorSharingQueue(capacity=2.0, per_job_cap=1.0)
        queue.add("a", 10.0, now=0.0)
        queue.add("b", 10.0, now=0.0)
        completions = dict((k, t) for t, k in queue.advance_to(50.0))
        assert completions["a"] == pytest.approx(10.0)
        assert completions["b"] == pytest.approx(10.0)

    def test_per_job_cap_with_three_jobs_on_two_cpus(self):
        queue = ProcessorSharingQueue(capacity=2.0, per_job_cap=1.0)
        for key in ("a", "b", "c"):
            queue.add(key, 12.0, now=0.0)
        # 3 jobs share 2 CPUs -> each runs at 2/3: completion at 18.
        assert queue.next_completion_time() == pytest.approx(18.0)


class TestMutation:
    def test_remove_returns_remaining_work(self):
        queue = ProcessorSharingQueue()
        queue.add("a", 10.0, now=0.0)
        queue.add("b", 10.0, now=0.0)
        remaining = queue.remove("a", now=4.0)  # each progressed by 2
        assert remaining == pytest.approx(8.0)
        assert "a" not in queue

    def test_set_capacity_mid_flight(self):
        queue = ProcessorSharingQueue(capacity=1.0)
        queue.add("a", 10.0, now=0.0)
        queue.set_capacity(2.0, now=5.0)  # 5 remaining at double speed
        assert queue.next_completion_time() == pytest.approx(7.5)

    def test_duplicate_key_rejected(self):
        queue = ProcessorSharingQueue()
        queue.add("a", 1.0, now=0.0)
        with pytest.raises(SimulationError):
            queue.add("a", 1.0, now=0.0)

    def test_negative_work_rejected(self):
        queue = ProcessorSharingQueue()
        with pytest.raises(ValueError):
            queue.add("a", -1.0, now=0.0)

    def test_backwards_advance_rejected(self):
        queue = ProcessorSharingQueue()
        queue.advance_to(10.0)
        with pytest.raises(SimulationError):
            queue.advance_to(5.0)

    def test_copy_is_independent(self):
        queue = ProcessorSharingQueue()
        queue.add("a", 10.0, now=0.0)
        clone = queue.copy()
        clone.advance_to(10.0)
        assert len(clone) == 0
        assert len(queue) == 1
        assert queue.remaining("a") == pytest.approx(10.0)

    def test_active_keys_in_insertion_order(self):
        queue = ProcessorSharingQueue()
        for key in ("z", "a", "m"):
            queue.add(key, 5.0, now=0.0)
        assert queue.active_keys() == ["z", "a", "m"]


class TestProperties:
    """Hypothesis property tests on the conservation laws of the fluid model."""

    @given(works=st.lists(st.floats(min_value=0.1, max_value=50.0), min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_last_completion_equals_total_work_when_all_arrive_together(self, works):
        queue = ProcessorSharingQueue(capacity=1.0)
        for i, work in enumerate(works):
            queue.add(i, work, now=0.0)
        completions = queue.advance_to(sum(works) + 1.0)
        assert len(completions) == len(works)
        last = max(t for t, _ in completions)
        assert last == pytest.approx(sum(works), rel=1e-6)

    @given(works=st.lists(st.floats(min_value=0.1, max_value=50.0), min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_every_job_takes_at_least_its_unloaded_time(self, works):
        queue = ProcessorSharingQueue(capacity=1.0)
        for i, work in enumerate(works):
            queue.add(i, work, now=0.0)
        completions = dict((k, t) for t, k in queue.advance_to(sum(works) + 1.0))
        for i, work in enumerate(works):
            assert completions[i] >= work - 1e-6

    @given(
        works=st.lists(st.floats(min_value=0.1, max_value=20.0), min_size=2, max_size=6),
        gaps=st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=2, max_size=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_shorter_jobs_arriving_together_never_finish_later(self, works, gaps):
        n = min(len(works), len(gaps))
        works, gaps = works[:n], gaps[:n]
        arrivals = [sum(gaps[:i]) for i in range(n)]
        queue = ProcessorSharingQueue(capacity=1.0)
        completions = {}
        for i, (work, arrival) in enumerate(zip(works, arrivals)):
            # advance explicitly so completions occurring before the arrival
            # are collected rather than swallowed by add()'s internal advance
            completions.update((k, t) for t, k in queue.advance_to(arrival))
            queue.add(i, work, now=arrival)
        horizon = sum(works) + max(arrivals) + 1.0
        completions.update((k, t) for t, k in queue.advance_to(horizon))
        assert len(completions) == n
        # Among jobs sharing the same arrival date, processor sharing preserves
        # the order of their work amounts.
        for i in range(n):
            for j in range(n):
                if arrivals[i] == arrivals[j] and works[i] < works[j]:
                    assert completions[i] <= completions[j] + 1e-6
