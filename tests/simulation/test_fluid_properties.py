"""Property-based invariants of the fluid processor-sharing models.

These tests lock down the physics the whole reproduction rests on — the
``1/n`` sharing model of Section 2.3 — with randomly generated programs:

* **work conservation** — a queue never completes work faster than its
  capacity allows, and busy periods complete work at exactly the capacity;
* **monotonicity** — adding load never makes an existing task finish sooner;
* **copy independence** — ``copy()`` yields a fully independent simulation
  (the HTM's what-if machinery depends on this);
* **advance idempotence / step-splitting invariance** — advancing to ``t``
  in one step or many yields the same state, and re-advancing to the current
  clock is a no-op.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.fluid import EPSILON, FluidNetwork, FluidStage, ProcessorSharingQueue

#: Work amounts that keep runtimes small but exercise real sharing.
works = st.floats(min_value=0.1, max_value=50.0, allow_nan=False, allow_infinity=False)
#: Small non-negative arrival offsets.
offsets = st.floats(min_value=0.0, max_value=20.0, allow_nan=False, allow_infinity=False)


def job_batches():
    """Lists of (arrival_offset, work) pairs describing a random queue program."""
    return st.lists(st.tuples(offsets, works), min_size=1, max_size=8)


def build_queue(batch, capacity=1.0, per_job_cap=None):
    queue = ProcessorSharingQueue(capacity=capacity, per_job_cap=per_job_cap)
    now = 0.0
    for index, (offset, work) in enumerate(batch):
        now += offset
        queue.add(index, work, now=now)
    return queue, now


class TestWorkConservation:
    @given(batch=job_batches(), capacity=st.floats(min_value=0.2, max_value=4.0))
    @settings(max_examples=60, deadline=None)
    def test_completed_work_never_exceeds_capacity_times_time(self, batch, capacity):
        queue = ProcessorSharingQueue(capacity=capacity)
        now = 0.0
        arrivals = {}
        completions = []
        for index, (offset, work) in enumerate(batch):
            now += offset
            completions.extend(queue.advance_to(now))
            queue.add(index, work, now=now)
            arrivals[index] = now
        completions.extend(queue.advance_to(now + 100_000.0))
        # Everything completes eventually...
        assert len(completions) == len(batch)
        # ...no job finishes before work/capacity seconds of service...
        for finished_at, key in completions:
            assert finished_at >= arrivals[key] + batch[key][1] / capacity - 1e-6
        # ...and the last completion cannot beat the aggregate-capacity bound
        # (the queue serves at most `capacity` units of work per second).
        total_work = sum(work for _, work in batch)
        last = max(t for t, _ in completions)
        assert last >= min(arrivals.values()) + total_work / capacity - 1e-6

    @given(work=works, n=st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_simultaneous_equal_jobs_finish_at_n_times_work(self, work, n):
        """n equal jobs sharing capacity 1 all finish at exactly n·work."""
        queue = ProcessorSharingQueue(capacity=1.0)
        for i in range(n):
            queue.add(i, work, now=0.0)
        completions = queue.advance_to(10_000.0)
        assert len(completions) == n
        for finished_at, _ in completions:
            assert finished_at == pytest.approx(n * work, rel=1e-9)


class TestMonotonicity:
    @given(batch=job_batches(), extra=works)
    @settings(max_examples=60, deadline=None)
    def test_added_load_never_speeds_up_existing_jobs_in_queue(self, batch, extra):
        queue_a, _ = build_queue(batch)
        queue_b, _ = build_queue(batch)
        queue_b.add("extra", extra, now=queue_b.time)
        done_a = dict((k, t) for t, k in queue_a.advance_to(100_000.0))
        done_b = dict((k, t) for t, k in queue_b.advance_to(100_000.0))
        for key, finished_a in done_a.items():
            if key == "extra":
                continue
            assert done_b[key] >= finished_a - 1e-6

    @given(
        batch=job_batches(),
        extra=works,
    )
    @settings(max_examples=40, deadline=None)
    def test_added_load_never_speeds_up_tasks_on_a_single_resource_network(self, batch, extra):
        """Single-resource networks inherit the queue's monotonicity."""

        def build(with_extra: bool):
            network = FluidNetwork({"cpu": 1.0})
            now = 0.0
            for i, (offset, work) in enumerate(batch):
                now += offset
                network.add_task(i, arrival=now, stages=(FluidStage("cpu", work),), now=now)
            if with_extra:
                network.add_task("extra", arrival=0.0, stages=(FluidStage("cpu", extra),))
            return network.run_to_completion()

        baseline = build(with_extra=False)
        loaded = build(with_extra=True)
        for key, completion in baseline.items():
            assert loaded[key] >= completion - 1e-6

    def test_multi_stage_networks_are_not_monotone_pipeline_anomaly(self):
        """Documented anomaly: in a *multi-stage* network, added load CAN make
        another task finish sooner.

        Hand-computed counterexample: without the extra job, task0 and task1
        leave the cpu together at t=5 and share ``net_out`` (both finish at 7).
        An extra 2 s cpu job delays task0 enough that task1 gets ``net_out``
        alone and finishes at 6.  This is why HTM perturbations may be
        (slightly) negative and why no network-level monotonicity invariant is
        asserted above.
        """

        def build(with_extra: bool):
            network = FluidNetwork({"net_in": 1.0, "cpu": 1.0, "net_out": 1.0})
            for i, (w_in, w_cpu, w_out) in enumerate([(1.0, 3.0, 1.0), (2.0, 1.0, 1.0)]):
                network.add_task(
                    i,
                    arrival=float(i),
                    stages=(
                        FluidStage("net_in", w_in),
                        FluidStage("cpu", w_cpu),
                        FluidStage("net_out", w_out),
                    ),
                )
            if with_extra:
                network.add_task("extra", arrival=0.0, stages=(FluidStage("cpu", 2.0),))
            return network.run_to_completion()

        baseline = build(with_extra=False)
        loaded = build(with_extra=True)
        assert baseline[1] == pytest.approx(7.0)
        assert loaded[1] == pytest.approx(6.0)  # sooner despite the added load
        assert loaded[0] >= baseline[0] - 1e-6


class TestCopyIndependence:
    @given(batch=job_batches())
    @settings(max_examples=60, deadline=None)
    def test_queue_copy_is_independent(self, batch):
        queue, now = build_queue(batch)
        snapshot = {k: queue.remaining(k) for k in queue.active_keys()}
        clone = queue.copy()
        clone.add("intruder", 99.0, now=now)
        clone.advance_to(now + 1_000.0)
        assert queue.time == now
        assert {k: queue.remaining(k) for k in queue.active_keys()} == snapshot

    @given(
        stage_works=st.lists(st.tuples(works, works), min_size=1, max_size=5),
        horizon=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_network_copy_free_run_leaves_original_untouched(self, stage_works, horizon):
        network = FluidNetwork({"cpu": 1.0, "net_out": 1.0})
        for i, (w_cpu, w_out) in enumerate(stage_works):
            network.add_task(
                i, arrival=0.0, stages=(FluidStage("cpu", w_cpu), FluidStage("net_out", w_out))
            )
        network.advance_to(horizon)
        time_before = network.time
        version_before = network.version
        unfinished_before = list(network.unfinished_keys())

        clone = network.copy()
        clone_completions = clone.run_to_completion()

        assert network.time == time_before
        assert network.version == version_before
        assert list(network.unfinished_keys()) == unfinished_before
        # The clone's free run equals the original's own eventual free run.
        assert network.copy().run_to_completion() == clone_completions


class TestAdvanceIdempotence:
    @given(batch=job_batches(), split=st.integers(min_value=1, max_value=7))
    @settings(max_examples=60, deadline=None)
    def test_step_splitting_does_not_change_completions(self, batch, split):
        horizon = sum(o for o, _ in batch) + sum(w for _, w in batch) * len(batch) + 1.0
        queue_one, _ = build_queue(batch)
        one_shot = queue_one.advance_to(horizon)

        queue_many, now = build_queue(batch)
        many: list = []
        for i in range(1, split + 1):
            target = now + (horizon - now) * i / split
            many.extend(queue_many.advance_to(target))

        assert [k for _, k in one_shot] == [k for _, k in many]
        for (t1, _), (t2, _) in zip(one_shot, many):
            assert t1 == pytest.approx(t2, rel=1e-9, abs=1e-9)

    @given(batch=job_batches(), dt=st.floats(min_value=0.0, max_value=50.0))
    @settings(max_examples=60, deadline=None)
    def test_re_advancing_to_the_current_clock_is_a_noop(self, batch, dt):
        queue, now = build_queue(batch)
        queue.advance_to(now + dt)
        state = {k: queue.remaining(k) for k in queue.active_keys()}
        assert queue.advance_to(queue.time) == []
        assert {k: queue.remaining(k) for k in queue.active_keys()} == state

    @given(stage_works=st.lists(st.tuples(works, works), min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_network_advance_is_idempotent_and_monotone(self, stage_works):
        network = FluidNetwork({"cpu": 1.0, "net_out": 1.0})
        for i, (w_cpu, w_out) in enumerate(stage_works):
            network.add_task(
                i, arrival=0.0, stages=(FluidStage("cpu", w_cpu), FluidStage("net_out", w_out))
            )
        network.advance_to(5.0)
        assert network.advance_to(5.0) == []
        assert network.advance_to(network.time) == []
        completions = network.run_to_completion()
        assert set(completions) == set(range(len(stage_works)))
        assert all(c >= -EPSILON for c in completions.values())


class TestVersionCounter:
    def test_version_tracks_structural_mutations_only(self):
        network = FluidNetwork({"cpu": 1.0})
        v0 = network.version
        network.advance_to(10.0)
        assert network.version == v0  # pure clock movement
        network.add_task("a", arrival=10.0, stages=(FluidStage("cpu", 5.0),))
        assert network.version == v0 + 1
        network.advance_to(12.0)
        assert network.version == v0 + 1
        network.set_capacity("cpu", 2.0, now=12.0)
        assert network.version == v0 + 2
        network.remove_task("a", now=12.0)
        assert network.version == v0 + 3
        clone = network.copy()
        assert clone.version == network.version

    def test_forget_keeps_version_but_re_adding_bumps_it(self):
        """Forgetting a finished record changes nothing about the future, so
        caches keyed on the version stay valid across completion cleanups."""
        network = FluidNetwork({"cpu": 1.0})
        network.add_task("a", arrival=0.0, stages=(FluidStage("cpu", 1.0),))
        network.run_to_completion()
        before = network.version
        network.forget("a")
        assert network.version == before
        network.add_task("a", arrival=network.time, stages=(FluidStage("cpu", 1.0),))
        assert network.version == before + 1
