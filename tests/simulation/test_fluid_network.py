"""Unit and property tests of the multi-stage fluid network."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.simulation.fluid import FluidNetwork, FluidStage


def three_phase(input_s: float, compute_s: float, output_s: float):
    return (
        FluidStage("net_in", input_s),
        FluidStage("cpu", compute_s),
        FluidStage("net_out", output_s),
    )


def make_network(cpu_capacity: float = 1.0, per_cpu_cap=None) -> FluidNetwork:
    caps = {"net_in": 1.0, "cpu": cpu_capacity, "net_out": 1.0}
    per_job = {"cpu": per_cpu_cap} if per_cpu_cap is not None else None
    return FluidNetwork(caps, per_job_caps=per_job)


class TestSingleTask:
    def test_completion_is_sum_of_stage_works(self):
        network = make_network()
        network.add_task("t", arrival=0.0, stages=three_phase(5.0, 10.0, 2.0))
        completions = network.run_to_completion()
        assert completions["t"] == pytest.approx(17.0)

    def test_stage_finish_times_are_recorded_in_order(self):
        network = make_network()
        network.add_task("t", arrival=0.0, stages=three_phase(5.0, 10.0, 2.0))
        network.run_to_completion()
        state = network.task("t")
        assert state.stage_finish_times == [pytest.approx(5.0), pytest.approx(15.0), pytest.approx(17.0)]
        assert state.finished

    def test_future_arrival_waits(self):
        network = make_network()
        network.add_task("t", arrival=30.0, stages=three_phase(1.0, 2.0, 1.0))
        network.advance_to(10.0)
        assert not network.task("t").started
        completions = network.run_to_completion()
        assert completions["t"] == pytest.approx(34.0)

    def test_zero_work_stages_are_skipped(self):
        network = make_network()
        network.add_task("t", arrival=0.0, stages=three_phase(0.0, 10.0, 0.0))
        completions = network.run_to_completion()
        assert completions["t"] == pytest.approx(10.0)

    def test_task_with_only_zero_work_completes_instantly(self):
        network = make_network()
        events = network.add_task("t", arrival=0.0, stages=three_phase(0.0, 0.0, 0.0), now=0.0)
        assert network.task("t").finished
        assert any(e.task_finished for e in events)


class TestSharing:
    def test_two_identical_tasks_share_every_phase(self):
        network = make_network()
        for key in ("a", "b"):
            network.add_task(key, arrival=0.0, stages=three_phase(5.0, 10.0, 2.0))
        completions = network.run_to_completion()
        # every phase is shared by both tasks: 10 + 20 + 4
        assert completions["a"] == pytest.approx(34.0)
        assert completions["b"] == pytest.approx(34.0)

    def test_phases_on_different_resources_do_not_interfere(self):
        network = make_network()
        network.add_task("a", arrival=0.0, stages=(FluidStage("cpu", 10.0),))
        network.add_task("b", arrival=0.0, stages=(FluidStage("net_in", 10.0),))
        completions = network.run_to_completion()
        assert completions["a"] == pytest.approx(10.0)
        assert completions["b"] == pytest.approx(10.0)

    def test_fig1_scenario_remaining_durations(self):
        """The Section 2.3 example: late task shares with the earlier one."""
        network = make_network()
        network.add_task("t1", arrival=0.0, stages=(FluidStage("cpu", 100.0),))
        network.add_task("t3", arrival=80.0, stages=(FluidStage("cpu", 100.0),))
        completions = network.run_to_completion()
        # t1 has 20s left at t=80, shared -> finishes at 120; t3 then alone.
        assert completions["t1"] == pytest.approx(120.0)
        assert completions["t3"] == pytest.approx(200.0)

    def test_dual_cpu_cap_lets_two_tasks_run_at_full_speed(self):
        network = make_network(cpu_capacity=2.0, per_cpu_cap=1.0)
        for key in ("a", "b"):
            network.add_task(key, arrival=0.0, stages=(FluidStage("cpu", 10.0),))
        completions = network.run_to_completion()
        assert completions["a"] == pytest.approx(10.0)
        assert completions["b"] == pytest.approx(10.0)


class TestMutation:
    def test_remove_running_task_frees_capacity(self):
        network = make_network()
        network.add_task("a", arrival=0.0, stages=(FluidStage("cpu", 10.0),))
        network.add_task("b", arrival=0.0, stages=(FluidStage("cpu", 10.0),))
        network.remove_task("b", now=4.0)
        completions = network.run_to_completion()
        # a progressed 2 units by t=4, then runs alone: 4 + 8 = 12.
        assert completions["a"] == pytest.approx(12.0)
        assert "b" not in network

    def test_set_capacity_slows_down_completion(self):
        network = make_network()
        network.add_task("a", arrival=0.0, stages=(FluidStage("cpu", 10.0),))
        network.set_capacity("cpu", 0.5, now=5.0)
        completions = network.run_to_completion()
        assert completions["a"] == pytest.approx(15.0)

    def test_forget_requires_finished_task(self):
        network = make_network()
        network.add_task("a", arrival=0.0, stages=(FluidStage("cpu", 10.0),))
        with pytest.raises(SimulationError):
            network.forget("a")
        network.run_to_completion()
        network.forget("a")
        assert "a" not in network

    def test_duplicate_task_rejected(self):
        network = make_network()
        network.add_task("a", arrival=0.0, stages=(FluidStage("cpu", 1.0),))
        with pytest.raises(SimulationError):
            network.add_task("a", arrival=0.0, stages=(FluidStage("cpu", 1.0),))

    def test_unknown_resource_rejected(self):
        network = make_network()
        with pytest.raises(KeyError):
            network.add_task("a", arrival=0.0, stages=(FluidStage("gpu", 1.0),))

    def test_empty_stage_list_rejected(self):
        network = make_network()
        with pytest.raises(ValueError):
            network.add_task("a", arrival=0.0, stages=())

    def test_copy_is_independent_of_original(self):
        network = make_network()
        network.add_task("a", arrival=0.0, stages=three_phase(1.0, 5.0, 1.0))
        clone = network.copy()
        clone.add_task("b", arrival=0.0, stages=three_phase(1.0, 5.0, 1.0))
        clone.run_to_completion()
        assert "b" not in network
        assert not network.task("a").finished
        assert clone.task("a").finished

    def test_backwards_advance_rejected(self):
        network = make_network()
        network.advance_to(10.0)
        with pytest.raises(SimulationError):
            network.advance_to(1.0)

    def test_remove_then_readd_pending_key_uses_the_new_arrival(self):
        """Regression: a stale arrival-heap entry of a removed pending task
        must not resurrect when the same key is re-added with a later date."""
        network = make_network()
        network.add_task("x", arrival=10.0, stages=(FluidStage("cpu", 1.0),))
        network.remove_task("x", now=0.0)
        network.add_task("x", arrival=20.0, stages=(FluidStage("cpu", 1.0),))
        network.advance_to(12.0)  # crashed with 'advance backwards' before the fix
        assert not network.task("x").started
        completions = network.run_to_completion()
        assert completions["x"] == pytest.approx(21.0)


class TestEvents:
    def test_events_report_stage_and_task_completions(self):
        network = make_network()
        network.add_task("a", arrival=0.0, stages=three_phase(2.0, 3.0, 1.0))
        events = network.advance_to(10.0)
        stage_events = [e for e in events if not e.task_finished]
        final_events = [e for e in events if e.task_finished]
        assert [e.resource for e in stage_events] == ["net_in", "cpu"]
        assert len(final_events) == 1
        assert final_events[0].time == pytest.approx(6.0)

    def test_next_event_time_tracks_pending_arrival(self):
        network = make_network()
        network.add_task("a", arrival=12.0, stages=(FluidStage("cpu", 1.0),))
        assert network.next_event_time() == pytest.approx(12.0)

    def test_next_event_time_is_infinite_when_idle(self):
        assert make_network().next_event_time() == math.inf


class TestProperties:
    @given(
        works=st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=10.0),
                st.floats(min_value=0.1, max_value=30.0),
                st.floats(min_value=0.1, max_value=5.0),
            ),
            min_size=1,
            max_size=6,
        ),
        gaps=st.lists(st.floats(min_value=0.0, max_value=15.0), min_size=1, max_size=6),
    )
    @settings(max_examples=50, deadline=None)
    def test_completion_never_before_arrival_plus_unloaded_duration(self, works, gaps):
        n = min(len(works), len(gaps))
        works, gaps = works[:n], gaps[:n]
        arrivals = [sum(gaps[: i + 1]) for i in range(n)]
        network = make_network()
        for i, (stages, arrival) in enumerate(zip(works, arrivals)):
            network.add_task(i, arrival=arrival, stages=three_phase(*stages))
        completions = network.run_to_completion()
        assert len(completions) == n
        for i, (stages, arrival) in enumerate(zip(works, arrivals)):
            assert completions[i] >= arrival + sum(stages) - 1e-6

    @given(
        works=st.lists(st.floats(min_value=0.1, max_value=30.0), min_size=1, max_size=6),
        extra=st.floats(min_value=0.1, max_value=30.0),
        extra_arrival=st.floats(min_value=0.0, max_value=40.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_adding_a_compute_task_never_speeds_up_existing_ones(self, works, extra, extra_arrival):
        """On a single shared resource the perturbation is always non-negative.

        (With multi-stage tasks the perturbation of an individual task can be
        slightly negative — delaying a competitor on the input link can free
        the CPU — which is why this invariant is stated per resource.)
        """
        base = make_network()
        for i, work in enumerate(works):
            base.add_task(i, arrival=float(i), stages=(FluidStage("cpu", work),))
        with_extra = base.copy()
        with_extra.add_task("extra", arrival=extra_arrival, stages=(FluidStage("cpu", extra),))
        before = base.run_to_completion()
        after = with_extra.run_to_completion()
        for i in range(len(works)):
            assert after[i] >= before[i] - 1e-6
