"""Unit tests of the Resource / Container / Store primitives."""

from __future__ import annotations

import pytest

from repro.simulation import Container, Environment, Resource, Store


class TestResource:
    def test_capacity_must_be_positive(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_requests_within_capacity_granted_immediately(self, env):
        resource = Resource(env, capacity=2)
        log = []

        def user(name):
            with resource.request() as request:
                yield request
                log.append((name, env.now))
                yield env.timeout(5.0)

        env.process(user("a"))
        env.process(user("b"))
        env.run()
        assert log == [("a", 0.0), ("b", 0.0)]

    def test_excess_requests_wait_for_release(self, env):
        resource = Resource(env, capacity=1)
        log = []

        def user(name, hold):
            with resource.request() as request:
                yield request
                log.append((name, env.now))
                yield env.timeout(hold)

        env.process(user("first", 10.0))
        env.process(user("second", 5.0))
        env.run()
        assert log == [("first", 0.0), ("second", 10.0)]
        assert resource.count == 0

    def test_fifo_ordering_of_waiters(self, env):
        resource = Resource(env, capacity=1)
        order = []

        def user(name):
            with resource.request() as request:
                yield request
                order.append(name)
                yield env.timeout(1.0)

        for name in ("a", "b", "c"):
            env.process(user(name))
        env.run()
        assert order == ["a", "b", "c"]

    def test_count_and_queue_lengths(self, env):
        resource = Resource(env, capacity=1)
        first = resource.request()
        second = resource.request()
        assert resource.count == 1
        assert len(resource.queue) == 1
        resource.release(first)
        env.run()
        assert second.triggered


class TestContainer:
    def test_initial_level_and_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Container(env, capacity=10.0, init=20.0)
        container = Container(env, capacity=10.0, init=3.0)
        assert container.level == 3.0

    def test_get_waits_for_put(self, env):
        container = Container(env)
        times = []

        def consumer():
            yield container.get(5.0)
            times.append(env.now)

        def producer():
            yield env.timeout(7.0)
            yield container.put(5.0)

        env.process(consumer())
        env.process(producer())
        env.run()
        assert times == [7.0]
        assert container.level == 0.0

    def test_put_waits_when_full(self, env):
        container = Container(env, capacity=10.0, init=10.0)
        times = []

        def producer():
            yield container.put(5.0)
            times.append(env.now)

        def consumer():
            yield env.timeout(3.0)
            yield container.get(6.0)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert times == [3.0]

    def test_non_positive_amounts_rejected(self, env):
        container = Container(env)
        with pytest.raises(ValueError):
            container.put(0.0)
        with pytest.raises(ValueError):
            container.get(-1.0)


class TestStore:
    def test_items_are_fifo(self, env):
        store = Store(env)
        received = []

        def consumer():
            for _ in range(3):
                item = yield store.get()
                received.append(item)

        def producer():
            for item in ("x", "y", "z"):
                yield store.put(item)
                yield env.timeout(1.0)

        env.process(consumer())
        env.process(producer())
        env.run()
        assert received == ["x", "y", "z"]

    def test_get_blocks_until_item_available(self, env):
        store = Store(env)
        times = []

        def consumer():
            yield store.get()
            times.append(env.now)

        def producer():
            yield env.timeout(4.0)
            yield store.put(1)

        env.process(consumer())
        env.process(producer())
        env.run()
        assert times == [4.0]

    def test_capacity_bounds_pending_items(self, env):
        store = Store(env, capacity=1)
        done = []

        def producer():
            yield store.put("a")
            yield store.put("b")
            done.append(env.now)

        def consumer():
            yield env.timeout(5.0)
            yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        assert done == [5.0]
        assert len(store) == 1
