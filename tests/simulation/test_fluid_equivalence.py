"""Virtual-time fluid core: long-horizon drift and old-vs-new equivalence.

Two guarantees of the virtual-time rewrite are locked down here:

* **no drift** — the legacy core decremented every job's ``remaining`` on
  every slice, accumulating floating-point error over long runs; the
  virtual-time core stores immutable completion targets, so completion dates
  stay exact against closed forms even after thousands of completions through
  one queue;
* **equivalence** — randomized programs (multi-stage networks with arrivals,
  removals and capacity changes) produce the same trajectories on the new
  core and on the preserved legacy implementation
  (:mod:`repro.simulation.fluid_legacy`), which is the oracle the refactor is
  judged against.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.simulation import fluid, fluid_legacy
from repro.simulation.fluid import FluidNetwork, FluidStage, ProcessorSharingQueue

#: Absolute tolerance of the drift regression (seconds over ~10^5 s horizons).
DRIFT_TOL = 1e-6


class TestLongHorizonDrift:
    def test_thousands_of_sequential_completions_stay_exact(self):
        """5000 back-to-back jobs: completion i must equal the running sum of
        works, within 1e-6, with no accumulated drift at the end of the run."""
        queue = ProcessorSharingQueue(capacity=1.0)
        work = math.pi / 3.0  # deliberately not representable "nicely"
        expected = 0.0
        for i in range(5000):
            queue.add(i, work, now=expected)
            expected += work
            completions = queue.advance_to(expected)
            assert len(completions) == 1
            finished_at, key = completions[0]
            assert key == i
            assert abs(finished_at - expected) < DRIFT_TOL

    def test_thousands_of_shared_completions_match_closed_form(self):
        """200 rounds of a 10-job batch with works w, 2w, ..., 10w.

        Within a batch arriving together on a capacity-1 queue, job j (1-based)
        completes at ``start + w * sum_{i=0}^{j-1} (K - i)`` — the classic
        processor-sharing staircase.  2000 completions over a ~10^5 s horizon
        must all match that closed form within 1e-6 s.
        """
        queue = ProcessorSharingQueue(capacity=1.0)
        k, w = 10, 4.7
        start = 0.0
        for round_index in range(200):
            for j in range(k):
                queue.add((round_index, j), (j + 1) * w, now=start)
            horizon = start + w * sum(range(1, k + 1)) + 1.0
            completions = dict((key, t) for t, key in queue.advance_to(horizon))
            assert len(completions) == k
            expected = start
            for j in range(k):
                expected += (k - j) * w
                assert abs(completions[(round_index, j)] - expected) < DRIFT_TOL
            start = horizon

    def test_network_long_run_matches_unloaded_sum_when_tasks_never_overlap(self):
        """2000 three-stage tasks spaced far apart: every completion is the
        arrival plus the unloaded total work, exactly, for the whole run."""
        network = FluidNetwork({"net_in": 1.0, "cpu": 1.0, "net_out": 1.0})
        total = 1.0 + 10.0 + 0.5
        spacing = 20.0  # > total: tasks never share a resource
        for i in range(2000):
            network.add_task(
                i,
                arrival=i * spacing,
                stages=(
                    FluidStage("net_in", 1.0),
                    FluidStage("cpu", 10.0),
                    FluidStage("net_out", 0.5),
                ),
            )
        completions = network.run_to_completion()
        assert len(completions) == 2000
        for i, completed_at in completions.items():
            assert abs(completed_at - (i * spacing + total)) < DRIFT_TOL


def random_program(rng: np.random.Generator):
    """One randomized multi-stage network program, replayable on any core.

    Returns ``(capacities, per_job_caps, operations)`` where operations is a
    list of ``("add", key, arrival, stages)``, ``("advance", t)``,
    ``("remove", key, t)`` and ``("capacity", resource, value, t)`` tuples in
    non-decreasing time order.
    """
    resources = ["net_in", "cpu", "net_out"]
    capacities = {name: float(rng.uniform(0.5, 3.0)) for name in resources}
    per_job_caps = {"cpu": 1.0} if rng.random() < 0.5 else None
    operations = []
    now = 0.0
    alive = []
    for i in range(int(rng.integers(15, 35))):
        now += float(rng.exponential(4.0))
        roll = rng.random()
        if roll < 0.62 or not alive:
            stages = tuple(
                FluidStage(resource, float(rng.choice([0.0, rng.uniform(0.2, 12.0)], p=[0.1, 0.9])))
                for resource in resources
            )
            if all(stage.work == 0.0 for stage in stages):
                stages = (FluidStage("cpu", 1.0),)
            arrival = now + float(rng.choice([0.0, rng.uniform(0.0, 15.0)]))
            operations.append(("add", i, arrival, stages))
            alive.append(i)
        elif roll < 0.75:
            operations.append(("advance", now))
        elif roll < 0.88:
            key = alive.pop(int(rng.integers(len(alive))))
            operations.append(("remove", key, now))
        else:
            resource = resources[int(rng.integers(len(resources)))]
            operations.append(("capacity", resource, float(rng.uniform(0.3, 3.0)), now))
    return capacities, per_job_caps, operations


def replay(module, capacities, per_job_caps, operations):
    """Run one program on a given fluid implementation; return its trace."""
    network = module.FluidNetwork(dict(capacities), per_job_caps=per_job_caps)
    events = []
    for operation in operations:
        if operation[0] == "add":
            _, key, arrival, stages = operation
            stages = tuple(module.FluidStage(s.resource, s.work) for s in stages)
            events.extend(network.add_task(key, arrival=arrival, stages=stages))
        elif operation[0] == "advance":
            events.extend(network.advance_to(operation[1]))
        elif operation[0] == "remove":
            _, key, t = operation
            if key in network and not network.task(key).finished:
                events.extend(network.advance_to(t))
                network.remove_task(key, t)
        else:
            _, resource, value, t = operation
            events.extend(network.set_capacity(resource, value, t))
    completions = network.run_to_completion()
    return events, completions, network


class TestLegacyEquivalence:
    @pytest.mark.parametrize("seed", range(12))
    def test_randomized_network_programs_match_the_legacy_core(self, seed):
        rng = np.random.default_rng(seed)
        capacities, per_job_caps, operations = random_program(rng)
        new_events, new_completions, new_network = replay(
            fluid, capacities, per_job_caps, operations
        )
        old_events, old_completions, old_network = replay(
            fluid_legacy, capacities, per_job_caps, operations
        )

        assert set(new_completions) == set(old_completions)
        for key, completed_at in old_completions.items():
            assert new_completions[key] == pytest.approx(completed_at, rel=1e-9, abs=1e-6)

        assert len(new_events) == len(old_events)
        for new_event, old_event in zip(new_events, old_events):
            assert new_event.key == old_event.key
            assert new_event.stage_index == old_event.stage_index
            assert new_event.resource == old_event.resource
            assert new_event.task_finished == old_event.task_finished
            assert new_event.time == pytest.approx(old_event.time, rel=1e-9, abs=1e-6)

        assert new_network.time == pytest.approx(old_network.time, rel=1e-9, abs=1e-6)
        assert new_network.version == old_network.version
        assert set(new_network.unfinished_keys()) == set(old_network.unfinished_keys())

    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_queue_programs_match_the_legacy_core(self, seed):
        """Queue-level sweep: staggered adds, removals and capacity changes."""
        rng = np.random.default_rng(1000 + seed)
        new_queue = fluid.ProcessorSharingQueue(capacity=1.5)
        old_queue = fluid_legacy.ProcessorSharingQueue(capacity=1.5)
        now = 0.0
        new_done, old_done = [], []
        alive = []
        for i in range(60):
            now += float(rng.exponential(2.0))
            roll = rng.random()
            if roll < 0.7 or not alive:
                work = float(rng.uniform(0.1, 20.0))
                new_done.extend(new_queue.advance_to(now))
                old_done.extend(old_queue.advance_to(now))
                new_queue.add(i, work, now=now)
                old_queue.add(i, work, now=now)
                alive.append(i)
            elif roll < 0.85:
                # Advance first: the victim may complete before ``now``.
                new_done.extend(new_queue.advance_to(now))
                old_done.extend(old_queue.advance_to(now))
                key = alive.pop(int(rng.integers(len(alive))))
                if key in new_queue:
                    removed_new = new_queue.remove(key, now)
                    removed_old = old_queue.remove(key, now)
                    assert removed_new == pytest.approx(removed_old, rel=1e-9, abs=1e-9)
            else:
                capacity = float(rng.uniform(0.2, 4.0))
                new_queue.set_capacity(capacity, now)
                old_queue.set_capacity(capacity, now)
            alive = [key for key in alive if key in new_queue]
        new_done.extend(new_queue.advance_to(now + 10_000.0))
        old_done.extend(old_queue.advance_to(now + 10_000.0))

        assert [key for _, key in new_done] == [key for _, key in old_done]
        for (new_t, _), (old_t, _) in zip(new_done, old_done):
            assert new_t == pytest.approx(old_t, rel=1e-9, abs=1e-9)

    def test_copies_share_immutable_jobs_but_not_state(self):
        """The cheap copy must still be semantically deep: advancing a clone
        never changes the original's remaining amounts."""
        queue = fluid.ProcessorSharingQueue(capacity=1.0)
        for i in range(5):
            queue.add(i, 10.0 + i, now=0.0)
        clone = queue.copy()
        clone.advance_to(200.0)
        assert len(clone) == 0
        assert len(queue) == 5
        assert queue.remaining(0) == pytest.approx(10.0)
