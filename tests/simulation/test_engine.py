"""Unit tests of the discrete-event engine (environment, events, processes)."""

from __future__ import annotations

import pytest

from repro.errors import EmptySchedule, SimulationError
from repro.simulation import Environment, Interrupt
from repro.simulation.events import AllOf, AnyOf, Condition, ConditionValue


class TestClockAndCalendar:
    def test_initial_time_defaults_to_zero(self):
        assert Environment().now == 0.0

    def test_initial_time_can_be_set(self):
        assert Environment(initial_time=42.5).now == 42.5

    def test_step_on_empty_calendar_raises(self, env):
        with pytest.raises(EmptySchedule):
            env.step()

    def test_peek_returns_infinity_when_empty(self, env):
        assert env.peek() == float("inf")

    def test_timeout_advances_clock(self, env):
        env.timeout(10.0)
        env.run()
        assert env.now == 10.0

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_run_until_number_stops_at_that_time(self, env):
        env.timeout(100.0)
        env.run(until=30.0)
        assert env.now == 30.0

    def test_run_until_past_time_rejected(self, env):
        env.run(until=10.0)
        with pytest.raises(ValueError):
            env.run(until=5.0)

    def test_events_processed_in_time_then_insertion_order(self, env):
        order = []
        for label, delay in (("b", 5.0), ("a", 1.0), ("c", 5.0)):
            timeout = env.timeout(delay)
            timeout.callbacks.append(lambda _evt, lab=label: order.append(lab))
        env.run()
        assert order == ["a", "b", "c"]


class TestEvents:
    def test_succeed_sets_value_and_ok(self, env):
        event = env.event()
        event.succeed("payload")
        env.run()
        assert event.processed
        assert event.ok
        assert event.value == "payload"

    def test_double_trigger_rejected(self, env):
        event = env.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_value_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            env.event().value

    def test_fail_requires_an_exception(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_unhandled_failed_event_raises_at_step(self, env):
        event = env.event()
        event.fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            env.run()

    def test_defused_failed_event_does_not_raise(self, env):
        event = env.event()
        event.fail(RuntimeError("boom"))
        event.defused = True
        env.run()
        assert not event.ok


class TestProcesses:
    def test_process_return_value_is_event_value(self, env):
        def worker():
            yield env.timeout(3.0)
            return "done"

        process = env.process(worker())
        value = env.run(until=process)
        assert value == "done"
        assert env.now == 3.0

    def test_process_waits_for_multiple_timeouts(self, env):
        log = []

        def worker():
            for delay in (1.0, 2.0, 3.0):
                yield env.timeout(delay)
                log.append(env.now)

        env.process(worker())
        env.run()
        assert log == [1.0, 3.0, 6.0]

    def test_process_can_wait_for_another_process(self, env):
        def child():
            yield env.timeout(5.0)
            return 99

        def parent():
            result = yield env.process(child())
            return result * 2

        assert env.run(until=env.process(parent())) == 198

    def test_process_exception_propagates_to_waiter(self, env):
        def failing():
            yield env.timeout(1.0)
            raise ValueError("inner failure")

        def parent():
            yield env.process(failing())

        with pytest.raises(ValueError, match="inner failure"):
            env.run(until=env.process(parent()))

    def test_yielding_a_non_event_fails_the_process(self, env):
        def bad():
            yield 42

        with pytest.raises(SimulationError):
            env.run(until=env.process(bad()))

    def test_interrupt_is_raised_inside_process(self, env):
        caught = []

        def victim():
            try:
                yield env.timeout(100.0)
            except Interrupt as exc:
                caught.append((exc.cause, env.now))

        victim_process = env.process(victim())

        def attacker():
            yield env.timeout(10.0)
            victim_process.interrupt("stop it")

        env.process(attacker())
        env.run(until=victim_process)
        assert caught == [("stop it", 10.0)]
        assert env.now == 10.0

    def test_interrupting_finished_process_raises(self, env):
        def quick():
            yield env.timeout(1.0)

        process = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            process.interrupt()

    def test_run_until_event_that_never_triggers_raises(self, env):
        pending = env.event()
        env.timeout(1.0)
        with pytest.raises(SimulationError):
            env.run(until=pending)

    def test_active_process_is_none_between_steps(self, env):
        def worker():
            yield env.timeout(1.0)

        env.process(worker())
        env.run()
        assert env.active_process is None


class TestConditions:
    def test_all_of_waits_for_every_event(self, env):
        def worker():
            t1, t2 = env.timeout(2.0, value="a"), env.timeout(5.0, value="b")
            result = yield env.all_of([t1, t2])
            return list(result.values())

        assert env.run(until=env.process(worker())) == ["a", "b"]
        assert env.now == 5.0

    def test_any_of_returns_at_first_event(self, env):
        def worker():
            t1, t2 = env.timeout(2.0, value="fast"), env.timeout(5.0, value="slow")
            result = yield env.any_of([t1, t2])
            return list(result.values())

        assert env.run(until=env.process(worker())) == ["fast"]
        assert env.now == 2.0

    def test_and_operator_builds_condition(self, env):
        def worker():
            yield env.timeout(1.0) & env.timeout(4.0)
            return env.now

        assert env.run(until=env.process(worker())) == 4.0

    def test_or_operator_builds_condition(self, env):
        def worker():
            yield env.timeout(1.0) | env.timeout(4.0)
            return env.now

        assert env.run(until=env.process(worker())) == 1.0

    def test_empty_all_of_triggers_immediately(self, env):
        condition = env.all_of([])
        env.run()
        assert condition.processed
        assert isinstance(condition.value, ConditionValue)
        assert len(condition.value) == 0

    def test_condition_value_behaves_like_mapping(self, env):
        t1 = env.timeout(1.0, value=10)
        t2 = env.timeout(2.0, value=20)
        condition = env.all_of([t1, t2])
        env.run()
        value = condition.value
        assert value[t1] == 10
        assert t2 in value
        assert dict(value.items())[t2] == 20
        assert value == {t1: 10, t2: 20}

    def test_condition_propagates_failure(self, env):
        def failing():
            yield env.timeout(1.0)
            raise RuntimeError("nope")

        def worker():
            yield env.all_of([env.process(failing()), env.timeout(10.0)])

        with pytest.raises(RuntimeError, match="nope"):
            env.run(until=env.process(worker()))

    def test_condition_requires_same_environment(self, env):
        other = Environment()
        with pytest.raises(ValueError):
            Condition(env, Condition.all_events, [env.timeout(1), other.timeout(1)])
