"""Tests of the paper-testbed factories (Table 2 platforms, metatask builders)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.platform.spec import MachineRole, PAPER_MACHINES
from repro.workload.testbed import (
    FIRST_SET_SERVERS,
    SECOND_SET_SERVERS,
    first_set_platform,
    matmul_metatask,
    paper_platform,
    second_set_platform,
    synthetic_platform,
    wastecpu_metatask,
)


class TestPaperMachines:
    """Table 2 of the paper must be encoded faithfully."""

    @pytest.mark.parametrize(
        "name, mhz, memory, swap",
        [
            ("chamagne", 330.0, 512.0, 134.0),
            ("cabestan", 500.0, 192.0, 400.0),
            ("artimon", 1700.0, 512.0, 1024.0),
            ("pulney", 1400.0, 256.0, 533.0),
            ("valette", 400.0, 128.0, 126.0),
            ("spinnaker", 2000.0, 1024.0, 2048.0),
        ],
    )
    def test_server_rows(self, name, mhz, memory, swap):
        spec = PAPER_MACHINES[name]
        assert spec.role == MachineRole.SERVER
        assert spec.speed_mhz == mhz
        assert spec.memory_mb == memory
        assert spec.swap_mb == swap

    def test_agent_and_client_rows(self):
        assert PAPER_MACHINES["xrousse"].role == MachineRole.AGENT
        assert PAPER_MACHINES["xrousse"].cpu_count == 2  # "pentium II bipro"
        assert PAPER_MACHINES["zanzibar"].role == MachineRole.CLIENT

    def test_collapse_threshold_accounts_for_swap_and_reservation(self):
        spec = PAPER_MACHINES["pulney"]
        assert spec.usable_memory_mb == pytest.approx(256.0 - spec.os_reserved_mb)
        assert spec.collapse_threshold_mb == pytest.approx(spec.usable_memory_mb + 533.0)


class TestPlatformFactories:
    def test_first_set_platform_servers(self, first_platform):
        assert set(first_platform.server_names()) == set(FIRST_SET_SERVERS)
        assert first_platform.agent_name == "xrousse"
        assert first_platform.client_names() == ("zanzibar",)

    def test_second_set_platform_servers(self, second_platform):
        assert set(second_platform.server_names()) == set(SECOND_SET_SERVERS)

    def test_single_cpu_by_default(self, first_platform):
        for name in first_platform.server_names():
            assert first_platform.machine(name).cpu_count == 1

    def test_dual_cpu_xeons_option(self):
        platform = second_set_platform(dual_cpu_xeons=True)
        assert platform.machine("spinnaker").cpu_count == 2
        assert platform.machine("artimon").cpu_count == 1
        first = first_set_platform(dual_cpu_xeons=True)
        assert first.machine("pulney").cpu_count == 2

    def test_paper_platform_with_single_server(self):
        platform = paper_platform(["artimon"])
        assert platform.server_names() == ("artimon",)

    def test_synthetic_platform_roles_and_count(self):
        platform = synthetic_platform(n_servers=3)
        assert len(platform.server_names()) == 3
        assert len(platform.agent_names()) == 1
        assert len(platform.client_names()) == 1
        with pytest.raises(ValueError):
            synthetic_platform(n_servers=0)


class TestMetataskFactories:
    def test_matmul_metatask_uses_only_matmul_problems(self, rng):
        metatask = matmul_metatask(count=50, mean_interarrival=20.0, rng=rng)
        assert len(metatask) == 50
        assert all(item.problem.family == "matmul" for item in metatask)

    def test_wastecpu_metatask_uses_only_wastecpu_problems(self, rng):
        metatask = wastecpu_metatask(count=50, mean_interarrival=20.0, rng=rng)
        assert all(item.problem.family == "wastecpu" for item in metatask)

    def test_same_rng_seed_reproduces_the_same_metatask(self):
        a = matmul_metatask(30, 20.0, rng=np.random.default_rng(5))
        b = matmul_metatask(30, 20.0, rng=np.random.default_rng(5))
        assert [i.problem.name for i in a] == [i.problem.name for i in b]
        assert [i.arrival for i in a] == [i.arrival for i in b]

    def test_rate_controls_arrival_span(self):
        slow = matmul_metatask(200, 30.0, rng=np.random.default_rng(1))
        fast = matmul_metatask(200, 10.0, rng=np.random.default_rng(1))
        assert fast.makespan_lower_bound < slow.makespan_lower_bound
