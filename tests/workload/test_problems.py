"""Tests of the problem catalogue (Tables 3 and 4)."""

from __future__ import annotations

import pytest

from repro.errors import UnknownProblem
from repro.workload.problems import (
    MATMUL_PROBLEMS,
    PAPER_CATALOGUE,
    WASTECPU_PROBLEMS,
    PhaseCosts,
    ProblemCatalogue,
    ProblemSpec,
    matmul_problem,
    wastecpu_problem,
)


class TestPhaseCosts:
    def test_total_is_sum_of_phases(self):
        costs = PhaseCosts(2.0, 10.0, 1.0)
        assert costs.total == pytest.approx(13.0)

    def test_scaled_multiplies_every_phase(self):
        costs = PhaseCosts(2.0, 10.0, 1.0).scaled(2.0)
        assert (costs.input_s, costs.compute_s, costs.output_s) == (4.0, 20.0, 2.0)


class TestTable3Values:
    """The measured values of Table 3 must be reproduced exactly."""

    @pytest.mark.parametrize(
        "size, server, expected_compute",
        [
            (1200, "chamagne", 149.0),
            (1200, "cabestan", 70.0),
            (1200, "artimon", 18.0),
            (1200, "pulney", 14.0),
            (1500, "chamagne", 292.0),
            (1500, "pulney", 25.0),
            (1800, "chamagne", 504.0),
            (1800, "cabestan", 231.0),
            (1800, "artimon", 53.0),
            (1800, "pulney", 40.0),
        ],
    )
    def test_compute_costs(self, size, server, expected_compute):
        assert matmul_problem(size).costs_on(server).compute_s == expected_compute

    @pytest.mark.parametrize(
        "size, input_mb, output_mb",
        [(1200, 21.97, 10.98), (1500, 34.33, 17.16), (1800, 49.43, 24.72)],
    )
    def test_memory_needs(self, size, input_mb, output_mb):
        problem = matmul_problem(size)
        assert problem.input_mb == input_mb
        assert problem.output_mb == output_mb
        assert problem.memory_mb == pytest.approx(input_mb + output_mb)

    def test_all_three_sizes_present(self):
        assert set(MATMUL_PROBLEMS) == {"matmul-1200", "matmul-1500", "matmul-1800"}

    def test_every_matmul_has_the_four_first_set_servers(self):
        for problem in MATMUL_PROBLEMS.values():
            assert set(problem.known_servers()) == {"chamagne", "cabestan", "artimon", "pulney"}


class TestTable4Values:
    @pytest.mark.parametrize(
        "param, server, expected_compute",
        [
            (200, "valette", 91.81),
            (200, "spinnaker", 16.0),
            (200, "cabestan", 74.86),
            (200, "artimon", 17.1),
            (400, "valette", 182.52),
            (400, "spinnaker", 30.6),
            (600, "cabestan", 222.26),
            (600, "artimon", 49.4),
        ],
    )
    def test_compute_costs(self, param, server, expected_compute):
        assert wastecpu_problem(param).costs_on(server).compute_s == expected_compute

    def test_wastecpu_memory_is_negligible(self):
        for problem in WASTECPU_PROBLEMS.values():
            assert problem.memory_mb < 1.0

    def test_every_wastecpu_has_the_four_second_set_servers(self):
        for problem in WASTECPU_PROBLEMS.values():
            assert set(problem.known_servers()) == {"valette", "spinnaker", "cabestan", "artimon"}


class TestGenericCostModel:
    def test_unknown_server_uses_speed_and_bandwidth(self):
        problem = matmul_problem(1200)
        costs = problem.costs_on("unknown-host", speed_mflops=1000.0, bandwidth_mb_s=10.0)
        assert costs.compute_s == pytest.approx(problem.compute_mflop / 1000.0)
        assert costs.input_s == pytest.approx(problem.input_mb / 10.0 + 0.01)

    def test_unknown_server_without_speed_raises(self):
        with pytest.raises(UnknownProblem):
            matmul_problem(1200).costs_on("unknown-host")

    def test_faster_speed_means_smaller_compute_cost(self):
        problem = wastecpu_problem(400)
        slow = problem.costs_on("x", speed_mflops=100.0)
        fast = problem.costs_on("x", speed_mflops=1000.0)
        assert fast.compute_s < slow.compute_s


class TestCatalogue:
    def test_paper_catalogue_has_six_problems(self):
        assert len(PAPER_CATALOGUE) == 6

    def test_get_unknown_problem_raises(self):
        with pytest.raises(UnknownProblem):
            PAPER_CATALOGUE.get("matmul-9999")

    def test_unknown_factory_lookups_raise(self):
        with pytest.raises(UnknownProblem):
            matmul_problem(999)
        with pytest.raises(UnknownProblem):
            wastecpu_problem(999)

    def test_family_filtering(self):
        assert {p.name for p in PAPER_CATALOGUE.family("matmul")} == set(MATMUL_PROBLEMS)
        assert {p.name for p in PAPER_CATALOGUE.family("wastecpu")} == set(WASTECPU_PROBLEMS)

    def test_add_and_contains(self):
        catalogue = ProblemCatalogue()
        problem = ProblemSpec(
            name="custom", family="custom", parameter=1, input_mb=1.0, output_mb=1.0, compute_mflop=10.0
        )
        catalogue.add(problem)
        assert "custom" in catalogue
        assert catalogue.get("custom") is problem
        assert catalogue.names() == ("custom",)
