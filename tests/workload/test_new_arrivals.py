"""Property tests of the non-homogeneous arrival processes.

Three invariant families from the scenario subsystem's contract:

* every process returns exactly ``count`` non-decreasing, non-negative dates;
* seeding is deterministic: the same generator seed replays the same dates;
* thinning with a constant rate function is *distributionally* the
  homogeneous Poisson process (the acceptance step fires with probability 1,
  so only the draw structure differs) — checked on empirical moments.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.arrivals import (
    ConstantRate,
    DiurnalArrivals,
    InhomogeneousPoissonArrivals,
    MarkovModulatedArrivals,
    MergedArrivals,
    PoissonArrivals,
    RampArrivals,
    RampRate,
    SinusoidRate,
)

#: One small instance of every new process, for the shared invariant tests.
PROCESS_FACTORIES = {
    "inhomogeneous-constant": lambda: InhomogeneousPoissonArrivals(ConstantRate(0.2)),
    "inhomogeneous-sinusoid": lambda: InhomogeneousPoissonArrivals(
        SinusoidRate(base_rate_per_s=0.2, amplitude=0.7, period_s=300.0)
    ),
    "diurnal": lambda: DiurnalArrivals(mean_interarrival=5.0, amplitude=0.8, period_s=600.0),
    "ramp": lambda: RampArrivals(start_interarrival=20.0, end_interarrival=5.0, duration_s=400.0),
    "mmpp": lambda: MarkovModulatedArrivals(
        burst_interarrival=2.0, quiet_interarrival=30.0, mean_burst_s=60.0, mean_quiet_s=120.0
    ),
    "mmpp-silent-quiet": lambda: MarkovModulatedArrivals(
        burst_interarrival=2.0,
        quiet_interarrival=math.inf,
        mean_burst_s=60.0,
        mean_quiet_s=120.0,
    ),
    "merged": lambda: MergedArrivals(
        [PoissonArrivals(10.0), RampArrivals(40.0, 10.0, 300.0)]
    ),
}


class TestSharedInvariants:
    @pytest.mark.parametrize("kind", sorted(PROCESS_FACTORIES))
    @given(count=st.integers(min_value=0, max_value=120), seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_dates_are_sorted_non_negative_and_counted(self, kind, count, seed):
        process = PROCESS_FACTORIES[kind]()
        dates = process.dates(count, np.random.default_rng(seed))
        assert len(dates) == count
        assert all(d >= 0 for d in dates)
        assert dates == sorted(dates)

    @pytest.mark.parametrize("kind", sorted(PROCESS_FACTORIES))
    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_seeded_determinism(self, kind, seed):
        process = PROCESS_FACTORIES[kind]()
        first = process.dates(50, np.random.default_rng(seed))
        second = process.dates(50, np.random.default_rng(seed))
        assert first == second

    @pytest.mark.parametrize("kind", sorted(PROCESS_FACTORIES))
    def test_negative_count_raises(self, kind):
        with pytest.raises(ValueError):
            PROCESS_FACTORIES[kind]().dates(-1)


class TestThinning:
    def test_constant_rate_matches_poisson_distributionally(self):
        """Thinning a constant λ is the homogeneous process: same moments.

        With λ = λ_max every candidate is accepted, so the inter-arrival gaps
        are iid Exp(λ) exactly as in :class:`PoissonArrivals`; the empirical
        mean and standard deviation over 20 000 gaps must agree within a few
        percent (fixed seeds keep the check deterministic).
        """
        n = 20_000
        mean = 7.0
        thinned = InhomogeneousPoissonArrivals(ConstantRate(1.0 / mean)).dates(
            n, np.random.default_rng(1)
        )
        homogeneous = PoissonArrivals(mean).dates(n, np.random.default_rng(2))
        gaps_thinned = np.diff([0.0] + thinned)
        gaps_poisson = np.diff([0.0] + homogeneous)
        assert np.mean(gaps_thinned) == pytest.approx(np.mean(gaps_poisson), rel=0.05)
        assert np.std(gaps_thinned) == pytest.approx(np.std(gaps_poisson), rel=0.05)
        # Exponential distribution: mean == std.
        assert np.std(gaps_thinned) == pytest.approx(np.mean(gaps_thinned), rel=0.05)

    def test_sinusoid_concentrates_arrivals_at_the_peak(self):
        """More arrivals land in high-rate phases than in low-rate ones."""
        period = 1000.0
        process = InhomogeneousPoissonArrivals(
            SinusoidRate(base_rate_per_s=0.1, amplitude=0.9, period_s=period)
        )
        dates = process.dates(4000, np.random.default_rng(3))
        phases = (np.asarray(dates) % period) / period
        # sin peaks at phase 0.25, troughs at 0.75.
        near_peak = np.sum((phases > 0.0) & (phases < 0.5))
        near_trough = np.sum((phases > 0.5) & (phases < 1.0))
        assert near_peak > 2.0 * near_trough

    def test_rate_above_majorant_is_an_error(self):
        process = InhomogeneousPoissonArrivals(ConstantRate(1.0), max_rate=0.5)
        with pytest.raises(ValueError, match="majorant"):
            process.dates(10, np.random.default_rng(0))

    def test_near_zero_rate_dead_zone_raises_instead_of_spinning(self):
        class Vanishing(ConstantRate):
            def rate(self, t: float) -> float:
                return 0.0 if t > 1.0 else self.rate_per_s

        process = InhomogeneousPoissonArrivals(Vanishing(1.0))
        with pytest.raises(ValueError, match="nearly zero"):
            process.dates(5, np.random.default_rng(0))


class TestMarkovModulated:
    def test_bursts_are_overdispersed_vs_poisson(self):
        """MMPP gap variance exceeds an exponential's at the same mean."""
        process = MarkovModulatedArrivals(
            burst_interarrival=1.0,
            quiet_interarrival=50.0,
            mean_burst_s=60.0,
            mean_quiet_s=120.0,
        )
        gaps = np.diff([0.0] + process.dates(5000, np.random.default_rng(5)))
        cv = np.std(gaps) / np.mean(gaps)
        assert cv > 1.2  # exponential gaps have cv == 1

    def test_silent_quiet_state_produces_no_quiet_arrivals(self):
        process = MarkovModulatedArrivals(
            burst_interarrival=1.0,
            quiet_interarrival=math.inf,
            mean_burst_s=10.0,
            mean_quiet_s=1000.0,
            start_in_burst=True,
        )
        dates = process.dates(200, np.random.default_rng(6))
        assert len(dates) == 200  # silent periods are skipped, not fatal


class TestMerged:
    def test_merged_is_sorted_prefix_of_component_union(self):
        a = PoissonArrivals(10.0)
        b = PoissonArrivals(20.0)
        rng = np.random.default_rng(7)
        merged = MergedArrivals([a, b]).dates(80, rng)
        # Replay the component draws in declaration order with the same seed.
        rng2 = np.random.default_rng(7)
        union = sorted(a.dates(80, rng2) + b.dates(80, rng2))
        assert merged == union[:80]

    def test_merged_rate_adds_up(self):
        """Superposing two Poisson(mean 20) streams halves the mean gap."""
        merged = MergedArrivals([PoissonArrivals(20.0), PoissonArrivals(20.0)])
        dates = merged.dates(10_000, np.random.default_rng(8))
        assert np.mean(np.diff([0.0] + dates)) == pytest.approx(10.0, rel=0.05)

    def test_empty_component_list_raises(self):
        with pytest.raises(ValueError):
            MergedArrivals([])


class TestValidation:
    def test_bad_rate_function_parameters_raise(self):
        with pytest.raises(ValueError):
            ConstantRate(0.0)
        with pytest.raises(ValueError):
            SinusoidRate(base_rate_per_s=1.0, amplitude=1.0, period_s=100.0)
        with pytest.raises(ValueError):
            SinusoidRate(base_rate_per_s=1.0, amplitude=0.5, period_s=0.0)
        with pytest.raises(ValueError):
            RampRate(start_rate_per_s=1.0, end_rate_per_s=0.0, duration_s=10.0)
        with pytest.raises(ValueError):
            RampRate(start_rate_per_s=1.0, end_rate_per_s=1.0, duration_s=-1.0)

    def test_bad_process_parameters_raise(self):
        with pytest.raises(ValueError):
            DiurnalArrivals(mean_interarrival=0.0)
        with pytest.raises(ValueError):
            RampArrivals(start_interarrival=-1.0, end_interarrival=5.0, duration_s=10.0)
        with pytest.raises(ValueError):
            MarkovModulatedArrivals(0.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            MarkovModulatedArrivals(1.0, 1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            InhomogeneousPoissonArrivals(ConstantRate(1.0), max_rate=0.0)

    def test_processes_are_picklable(self):
        import pickle

        for factory in PROCESS_FACTORIES.values():
            process = factory()
            clone = pickle.loads(pickle.dumps(process))
            assert clone.dates(10, np.random.default_rng(0)) == process.dates(
                10, np.random.default_rng(0)
            )
