"""Tests of tasks, arrival processes and metatask generation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workload.arrivals import (
    FixedIntervalArrivals,
    PoissonArrivals,
    TraceArrivals,
    UniformArrivals,
)
from repro.workload.metatask import Metatask, generate_metatask
from repro.workload.problems import MATMUL_PROBLEMS, PAPER_CATALOGUE
from repro.workload.tasks import Task, TaskStatus, task_id_factory


class TestTaskLifecycle:
    def test_new_task_is_pending(self, make_task):
        task = make_task()
        assert task.status is TaskStatus.PENDING
        assert not task.completed
        assert task.flow is None
        assert task.server is None

    def test_attempt_and_completion(self, make_task):
        task = make_task("matmul-1200", arrival=10.0)
        task.new_attempt("artimon", mapped_at=10.0)
        assert task.status is TaskStatus.RUNNING
        task.mark_completed(40.0)
        assert task.completed
        assert task.flow == pytest.approx(30.0)
        assert task.server == "artimon"
        assert task.attempts[-1].finished_at == 40.0

    def test_stretch_uses_unloaded_duration_on_the_chosen_server(self, make_task):
        task = make_task("matmul-1200", arrival=0.0)
        task.new_attempt("artimon", mapped_at=0.0)
        task.mark_completed(44.0)  # unloaded duration on artimon = 3 + 18 + 1 = 22
        assert task.unloaded_duration() == pytest.approx(22.0)
        assert task.stretch == pytest.approx(2.0)

    def test_failure_then_retry_records_attempts(self, make_task):
        task = make_task()
        task.new_attempt("pulney", mapped_at=0.0)
        task.mark_failed(5.0, "server collapsed")
        assert task.status is TaskStatus.FAILED
        assert task.attempts[-1].failure_reason == "server collapsed"
        task.new_attempt("cabestan", mapped_at=10.0)
        task.mark_completed(100.0)
        assert task.completed
        assert task.n_attempts == 2

    def test_unloaded_duration_without_mapping_raises(self, make_task):
        with pytest.raises(ValueError):
            make_task().unloaded_duration()

    def test_task_id_factory_produces_unique_ids(self):
        factory = task_id_factory("x")
        ids = {factory() for _ in range(100)}
        assert len(ids) == 100
        assert all(i.startswith("x-") for i in ids)


class TestArrivalProcesses:
    def test_poisson_mean_close_to_requested(self, rng):
        dates = PoissonArrivals(mean_interarrival=20.0).dates(4000, rng)
        gaps = np.diff([0.0] + dates)
        assert np.mean(gaps) == pytest.approx(20.0, rel=0.1)

    def test_poisson_rejects_non_positive_mean(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)

    def test_poisson_first_at_offset(self, rng):
        dates = PoissonArrivals(10.0, first_at=5.0).dates(10, rng)
        assert dates[0] == pytest.approx(5.0)

    def test_fixed_interval_is_deterministic(self):
        dates = FixedIntervalArrivals(interval=3.0, first_at=1.0).dates(4)
        assert dates == [1.0, 4.0, 7.0, 10.0]

    def test_uniform_bounds_respected(self, rng):
        dates = UniformArrivals(2.0, 4.0).dates(100, rng)
        gaps = np.diff([0.0] + dates)
        assert np.all(gaps >= 2.0 - 1e-9)
        assert np.all(gaps <= 4.0 + 1e-9)

    def test_trace_replay_and_length_check(self):
        trace = TraceArrivals([1.0, 2.0, 3.0])
        assert trace.dates(3) == [1.0, 2.0, 3.0]
        with pytest.raises(ValueError, match="trace holds 3 dates"):
            trace.dates(4)

    def test_trace_rejects_unsorted_dates_instead_of_sorting(self):
        with pytest.raises(ValueError, match="non-decreasing.*#1"):
            TraceArrivals([3.0, 1.0, 2.0])

    def test_trace_rejects_negative_and_non_finite_dates(self):
        with pytest.raises(ValueError, match="non-negative.*#0"):
            TraceArrivals([-1.0, 2.0])
        with pytest.raises(ValueError, match="not finite"):
            TraceArrivals([0.0, float("nan")])
        with pytest.raises(ValueError, match="not finite"):
            TraceArrivals([0.0, float("inf")])

    def test_trace_accepts_ties_and_rejects_negative_count(self):
        trace = TraceArrivals([0.0, 1.0, 1.0, 2.0])
        assert trace.dates(4) == [0.0, 1.0, 1.0, 2.0]
        with pytest.raises(ValueError, match="count"):
            trace.dates(-1)

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_poisson_dates_are_sorted_and_non_negative(self, count):
        dates = PoissonArrivals(5.0).dates(count, np.random.default_rng(0))
        assert len(dates) == count
        assert all(d >= 0 for d in dates)
        assert dates == sorted(dates)


class TestMetatask:
    def test_generation_respects_count_and_problems(self, rng):
        problems = list(MATMUL_PROBLEMS.values())
        metatask = generate_metatask("m", problems, 200, PoissonArrivals(20.0), rng)
        assert len(metatask) == 200
        assert set(metatask.problem_mix()) <= {p.name for p in problems}

    def test_uniform_mix_is_roughly_balanced(self, rng):
        problems = list(MATMUL_PROBLEMS.values())
        metatask = generate_metatask("m", problems, 3000, PoissonArrivals(1.0), rng)
        mix = metatask.problem_mix()
        for count in mix.values():
            assert count == pytest.approx(1000, rel=0.2)

    def test_weighted_mix(self, rng):
        problems = list(MATMUL_PROBLEMS.values())
        metatask = generate_metatask(
            "m", problems, 500, PoissonArrivals(1.0), rng, problem_weights=[1.0, 0.0, 0.0]
        )
        assert metatask.problem_mix() == {problems[0].name: 500}

    def test_instantiate_produces_fresh_pending_tasks(self, rng):
        metatask = generate_metatask(
            "m", list(MATMUL_PROBLEMS.values()), 10, PoissonArrivals(5.0), rng
        )
        first = metatask.instantiate()
        second = metatask.instantiate()
        assert len(first) == len(second) == 10
        assert all(t.status is TaskStatus.PENDING for t in first)
        assert first[0] is not second[0]
        assert first[0].task_id == second[0].task_id
        assert [t.arrival for t in first] == [item.arrival for item in metatask]

    def test_with_arrivals_keeps_tasks_but_changes_dates(self, rng):
        metatask = generate_metatask(
            "m", list(MATMUL_PROBLEMS.values()), 5, PoissonArrivals(5.0), rng
        )
        rearrived = metatask.with_arrivals([1.0, 2.0, 3.0, 4.0, 5.0])
        assert [item.arrival for item in rearrived] == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert [item.problem.name for item in rearrived] == [
            item.problem.name for item in metatask
        ]
        with pytest.raises(WorkloadError):
            metatask.with_arrivals([1.0])

    def test_generation_validations(self, rng):
        problems = list(MATMUL_PROBLEMS.values())
        with pytest.raises(WorkloadError):
            generate_metatask("m", problems, 0, PoissonArrivals(5.0), rng)
        with pytest.raises(WorkloadError):
            generate_metatask("m", [], 5, PoissonArrivals(5.0), rng)
        with pytest.raises(WorkloadError):
            generate_metatask("m", problems, 5, PoissonArrivals(5.0), rng, problem_weights=[1.0])

    def test_makespan_lower_bound_is_last_arrival(self, rng):
        metatask = generate_metatask(
            "m", list(MATMUL_PROBLEMS.values()), 20, PoissonArrivals(5.0), rng
        )
        assert metatask.makespan_lower_bound == pytest.approx(max(i.arrival for i in metatask))
