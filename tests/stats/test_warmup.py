"""Tests of MSER-5 warm-up (initial-transient) detection."""

from __future__ import annotations

import random

from repro.stats import mser5_truncation, truncate_warmup


class TestMser5Truncation:
    def test_detects_an_obvious_transient(self):
        # 30 observations of a high start-up level, then 300 at steady state:
        # the cut must remove the transient (and land on a batch boundary).
        rng = random.Random(11)
        series = [100.0 + rng.gauss(0, 1) for _ in range(30)]
        series += [5.0 + rng.gauss(0, 1) for _ in range(300)]
        cut = mser5_truncation(series)
        assert cut % 5 == 0
        assert 25 <= cut <= 60

    def test_stationary_series_keeps_everything(self):
        rng = random.Random(12)
        series = [rng.gauss(50, 3) for _ in range(200)]
        # No transient: the optimal truncation stays near the start.
        assert mser5_truncation(series) <= 20

    def test_deterministic(self):
        rng = random.Random(13)
        series = [rng.gauss(0, 1) for _ in range(500)]
        assert mser5_truncation(series) == mser5_truncation(list(series))

    def test_never_truncates_more_than_half(self):
        # MSER's guard: a "best" cut beyond half the series means the series
        # never settled — keep everything rather than extrapolate from a tail.
        series = list(range(100))  # a pure trend, no steady state
        assert mser5_truncation(series) <= 50

    def test_short_series(self):
        assert mser5_truncation([]) == 0
        assert mser5_truncation([1.0, 2.0, 3.0]) == 0

    def test_truncate_warmup_applies_the_cut(self):
        rng = random.Random(14)
        series = [100.0] * 20 + [rng.gauss(5, 1) for _ in range(200)]
        kept = truncate_warmup(series)
        assert len(kept) == len(series) - mser5_truncation(series)
        assert kept == series[len(series) - len(kept):]
