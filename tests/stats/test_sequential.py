"""Tests of the sequential stopping rule and its campaign integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExperimentError, StatsError
from repro.experiments import ExperimentConfig, ExperimentScale, plan_cells, run_campaign
from repro.results import config_fingerprint
from repro.stats import StoppingRule
from repro.workload.testbed import first_set_platform, matmul_metatask


def tiny_metatask(task_count: int = 12, seed: int = 42):
    return matmul_metatask(
        count=task_count,
        mean_interarrival=20.0,
        rng=np.random.default_rng(seed),
        name="tiny-seq",
    )


def sequential_config(**overrides) -> ExperimentConfig:
    defaults = dict(
        scale=ExperimentScale(name="tiny", task_count=12, metatask_count=1, repetitions=1),
        seed=2003,
        heuristics=("mct", "msf"),
        ci_target=0.5,
        ci_min_reps=3,
        ci_max_reps=4,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestStoppingRule:
    def test_schedule_doubles_up_to_the_cap(self):
        rule = StoppingRule(ci_target=0.05, min_reps=3, max_reps=20)
        assert rule.initial_reps(1) == 3
        assert rule.initial_reps(8) == 8
        assert rule.initial_reps(100) == 20
        assert rule.next_reps(3) == 6
        assert rule.next_reps(6) == 12
        assert rule.next_reps(12) == 20
        assert rule.next_reps(20) == 20

    def test_assess_converged(self):
        rule = StoppingRule(ci_target=0.5, min_reps=3)
        decision = rule.assess({("mct", 0): [100.0, 101.0, 99.0]})
        assert decision.satisfied
        assert decision.worst.key == ("mct", 0)

    def test_assess_not_converged(self):
        rule = StoppingRule(ci_target=0.001, min_reps=3)
        decision = rule.assess({("mct", 0): [100.0, 140.0, 60.0]})
        assert not decision.satisfied
        assert "mct" in decision.summary()

    def test_all_groups_must_converge(self):
        rule = StoppingRule(ci_target=0.1, min_reps=3)
        decision = rule.assess(
            {
                ("mct", 0): [100.0, 100.5, 99.5],   # tight
                ("msf", 0): [100.0, 160.0, 40.0],   # wide
            }
        )
        assert not decision.satisfied
        assert decision.worst.key == ("msf", 0)

    def test_min_reps_gates_even_tight_groups(self):
        rule = StoppingRule(ci_target=0.5, min_reps=4)
        decision = rule.assess({("mct", 0): [100.0, 100.0, 100.0]})
        assert not decision.satisfied

    def test_zero_mean_group_never_satisfies_a_relative_target(self):
        rule = StoppingRule(ci_target=0.5, min_reps=3)
        decision = rule.assess({("mct", 0): [-1.0, 0.0, 1.0]})
        assert not decision.satisfied

    def test_parameter_validation(self):
        with pytest.raises(StatsError):
            StoppingRule(ci_target=0.0)
        with pytest.raises(StatsError):
            StoppingRule(ci_target=0.1, min_reps=1)
        with pytest.raises(StatsError):
            StoppingRule(ci_target=0.1, min_reps=5, max_reps=4)
        with pytest.raises(StatsError):
            StoppingRule(ci_target=0.1, confidence=1.0)


class TestPlanCellsRepRange:
    def test_default_covers_all_repetitions(self):
        config = sequential_config(
            scale=ExperimentScale(name="t", task_count=5, metatask_count=1, repetitions=3)
        )
        assert plan_cells(config, 1) == plan_cells(config, 1, rep_range=range(3))

    def test_rounds_reassemble_the_full_plan_per_heuristic(self):
        config = sequential_config(
            scale=ExperimentScale(name="t", task_count=5, metatask_count=2, repetitions=4)
        )
        full = plan_cells(config, 2)
        first = plan_cells(config, 2, rep_range=range(0, 2))
        second = plan_cells(config, 2, rep_range=range(2, 4))
        assert sorted(full, key=repr) == sorted(first + second, key=repr)


class TestSequentialCampaign:
    def test_byte_identity_across_jobs(self):
        platform = first_set_platform()
        serial = run_campaign(
            "seq", "sequential", platform, [tiny_metatask()],
            sequential_config(), reps="auto", jobs=1,
        )
        parallel = run_campaign(
            "seq", "sequential", platform, [tiny_metatask()],
            sequential_config(), reps="auto", jobs=4,
        )
        assert serial.result_set.to_jsonl() == parallel.result_set.to_jsonl()
        assert serial.render() == parallel.render()

    def test_runs_at_least_min_reps_and_reports_convergence(self):
        table = run_campaign(
            "seq", "sequential", first_set_platform(), [tiny_metatask()],
            sequential_config(), reps="auto",
        )
        sequential = table.result_set.meta["sequential"]
        assert sequential["repetitions"] >= 3
        assert sequential["ci_target"] == 0.5
        reps = {r.repetition for r in table.result_set}
        assert reps == set(range(sequential["repetitions"]))
        assert any("sequential stopping" in note for note in table.notes)

    def test_cells_render_with_intervals(self):
        table = run_campaign(
            "seq", "sequential", first_set_platform(), [tiny_metatask()],
            sequential_config(), reps="auto",
        )
        assert "±" in table.render()
        aggregate = table.cell_aggregate("mct", "sumflow")
        assert aggregate is not None and aggregate.n >= 3

    def test_auto_requires_a_target(self):
        with pytest.raises(ExperimentError):
            run_campaign(
                "seq", "sequential", first_set_platform(), [tiny_metatask()],
                sequential_config(ci_target=None), reps="auto",
            )

    def test_int_reps_overrides_the_scale(self):
        table = run_campaign(
            "fixed", "fixed", first_set_platform(), [tiny_metatask()],
            sequential_config(ci_target=None), reps=2,
        )
        assert {r.repetition for r in table.result_set} == {0, 1}
        assert "sequential" not in table.result_set.meta

    def test_config_ci_target_alone_triggers_sequential_mode(self):
        table = run_campaign(
            "seq", "sequential", first_set_platform(), [tiny_metatask()],
            sequential_config(),
        )
        assert "sequential" in table.result_set.meta

    def test_store_resume_is_byte_identical(self, tmp_path):
        cold = run_campaign(
            "seq", "sequential", first_set_platform(), [tiny_metatask()],
            sequential_config(), reps="auto", store=str(tmp_path / "store"),
        )
        warm = run_campaign(
            "seq", "sequential", first_set_platform(), [tiny_metatask()],
            sequential_config(), reps="auto", store=str(tmp_path / "store"),
        )
        assert warm.cache_info["executed"] == 0
        assert warm.cache_info["recovered"] == len(cold.result_set)
        assert cold.result_set.to_jsonl() == warm.result_set.to_jsonl()


class TestFingerprintContract:
    def test_no_target_means_unchanged_payload(self):
        base = ExperimentConfig()
        # The stopping knobs are inert while ci_target is None: tuning them
        # must not fragment existing store namespaces.
        assert config_fingerprint(base) == config_fingerprint(
            base.with_ci_target(None, ci_metric="makespan", ci_max_reps=8)
        )

    def test_ci_target_is_number_determining(self):
        base = ExperimentConfig()
        assert config_fingerprint(base) != config_fingerprint(base.with_ci_target(0.05))
        assert config_fingerprint(base.with_ci_target(0.05)) != config_fingerprint(
            base.with_ci_target(0.10)
        )

    def test_stopping_knobs_count_once_active(self):
        active = ExperimentConfig().with_ci_target(0.05)
        assert config_fingerprint(active) != config_fingerprint(
            active.with_ci_target(0.05, ci_metric="makespan")
        )
        assert config_fingerprint(active) != config_fingerprint(
            active.with_ci_target(0.05, ci_max_reps=8)
        )
