"""Tests of the dependency-free Student-t distribution functions."""

from __future__ import annotations

import math

import pytest

from repro.errors import StatsError
from repro.stats import regularized_incomplete_beta, t_cdf, t_quantile, two_sided_t


class TestRegularizedIncompleteBeta:
    def test_bounds(self):
        assert regularized_incomplete_beta(2.0, 3.0, 0.0) == 0.0
        assert regularized_incomplete_beta(2.0, 3.0, 1.0) == 1.0

    def test_uniform_case_is_identity(self):
        # I_x(1, 1) = x exactly.
        for x in (0.1, 0.25, 0.5, 0.9):
            assert regularized_incomplete_beta(1.0, 1.0, x) == pytest.approx(x, abs=1e-12)

    def test_symmetry(self):
        # I_x(a, b) = 1 - I_{1-x}(b, a).
        value = regularized_incomplete_beta(2.5, 4.0, 0.3)
        mirror = 1.0 - regularized_incomplete_beta(4.0, 2.5, 0.7)
        assert value == pytest.approx(mirror, abs=1e-12)


class TestTCdf:
    def test_symmetry_at_zero(self):
        for dof in (1, 2, 5, 30):
            assert t_cdf(0.0, dof) == pytest.approx(0.5, abs=1e-12)

    def test_cauchy_special_case(self):
        # dof=1 is the Cauchy distribution: F(1) = 3/4.
        assert t_cdf(1.0, 1) == pytest.approx(0.75, abs=1e-10)

    def test_antisymmetry(self):
        assert t_cdf(-1.8, 7) == pytest.approx(1.0 - t_cdf(1.8, 7), abs=1e-12)

    def test_approaches_normal_for_large_dof(self):
        # Φ(1.96) ≈ 0.975.
        assert t_cdf(1.96, 100000) == pytest.approx(0.975, abs=1e-4)


class TestTQuantile:
    def test_round_trip(self):
        for dof in (1, 3, 10, 50):
            for p in (0.6, 0.9, 0.975, 0.995):
                x = t_quantile(p, dof)
                assert t_cdf(x, dof) == pytest.approx(p, abs=1e-9)

    def test_median_is_zero(self):
        assert t_quantile(0.5, 7) == 0.0

    def test_rejects_degenerate_probabilities(self):
        with pytest.raises(StatsError):
            t_quantile(0.0, 5)
        with pytest.raises(StatsError):
            t_quantile(1.0, 5)
        with pytest.raises(StatsError):
            t_quantile(0.975, 0)


class TestTwoSidedT:
    # Published 95% two-sided critical values (Student-t tables).
    @pytest.mark.parametrize(
        "dof,expected",
        [
            (1, 12.706),
            (2, 4.303),
            (4, 2.776),
            (9, 2.262),
            (29, 2.045),
        ],
    )
    def test_published_table_values(self, dof, expected):
        assert two_sided_t(0.95, dof) == pytest.approx(expected, abs=2e-3)

    def test_converges_to_z_for_large_dof(self):
        assert two_sided_t(0.95, 100000) == pytest.approx(1.95996, abs=1e-3)

    def test_monotone_in_confidence(self):
        assert two_sided_t(0.99, 10) > two_sided_t(0.95, 10) > two_sided_t(0.90, 10)

    def test_replaces_the_z_constant_in_half_ci95(self):
        # The satellite fix: Aggregate.half_ci95 must use the t quantile at
        # n-1 dof, not z=1.96.  For n=3 the factor is 4.303, 2.2x wider.
        from repro.metrics import aggregate_values

        aggregate = aggregate_values([10.0, 12.0, 14.0])
        expected = two_sided_t(0.95, 2) * aggregate.std / math.sqrt(3)
        assert aggregate.half_ci95 == pytest.approx(expected, rel=1e-12)
        assert aggregate.half_ci95 > 1.96 * aggregate.std / math.sqrt(3) * 2
