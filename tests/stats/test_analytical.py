"""Tests of the analytical (closed-form queueing) validation module."""

from __future__ import annotations

import json

import pytest

from repro.errors import StatsError
from repro.stats import (
    erlang_c,
    mm1_mean_response,
    mmc_mean_response,
    run_validation,
    simulate_mmc_mean_response,
)


class TestClosedForms:
    def test_mm1_mean_response(self):
        # W = 1/(μ − λ).
        assert mm1_mean_response(0.5, 1.0) == pytest.approx(2.0)
        assert mm1_mean_response(0.9, 1.0) == pytest.approx(10.0)

    def test_mm1_requires_stability(self):
        with pytest.raises(StatsError):
            mm1_mean_response(1.0, 1.0)
        with pytest.raises(StatsError):
            mm1_mean_response(2.0, 1.0)

    def test_erlang_c_single_server_equals_utilisation(self):
        # With c=1 the probability of waiting is exactly ρ.
        assert erlang_c(1, 0.7) == pytest.approx(0.7, abs=1e-12)

    def test_erlang_c_known_value(self):
        # Classic teletraffic table entry: c=2, a=1 → C = 1/3.
        assert erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0, abs=1e-12)

    def test_mmc_reduces_to_mm1(self):
        assert mmc_mean_response(0.7, 1.0, 1) == pytest.approx(
            mm1_mean_response(0.7, 1.0), abs=1e-12
        )

    def test_mmc_known_value(self):
        # M/M/2, λ=1, μ=1: W = 1 + C(2,1)/(2−1) = 4/3.
        assert mmc_mean_response(1.0, 1.0, 2) == pytest.approx(4.0 / 3.0, abs=1e-12)

    def test_more_servers_respond_faster(self):
        assert mmc_mean_response(1.4, 1.0, 2) > mmc_mean_response(1.4, 1.0, 4)


class TestSimulatorAgreement:
    def test_mm1_simulation_matches_closed_form(self):
        # The fluid ProcessorSharingQueue with per_job_cap=1 IS an M/M/1
        # station; the closed form must fall inside the simulation's CI.
        interval = simulate_mmc_mean_response(
            arrival_rate=0.6, service_rate=1.0, servers=1,
            job_count=4000, replications=5, seed=2003,
        )
        assert interval.contains(mm1_mean_response(0.6, 1.0))

    def test_mmc_simulation_matches_closed_form(self):
        interval = simulate_mmc_mean_response(
            arrival_rate=1.4, service_rate=1.0, servers=2,
            job_count=4000, replications=5, seed=2003,
        )
        assert interval.contains(mmc_mean_response(1.4, 1.0, 2))

    def test_simulation_is_deterministic(self):
        a = simulate_mmc_mean_response(
            arrival_rate=0.6, service_rate=1.0, servers=1,
            job_count=500, replications=3, seed=7,
        )
        b = simulate_mmc_mean_response(
            arrival_rate=0.6, service_rate=1.0, servers=1,
            job_count=500, replications=3, seed=7,
        )
        assert a == b


class TestRunValidation:
    def test_quick_suite_passes(self, tmp_path):
        report = run_validation(quick=True, include_sequential=False)
        assert report.passed
        assert len(report.checks) == 4
        rendered = report.render()
        assert "[PASS]" in rendered and "validation: OK" in rendered

        path = tmp_path / "validation-report.json"
        report.save_json(path)
        payload = json.loads(path.read_text())
        assert payload["passed"] is True
        assert {c["name"] for c in payload["checks"]} == {
            "mm1-moderate-load", "mm1-high-load", "mm2-farm", "mm4-farm",
        }

    def test_api_facade(self, tmp_path):
        from repro import api

        report = api.validate(
            quick=True, include_sequential=False,
            json_path=tmp_path / "report.json",
        )
        assert report.passed
        assert (tmp_path / "report.json").exists()
