"""Tests of confidence-interval construction, including a coverage simulation."""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import StatsError
from repro.stats import ConfidenceInterval, batch_means_interval, t_interval, two_sided_t


class TestTInterval:
    def test_known_small_sample(self):
        values = [10.0, 12.0, 14.0]
        interval = t_interval(values)
        assert interval.mean == pytest.approx(12.0)
        assert interval.n == 3
        # half = t(0.95, 2) * s / sqrt(3), s = 2.
        assert interval.half_width == pytest.approx(
            two_sided_t(0.95, 2) * 2.0 / math.sqrt(3), rel=1e-12
        )
        assert interval.lower == pytest.approx(interval.mean - interval.half_width)
        assert interval.upper == pytest.approx(interval.mean + interval.half_width)

    def test_zero_variance(self):
        interval = t_interval([7.0, 7.0, 7.0, 7.0])
        assert interval.half_width == 0.0
        assert interval.relative_half_width == 0.0
        assert interval.contains(7.0)
        assert not interval.contains(7.1)

    def test_needs_two_values(self):
        with pytest.raises(StatsError):
            t_interval([1.0])
        with pytest.raises(StatsError):
            t_interval([])

    def test_relative_half_width_zero_mean(self):
        interval = t_interval([-1.0, 1.0])
        assert interval.mean == 0.0
        assert math.isinf(interval.relative_half_width)

    def test_overlap(self):
        a = ConfidenceInterval(mean=10.0, half_width=1.0, confidence=0.95, n=5)
        b = ConfidenceInterval(mean=11.5, half_width=1.0, confidence=0.95, n=5)
        c = ConfidenceInterval(mean=20.0, half_width=1.0, confidence=0.95, n=5)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_coverage_is_about_95_percent(self):
        # The defining property: over many repeated samples from a known
        # distribution, ~95% of the intervals must contain the true mean.
        # 2000 trials of n=10 keep the binomial noise on the coverage rate
        # near ±1%, so [0.93, 0.97] is a safe deterministic band.
        rng = random.Random(20030508)
        true_mean = 5.0
        trials = 2000
        covered = 0
        for _ in range(trials):
            sample = [rng.gauss(true_mean, 2.0) for _ in range(10)]
            if t_interval(sample).contains(true_mean):
                covered += 1
        assert 0.93 <= covered / trials <= 0.97

    def test_as_dict_round_trips_to_json(self):
        import json

        interval = t_interval([1.0, 2.0, 3.0])
        payload = json.dumps(interval.as_dict())
        assert json.loads(payload)["n"] == 3


class TestBatchMeansInterval:
    def test_reduces_autocorrelation_bias(self):
        # An AR(1)-ish series: naive t over raw points underestimates the
        # width badly; batch means must produce a *wider* interval.
        rng = random.Random(7)
        series = []
        previous = 0.0
        for _ in range(3000):
            previous = 0.9 * previous + rng.gauss(0, 1)
            series.append(previous)
        naive = t_interval(series)
        batched = batch_means_interval(series, batch_count=30)
        assert batched.half_width > 2 * naive.half_width

    def test_method_label_and_n(self):
        series = [float(i % 7) for i in range(100)]
        interval = batch_means_interval(series, batch_count=10)
        assert interval.method == "batch-means(10)"
        assert interval.n == 100

    def test_needs_enough_data(self):
        with pytest.raises(StatsError):
            batch_means_interval([1.0, 2.0, 3.0], batch_count=4)
