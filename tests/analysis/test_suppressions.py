"""Suppression annotations and the grandfathered-finding baseline."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import (
    Finding,
    lint_source,
    load_baseline,
    parse_suppressions,
    partition_findings,
    save_baseline,
)
from repro.errors import AnalysisError


UNSEEDED = """
import numpy as np
rng = np.random.default_rng()
"""


class TestSuppressionParsing:
    def test_trailing_annotation_covers_its_own_line(self):
        sups = parse_suppressions(
            ["x = 1", "y = f()  # repro: allow[DET-RNG] because reasons"]
        )
        assert len(sups) == 1
        assert sups[0].line == 2
        assert sups[0].covers == 2
        assert sups[0].rules == frozenset({"DET-RNG"})
        assert sups[0].reason == "because reasons"

    def test_comment_only_annotation_covers_the_next_code_line(self):
        sups = parse_suppressions(
            [
                "# repro: allow[DET-ORDER] replay is last-write-wins",
                "# (continued explanation)",
                "for k in index.values():",
            ]
        )
        assert sups[0].covers == 3

    def test_multiple_rules_and_wildcard(self):
        sups = parse_suppressions(["x = f()  # repro: allow[DET-RNG, IO-ATOMIC]"])
        assert sups[0].rules == frozenset({"DET-RNG", "IO-ATOMIC"})
        assert sups[0].allows("DET-RNG")
        assert not sups[0].allows("DET-CLOCK")
        star = parse_suppressions(["x = f()  # repro: allow[*] fixture"])
        assert star[0].allows("ANYTHING")


class TestSuppressionEffect:
    def test_allow_silences_the_finding(self):
        text = textwrap.dedent(
            """
            import numpy as np
            # repro: allow[DET-RNG] fixture: interactive fallback
            rng = np.random.default_rng()
            """
        )
        assert not lint_source(text, "repro/workload/example.py", rules=["DET-RNG"])

    def test_allow_for_a_different_rule_does_not_silence(self):
        text = textwrap.dedent(
            """
            import numpy as np
            # repro: allow[DET-CLOCK] wrong rule id
            rng = np.random.default_rng()
            """
        )
        found = lint_source(text, "repro/workload/example.py", rules=["DET-RNG"])
        assert [finding.rule for finding in found] == ["DET-RNG"]

    def test_reasonless_used_allow_becomes_a_finding(self):
        text = textwrap.dedent(
            """
            import numpy as np
            rng = np.random.default_rng()  # repro: allow[DET-RNG]
            """
        )
        found = lint_source(text, "repro/workload/example.py", rules=["DET-RNG"])
        assert [finding.rule for finding in found] == ["SUP-REASON"]

    def test_unused_reasonless_allow_is_not_reported(self):
        text = "x = 1  # repro: allow[DET-RNG]\n"
        assert not lint_source(text, "repro/workload/example.py", rules=["DET-RNG"])


class TestFindingModel:
    def test_identity_excludes_the_line_number(self):
        a = Finding(rule="DET-RNG", path="p.py", line=3, col=0, message="m", snippet="s")
        b = Finding(rule="DET-RNG", path="p.py", line=9, col=4, message="m", snippet="s")
        assert a.identity == b.identity

    def test_render_and_json_round_trip(self):
        finding = Finding(
            rule="IO-ATOMIC", path="repro/store/x.py", line=5, col=2,
            message="bad write", snippet='open(p, "w")',
        )
        assert finding.render() == "repro/store/x.py:5:2: IO-ATOMIC bad write"
        assert Finding.from_json_dict(finding.to_json_dict()) == finding

    def test_malformed_finding_fails_loudly(self):
        with pytest.raises(AnalysisError):
            Finding.from_json_dict({"rule": "X"})


class TestBaseline:
    def _finding(self, snippet="rng = np.random.default_rng()", line=3):
        return Finding(
            rule="DET-RNG", path="repro/workload/example.py", line=line, col=6,
            message="unseeded", snippet=snippet,
        )

    def test_round_trip_partitions_everything_as_grandfathered(self, tmp_path):
        path = tmp_path / "baseline.json"
        findings = [self._finding(), self._finding(line=9)]
        save_baseline(path, findings)
        active, baselined = partition_findings(findings, load_baseline(path))
        assert not active
        assert len(baselined) == 2

    def test_missing_file_is_an_empty_baseline(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}

    def test_changed_snippet_stops_matching(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(path, [self._finding()])
        edited = self._finding(snippet="rng = np.random.default_rng()  # edited")
        active, baselined = partition_findings([edited], load_baseline(path))
        assert len(active) == 1
        assert not baselined

    def test_baseline_is_a_multiset(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(path, [self._finding()])
        two = [self._finding(line=3), self._finding(line=9)]
        active, baselined = partition_findings(two, load_baseline(path))
        assert len(baselined) == 1
        assert len(active) == 1
        # The earlier occurrence matches first (canonical order).
        assert baselined[0].line == 3

    def test_corrupt_baseline_fails_loudly(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(AnalysisError):
            load_baseline(path)

    def test_wrong_format_fails_loudly(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"format": "something-else"}), encoding="utf-8")
        with pytest.raises(AnalysisError):
            load_baseline(path)

    def test_future_version_fails_loudly(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                {"format": "repro-lint-baseline", "version": 99, "findings": []}
            ),
            encoding="utf-8",
        )
        with pytest.raises(AnalysisError):
            load_baseline(path)

    def test_saved_file_is_canonically_sorted_and_stable(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        findings = [self._finding(snippet="zzz"), self._finding(snippet="aaa")]
        save_baseline(a, findings)
        save_baseline(b, list(reversed(findings)))
        assert a.read_bytes() == b.read_bytes()
