"""The declarative fingerprint contract and its byte-identity guarantee.

This PR replaced the hand-built payload of ``config_fingerprint`` with a
derivation from per-field ``config_field(number_determining=...)`` metadata.
The golden hashes below were computed against the *old* hand-built payload
before the refactor: if any of them moves, the derivation changed the bytes
and every existing campaign store silently goes cold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest

from repro.experiments.config import (
    SMOKE_SCALE,
    ExperimentConfig,
    config_field,
    execution_only_fields,
    field_roles,
    number_determining_fields,
)
from repro.errors import ResultsError
from repro.results.records import config_fingerprint


BASE = ExperimentConfig()


class TestGoldenHashes:
    """Pinned against the pre-refactor hand-built payload."""

    def test_default_config(self):
        assert config_fingerprint(BASE) == "838d3a5d4971"

    def test_smoke_scale_seed_7(self):
        assert (
            config_fingerprint(BASE.with_scale(SMOKE_SCALE).with_seed(7))
            == "d82172850a39"
        )

    def test_sequential_stopping_armed(self):
        assert (
            config_fingerprint(BASE.with_ci_target(0.05, ci_max_reps=16))
            == "79d20c0e0d75"
        )


class TestDerivedRoleSets:
    def test_roles_cover_every_field(self):
        import dataclasses

        roles = field_roles()
        assert set(roles) == {f.name for f in dataclasses.fields(ExperimentConfig)}

    def test_number_determining_side(self):
        assert number_determining_fields() == (
            "scale",
            "seed",
            "low_rate_s",
            "high_rate_s",
            "heuristics",
            "reference",
            "middleware",
            "ci_target",
            "ci_metric",
            "ci_confidence",
            "ci_min_reps",
            "ci_max_reps",
        )

    def test_execution_only_side(self):
        assert execution_only_fields() == ("jobs", "observers", "store")

    def test_execution_only_fields_do_not_move_the_hash(self):
        for changed in (
            BASE.with_jobs(8),
            BASE.with_store("some/dir"),
        ):
            assert config_fingerprint(changed) == config_fingerprint(BASE)

    def test_every_number_determining_scalar_moves_the_hash(self):
        moved = [
            BASE.with_seed(7),
            BASE.with_scale(SMOKE_SCALE),
            BASE.with_ci_target(0.05),
        ]
        for changed in moved:
            assert config_fingerprint(changed) != config_fingerprint(BASE)

    def test_sequential_group_is_gated_on_ci_target(self):
        # With the gate disarmed, the other sequential knobs are inert: a
        # pre-sequential-era fingerprint must never move when defaults of the
        # disarmed group evolve.
        from dataclasses import replace

        assert config_fingerprint(replace(BASE, ci_max_reps=99)) == config_fingerprint(
            BASE
        )
        # Armed, the same knob is number-determining.
        armed = BASE.with_ci_target(0.05)
        assert config_fingerprint(
            replace(armed, ci_max_reps=99)
        ) != config_fingerprint(armed)


class TestUndeclaredFieldsFailLoudly:
    def test_field_without_metadata_raises_at_fingerprint_time(self):
        @dataclass(frozen=True)
        class Sneaky:
            seed: int = 2003

        with pytest.raises(ResultsError, match="fingerprint role"):
            config_fingerprint(Sneaky())

    def test_field_roles_raises_too(self):
        @dataclass(frozen=True)
        class Sneaky:
            seed: int = 2003

        with pytest.raises(TypeError, match="fingerprint role"):
            field_roles(Sneaky)

    def test_unknown_encoding_raises(self):
        @dataclass(frozen=True)
        class Odd:
            value: int = field(
                default=1,
                metadata={"number_determining": True, "fingerprint_encode": "pickle"},
            )

        with pytest.raises(ResultsError, match="unknown"):
            config_fingerprint(Odd())

    def test_config_field_builds_the_metadata(self):
        @dataclass(frozen=True)
        class Declared:
            value: int = config_field(number_determining=True, default=1)
            knob: int = config_field(number_determining=False, default=2)

        assert field_roles(Declared) == {"value": True, "knob": False}
        assert number_determining_fields(Declared) == ("value",)
        assert execution_only_fields(Declared) == ("knob",)

    def test_static_rule_catches_the_same_mistake(self):
        """FP-FIELD fires on the declaration the runtime check fires on."""
        from repro.analysis import lint_source

        found = lint_source(
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class ExperimentConfig:\n"
            "    sneaky: int = 7\n",
            "repro/experiments/config.py",
            rules=["FP-FIELD"],
        )
        assert [finding.rule for finding in found] == ["FP-FIELD"]
