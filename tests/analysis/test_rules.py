"""Per-rule good/bad fixtures, checked through :func:`lint_source`.

Every rule gets at least one fixture that must be flagged and one that must
pass, at a package-relative path inside the rule's scope — so these tests pin
both the detection and the deliberate exemptions (scoping, order-neutral
consumers, seeded constructors ...).
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import lint_source
from repro.analysis.contracts import read_all_literal
from repro.analysis.rules import RULE_REGISTRY, get_rule, select_rules
from repro.errors import AnalysisError


def findings_for(text: str, rel: str, rule: str):
    """Findings of one rule on one in-memory module."""
    found = lint_source(textwrap.dedent(text), rel, rules=[rule])
    assert all(finding.rule == rule for finding in found)
    return found


class TestRegistry:
    def test_all_eight_rules_registered(self):
        assert set(RULE_REGISTRY) == {
            "DET-RNG",
            "DET-CLOCK",
            "DET-ORDER",
            "FP-FIELD",
            "IO-ATOMIC",
            "FLOAT-FMT",
            "API-SURFACE",
            "EXC-BARE",
        }

    def test_get_rule_unknown_id_fails_loudly(self):
        with pytest.raises(AnalysisError):
            get_rule("NO-SUCH-RULE")

    def test_select_rules_defaults_to_all(self):
        assert {rule.id for rule in select_rules(None)} == set(RULE_REGISTRY)

    def test_every_rule_documents_itself(self):
        for rule in RULE_REGISTRY.values():
            assert rule.title
            assert rule.rationale


class TestDetRng:
    def test_unseeded_default_rng_is_flagged(self):
        found = findings_for(
            """
            import numpy as np
            rng = np.random.default_rng()
            """,
            "repro/workload/example.py",
            "DET-RNG",
        )
        assert len(found) == 1
        assert "without a seed" in found[0].message

    def test_seeded_default_rng_passes(self):
        assert not findings_for(
            """
            import numpy as np
            rng = np.random.default_rng(2003)
            """,
            "repro/workload/example.py",
            "DET-RNG",
        )

    def test_from_import_is_resolved(self):
        found = findings_for(
            """
            from numpy.random import default_rng
            rng = default_rng()
            """,
            "repro/workload/example.py",
            "DET-RNG",
        )
        assert len(found) == 1

    def test_stdlib_random_module_is_flagged_even_when_seeded(self):
        found = findings_for(
            """
            import random
            rng = random.Random(2003)
            """,
            "repro/stats/example.py",
            "DET-RNG",
        )
        assert len(found) == 1
        assert "random.Random" in found[0].message

    def test_stdlib_global_draw_is_flagged(self):
        found = findings_for(
            """
            import random
            x = random.random()
            """,
            "repro/core/example.py",
            "DET-RNG",
        )
        assert len(found) == 1

    def test_legacy_numpy_global_state_is_flagged(self):
        found = findings_for(
            """
            import numpy as np
            np.random.seed(0)
            x = np.random.rand(3)
            """,
            "repro/core/example.py",
            "DET-RNG",
        )
        assert len(found) == 2

    def test_the_stream_factory_module_is_exempt(self):
        assert not findings_for(
            """
            import numpy as np
            rng = np.random.default_rng()
            """,
            "repro/simulation/rng.py",
            "DET-RNG",
        )


class TestDetClock:
    def test_wall_clock_in_simulation_is_flagged(self):
        found = findings_for(
            """
            import time
            t = time.time()
            """,
            "repro/simulation/engine.py",
            "DET-CLOCK",
        )
        assert len(found) == 1
        assert "wall-clock" in found[0].message

    def test_datetime_now_in_store_is_flagged(self):
        found = findings_for(
            """
            import datetime
            stamp = datetime.datetime.now()
            """,
            "repro/store/example.py",
            "DET-CLOCK",
        )
        assert len(found) == 1

    def test_obs_package_is_the_sole_exemption(self):
        assert not findings_for(
            """
            import time
            t = time.perf_counter()
            """,
            "repro/obs/wallclock.py",
            "DET-CLOCK",
        )

    def test_scope_is_package_wide_outside_obs(self):
        # Before the obs subsystem the rule only watched four subsystems;
        # now every repro module except repro/obs/ is in scope.
        found = findings_for(
            """
            import time
            t = time.perf_counter()
            """,
            "repro/results/observers.py",
            "DET-CLOCK",
        )
        assert len(found) == 1
        assert "repro.obs" in found[0].message


class TestDetOrder:
    def test_set_iteration_feeding_output_is_flagged(self):
        found = findings_for(
            """
            def ids(records):
                return [r.id for r in {r for r in records}]
            """,
            "repro/results/example.py",
            "DET-ORDER",
        )
        assert len(found) == 1

    def test_sorted_set_iteration_passes(self):
        assert not findings_for(
            """
            def ids(records):
                return [r.id for r in sorted({r for r in records})]
            """,
            "repro/results/example.py",
            "DET-ORDER",
        )

    def test_set_algebra_is_seen_through(self):
        found = findings_for(
            """
            def common(a, b):
                return [k for k in set(a) & set(b)]
            """,
            "repro/metrics/example.py",
            "DET-ORDER",
        )
        assert len(found) == 1

    def test_membership_and_len_are_order_neutral(self):
        assert not findings_for(
            """
            def stats(a, b):
                n = len(set(a) & set(b))
                hit = "x" in set(a)
                return n, hit
            """,
            "repro/metrics/example.py",
            "DET-ORDER",
        )

    def test_listdir_is_flagged(self):
        found = findings_for(
            """
            import os
            def files(root):
                return [name for name in os.listdir(root)]
            """,
            "repro/store/example.py",
            "DET-ORDER",
        )
        assert len(found) == 1
        assert "filesystem order" in found[0].message

    def test_store_index_views_are_flagged(self):
        found = findings_for(
            """
            def listing(index):
                return [entry for entry in index.values()]
            """,
            "repro/store/example.py",
            "DET-ORDER",
        )
        assert len(found) == 1
        assert "journal-replay" in found[0].message

    def test_dict_views_outside_the_store_are_insertion_ordered(self):
        assert not findings_for(
            """
            def listing(index):
                return [entry for entry in index.values()]
            """,
            "repro/results/example.py",
            "DET-ORDER",
        )

    def test_out_of_scope_modules_are_ignored(self):
        assert not findings_for(
            """
            def ids(records):
                return [r for r in {1, 2, 3}]
            """,
            "repro/platform/example.py",
            "DET-ORDER",
        )


class TestFpField:
    def test_plain_field_is_flagged(self):
        found = findings_for(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class ExperimentConfig:
                seed: int = 2003
            """,
            "repro/experiments/config.py",
            "FP-FIELD",
        )
        assert len(found) == 1
        assert "seed" in found[0].message

    def test_non_literal_role_is_flagged(self):
        found = findings_for(
            """
            from dataclasses import dataclass

            ROLE = True

            @dataclass(frozen=True)
            class ExperimentConfig:
                seed: int = config_field(number_determining=ROLE, default=2003)
            """,
            "repro/experiments/config.py",
            "FP-FIELD",
        )
        assert len(found) == 1
        assert "literal" in found[0].message

    def test_declared_fields_pass(self):
        assert not findings_for(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class ExperimentConfig:
                seed: int = config_field(number_determining=True, default=2003)
                jobs: int = config_field(number_determining=False, default=1)
            """,
            "repro/experiments/config.py",
            "FP-FIELD",
        )

    def test_other_modules_are_out_of_scope(self):
        assert not findings_for(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class ExperimentConfig:
                seed: int = 2003
            """,
            "repro/experiments/other.py",
            "FP-FIELD",
        )


class TestIoAtomic:
    def test_write_mode_open_in_store_is_flagged(self):
        found = findings_for(
            """
            def save(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
            """,
            "repro/store/example.py",
            "IO-ATOMIC",
        )
        assert len(found) == 1

    def test_append_and_plus_modes_are_flagged(self):
        found = findings_for(
            """
            def save(path):
                open(path, "a").close()
                open(path, mode="r+").close()
            """,
            "repro/results/example.py",
            "IO-ATOMIC",
        )
        assert len(found) == 2

    def test_read_mode_open_passes(self):
        assert not findings_for(
            """
            def load(path):
                with open(path, "r", encoding="utf-8") as handle:
                    return handle.read()
            """,
            "repro/store/example.py",
            "IO-ATOMIC",
        )

    def test_path_write_text_is_flagged(self):
        found = findings_for(
            """
            def save(path, text):
                path.write_text(text)
            """,
            "repro/store/example.py",
            "IO-ATOMIC",
        )
        assert len(found) == 1

    def test_journal_module_is_exempt(self):
        assert not findings_for(
            """
            def atomic_write_text(path, text):
                with open(path + ".tmp", "w") as handle:
                    handle.write(text)
            """,
            "repro/store/journal.py",
            "IO-ATOMIC",
        )


class TestFloatFmt:
    def test_fixed_precision_fstring_is_flagged(self):
        found = findings_for(
            """
            def cell(x):
                return f"{x:.6f}"
            """,
            "repro/results/records.py",
            "FLOAT-FMT",
        )
        assert len(found) == 1

    def test_round_is_flagged(self):
        found = findings_for(
            """
            def cell(x):
                return round(x, 3)
            """,
            "repro/store/example.py",
            "FLOAT-FMT",
        )
        assert len(found) == 1

    def test_percent_formatting_is_flagged(self):
        found = findings_for(
            """
            def cell(x):
                return "%.2f" % x
            """,
            "repro/results/resultset.py",
            "FLOAT-FMT",
        )
        assert len(found) == 1

    def test_str_format_template_is_flagged(self):
        found = findings_for(
            """
            def cell(x):
                return "{:.3g}".format(x)
            """,
            "repro/results/records.py",
            "FLOAT-FMT",
        )
        assert len(found) == 1

    def test_repr_and_plain_fstrings_pass(self):
        assert not findings_for(
            """
            def cell(x):
                return f"value={repr(x)}"
            """,
            "repro/results/records.py",
            "FLOAT-FMT",
        )

    def test_human_renderers_are_out_of_scope(self):
        assert not findings_for(
            """
            def cell(x):
                return f"{x:.2f}"
            """,
            "repro/metrics/table.py",
            "FLOAT-FMT",
        )


class TestApiSurface:
    def test_missing_literal_all_is_flagged(self):
        found = findings_for(
            """
            run = None
            """,
            "repro/api.py",
            "API-SURFACE",
        )
        assert len(found) == 1
        assert "__all__" in found[0].message

    def test_read_all_literal(self):
        import ast

        tree = ast.parse('__all__ = ["a", "b"]')
        assert read_all_literal(tree) == ["a", "b"]
        assert read_all_literal(ast.parse("x = 1")) is None
        assert read_all_literal(ast.parse('__all__ = ["a"] + extra')) is None


class TestExcBare:
    def test_builtin_raise_in_heuristics_is_flagged(self):
        found = findings_for(
            """
            def select(context):
                raise ValueError("no candidates")
            """,
            "repro/core/heuristics/example.py",
            "EXC-BARE",
        )
        assert len(found) == 1

    def test_assert_is_flagged(self):
        found = findings_for(
            """
            def select(context):
                assert context is not None
            """,
            "repro/platform/middleware.py",
            "EXC-BARE",
        )
        assert len(found) == 1
        assert "assert" in found[0].message

    def test_library_hierarchy_and_reraise_pass(self):
        assert not findings_for(
            """
            from repro.errors import SchedulingError

            def select(context):
                try:
                    raise SchedulingError("no candidate")
                except SchedulingError:
                    raise
            """,
            "repro/core/heuristics/example.py",
            "EXC-BARE",
        )

    def test_not_implemented_error_stays_legal(self):
        assert not findings_for(
            """
            def select(context):
                raise NotImplementedError
            """,
            "repro/core/heuristics/base.py",
            "EXC-BARE",
        )

    def test_other_modules_are_out_of_scope(self):
        assert not findings_for(
            """
            def check(x):
                raise ValueError(x)
            """,
            "repro/workload/example.py",
            "EXC-BARE",
        )
