"""End-to-end checks: the tree lints clean, injected violations do not.

The self-check is the contract the CI ``lint`` job gates on: ``repro check``
over the installed package, against the *committed* baseline, must exit 0.
The injection tests then prove each rule class actually fires end-to-end
(discovery → package-relative scoping → suppression/baseline accounting →
exit code), not just on in-memory fixtures.
"""

from __future__ import annotations

import json
import os
import textwrap

import pytest

import repro
from repro import api
from repro.analysis import run_check, write_api_surface
from repro.analysis.runner import default_baseline_path
from repro.cli import main
from repro.errors import AnalysisError


PACKAGE_DIR = os.path.dirname(os.path.abspath(repro.__file__))


def make_package(tmp_path, rel, text):
    """Materialise one module at ``repro/<rel>`` inside a fake package tree."""
    root = tmp_path / "repro"
    parts = rel.split("/")
    directory = root
    directory.mkdir(exist_ok=True)
    (directory / "__init__.py").write_text("", encoding="utf-8")
    for part in parts[:-1]:
        directory = directory / part
        directory.mkdir(exist_ok=True)
        (directory / "__init__.py").write_text("", encoding="utf-8")
    (directory / parts[-1]).write_text(textwrap.dedent(text), encoding="utf-8")
    return str(root)


class TestSelfCheck:
    def test_the_package_lints_clean_against_the_committed_baseline(self):
        report = run_check([PACKAGE_DIR])
        assert report.clean, report.render()
        assert report.exit_code == 0
        assert report.baseline_path == default_baseline_path()

    def test_the_committed_baseline_carries_no_debt(self):
        with open(default_baseline_path(), "r", encoding="utf-8") as handle:
            data = json.load(handle)
        assert data["format"] == "repro-lint-baseline"
        assert data["findings"] == []

    def test_every_in_tree_allow_documents_its_reason(self):
        report = run_check([PACKAGE_DIR])
        assert not [f for f in report.findings if f.rule == "SUP-REASON"]
        # The satellites of this PR put real suppressions in the tree
        # (convenience RNG fallbacks, the M/M/c validator, cache compaction).
        assert len(report.suppressed) >= 10

    def test_all_eight_rules_ran(self):
        report = run_check([PACKAGE_DIR])
        assert len(report.rules) == 8
        assert len(report.files) > 50

    def test_the_analytical_validator_pins_its_rng_allow(self):
        """Satellite: ``stats/analytical.py`` keeps its deliberate stdlib
        Random behind an explicit, reasoned allow — not a baseline entry."""
        path = os.path.join(PACKAGE_DIR, "stats", "analytical.py")
        report = run_check([path], select=["DET-RNG"])
        assert report.clean
        allowed = [f for f in report.suppressed if f.rule == "DET-RNG"]
        assert len(allowed) == 1
        assert "random.Random" in allowed[0].snippet
        # Stripping the allow line re-exposes the finding: the suppression is
        # load-bearing, not decorative.
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        stripped = "\n".join(
            line for line in text.splitlines() if "repro: allow[DET-RNG]" not in line
        )
        from repro.analysis import lint_source

        found = lint_source(stripped, "repro/stats/analytical.py", rules=["DET-RNG"])
        assert [finding.rule for finding in found] == ["DET-RNG"]


class TestInjectedViolations:
    """Each rule class must catch a violation through the full pipeline."""

    def check(self, tmp_path, rel, text, rule):
        root = make_package(tmp_path, rel, text)
        return run_check(
            [root], baseline=str(tmp_path / "empty-baseline.json"), select=[rule]
        )

    def test_det_rng(self, tmp_path):
        report = self.check(
            tmp_path,
            "workload/bad.py",
            """
            import numpy as np
            RNG = np.random.default_rng()
            """,
            "DET-RNG",
        )
        assert report.exit_code == 1
        assert report.counts_by_rule() == {"DET-RNG": 1}

    def test_det_clock(self, tmp_path):
        report = self.check(
            tmp_path,
            "simulation/bad.py",
            """
            import time
            STARTED = time.time()
            """,
            "DET-CLOCK",
        )
        assert report.exit_code == 1
        assert report.counts_by_rule() == {"DET-CLOCK": 1}

    def test_det_order(self, tmp_path):
        report = self.check(
            tmp_path,
            "store/bad.py",
            """
            def listing(index):
                return [entry for entry in index.values()]
            """,
            "DET-ORDER",
        )
        assert report.exit_code == 1
        assert report.counts_by_rule() == {"DET-ORDER": 1}

    def test_fp_field(self, tmp_path):
        report = self.check(
            tmp_path,
            "experiments/config.py",
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class ExperimentConfig:
                sneaky_new_knob: int = 7
            """,
            "FP-FIELD",
        )
        assert report.exit_code == 1
        assert report.counts_by_rule() == {"FP-FIELD": 1}

    def test_io_atomic(self, tmp_path):
        report = self.check(
            tmp_path,
            "results/bad.py",
            """
            def save(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
            """,
            "IO-ATOMIC",
        )
        assert report.exit_code == 1
        assert report.counts_by_rule() == {"IO-ATOMIC": 1}

    def test_float_fmt(self, tmp_path):
        report = self.check(
            tmp_path,
            "store/bad.py",
            """
            def cell(x):
                return f"{x:.6f}"
            """,
            "FLOAT-FMT",
        )
        assert report.exit_code == 1
        assert report.counts_by_rule() == {"FLOAT-FMT": 1}

    def test_exc_bare(self, tmp_path):
        report = self.check(
            tmp_path,
            "core/heuristics/bad.py",
            """
            def select(context):
                raise ValueError("boom")
            """,
            "EXC-BARE",
        )
        assert report.exit_code == 1
        assert report.counts_by_rule() == {"EXC-BARE": 1}

    def test_api_surface(self, tmp_path):
        root = make_package(
            tmp_path, "api.py", '__all__ = ["run", "sneaky_new_entry"]\n'
        )
        # write_api_surface reads both watched modules, so the fake package
        # root needs a literal __all__ too.
        (tmp_path / "repro" / "__init__.py").write_text(
            "__all__ = []\n", encoding="utf-8"
        )
        analysis_dir = tmp_path / "repro" / "analysis"
        analysis_dir.mkdir()
        (analysis_dir / "__init__.py").write_text("", encoding="utf-8")
        (analysis_dir / "api_surface.json").write_text(
            json.dumps({"repro": [], "repro.api": ["run"]}), encoding="utf-8"
        )
        # Scope to api.py: the fake __init__.py legitimately has no __all__.
        report = run_check(
            [os.path.join(root, "api.py")],
            baseline=str(tmp_path / "empty-baseline.json"),
            select=["API-SURFACE"],
        )
        assert report.exit_code == 1
        assert report.counts_by_rule() == {"API-SURFACE": 1}
        assert "sneaky_new_entry" in report.findings[0].message
        # Regenerating the surface baseline is the sanctioned fix.
        write_api_surface(root)
        again = run_check(
            [os.path.join(root, "api.py")],
            baseline=str(tmp_path / "empty-baseline.json"),
            select=["API-SURFACE"],
        )
        assert again.clean


class TestBaselineWorkflow:
    def test_update_baseline_grandfathers_then_gates_new_debt(self, tmp_path):
        root = make_package(
            tmp_path,
            "workload/bad.py",
            """
            import numpy as np
            RNG = np.random.default_rng()
            """,
        )
        baseline = tmp_path / "baseline.json"
        first = run_check(
            [root], baseline=str(baseline), update_baseline=True, select=["DET-RNG"]
        )
        assert first.clean
        assert first.baseline_updated
        assert baseline.exists()
        # The grandfathered finding no longer gates ...
        warm = run_check([root], baseline=str(baseline), select=["DET-RNG"])
        assert warm.clean
        assert len(warm.baselined) == 1
        # ... but a *new* violation still does.
        make_package(
            tmp_path,
            "workload/worse.py",
            """
            import random
            X = random.random()
            """,
        )
        drifted = run_check([root], baseline=str(baseline), select=["DET-RNG"])
        assert drifted.exit_code == 1
        assert len(drifted.findings) == 1
        assert len(drifted.baselined) == 1

    def test_missing_path_fails_loudly(self, tmp_path):
        with pytest.raises(AnalysisError):
            run_check([str(tmp_path / "no-such-dir")])


class TestEntryPoints:
    def test_api_check_matches_run_check(self, tmp_path):
        report = api.check([PACKAGE_DIR], json_path=tmp_path / "report.json")
        assert report.clean
        with open(tmp_path / "report.json", "r", encoding="utf-8") as handle:
            data = json.load(handle)
        assert data["format"] == "repro-lint-report"
        assert data["clean"] is True
        assert data["rules"] == sorted(data["rules"])
        assert "check" in api.__all__

    def test_cli_check_exits_zero_on_the_package(self, capsys):
        assert main(["check", PACKAGE_DIR]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_cli_check_defaults_to_the_installed_package(self, capsys):
        assert main(["check"]) == 0

    def test_cli_list_rules(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET-RNG", "DET-CLOCK", "DET-ORDER", "FP-FIELD",
                        "IO-ATOMIC", "FLOAT-FMT", "API-SURFACE", "EXC-BARE"):
            assert rule_id in out

    def test_cli_exits_one_on_violations_and_writes_json(self, tmp_path, capsys):
        root = make_package(
            tmp_path,
            "workload/bad.py",
            """
            import numpy as np
            RNG = np.random.default_rng()
            """,
        )
        json_path = tmp_path / "lint-report.json"
        code = main(
            [
                "check",
                root,
                "--baseline",
                str(tmp_path / "empty.json"),
                "--select",
                "DET-RNG",
                "--json",
                str(json_path),
            ]
        )
        assert code == 1
        with open(json_path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        assert data["clean"] is False
        assert data["counts"] == {"DET-RNG": 1}
        assert "DET-RNG" in capsys.readouterr().out
