"""Tests of the Section 3 metrics, comparisons, aggregation and reports."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    aggregate_summaries,
    aggregate_values,
    compare_runs,
    makespan,
    max_flow,
    max_stretch,
    mean_flow,
    render_markdown_table,
    render_table,
    stretches,
    sum_flow,
    summarize,
    tasks_finishing_sooner,
)
from repro.metrics.flow import MetricSummary
from repro.workload.problems import matmul_problem
from repro.workload.tasks import Task


def completed_task(task_id, arrival, completion, server="artimon", size=1200):
    task = Task(task_id=task_id, problem=matmul_problem(size), arrival=arrival)
    task.new_attempt(server, mapped_at=arrival)
    task.mark_completed(completion)
    return task


def failed_task(task_id, arrival):
    task = Task(task_id=task_id, problem=matmul_problem(1200), arrival=arrival)
    task.new_attempt("artimon", mapped_at=arrival)
    task.mark_failed(arrival + 5.0, "boom")
    return task


class TestFlowMetrics:
    def test_hand_computed_values(self):
        tasks = [
            completed_task("a", arrival=0.0, completion=50.0),   # flow 50
            completed_task("b", arrival=10.0, completion=40.0),  # flow 30
            completed_task("c", arrival=20.0, completion=100.0), # flow 80
        ]
        assert makespan(tasks) == pytest.approx(100.0)
        assert sum_flow(tasks) == pytest.approx(160.0)
        assert max_flow(tasks) == pytest.approx(80.0)
        assert mean_flow(tasks) == pytest.approx(160.0 / 3.0)
        # artimon matmul-1200 unloaded duration = 22 s
        assert max_stretch(tasks) == pytest.approx(80.0 / 22.0)
        assert stretches(tasks)["b"] == pytest.approx(30.0 / 22.0)

    def test_failed_tasks_are_excluded(self):
        tasks = [completed_task("a", 0.0, 30.0), failed_task("x", 0.0)]
        assert makespan(tasks) == pytest.approx(30.0)
        assert sum_flow(tasks) == pytest.approx(30.0)
        summary = summarize(tasks, "h")
        assert summary.n_tasks == 2
        assert summary.n_completed == 1

    def test_empty_task_list(self):
        assert makespan([]) == 0.0
        assert sum_flow([]) == 0.0
        assert max_flow([]) == 0.0
        assert max_stretch([]) == 0.0
        assert mean_flow([]) == 0.0
        summary = summarize([], "h")
        assert summary.n_tasks == 0 and summary.n_completed == 0

    def test_summary_as_dict_is_rounded_and_labelled(self):
        summary = summarize([completed_task("a", 0.0, 31.234567)], "msf")
        payload = summary.as_dict()
        assert payload["heuristic"] == "msf"
        assert payload["makespan"] == pytest.approx(31.23)
        assert payload["n_completed"] == 1

    @given(
        flows=st.lists(st.floats(min_value=0.1, max_value=500.0), min_size=1, max_size=30),
    )
    @settings(max_examples=40, deadline=None)
    def test_invariants_between_metrics(self, flows):
        tasks = [
            completed_task(f"t{i}", arrival=float(i), completion=float(i) + flow)
            for i, flow in enumerate(flows)
        ]
        assert max_flow(tasks) <= sum_flow(tasks) + 1e-9
        assert mean_flow(tasks) <= max_flow(tasks) + 1e-9
        assert makespan(tasks) >= max(flow for flow in flows) - 1e-9
        assert max_stretch(tasks) >= 0.0


class TestComparison:
    def test_tasks_finishing_sooner_counts(self):
        reference = [completed_task(f"t{i}", 0.0, 100.0 + i) for i in range(4)]
        candidate = [
            completed_task("t0", 0.0, 50.0),    # sooner
            completed_task("t1", 0.0, 101.0),   # same date -> tied
            completed_task("t2", 0.0, 150.0),   # later
            completed_task("t3", 0.0, 90.0),    # sooner
        ]
        comparison = tasks_finishing_sooner(candidate, reference, "cand", "ref")
        assert comparison.comparable == 4
        assert comparison.sooner == 2
        assert comparison.later == 1
        assert comparison.tied == 1
        assert comparison.sooner_fraction == pytest.approx(0.5)
        assert comparison.mean_gain_s == pytest.approx((50.0 + 0.0 - 48.0 + 13.0) / 4.0)

    def test_only_tasks_completed_by_both_runs_are_compared(self):
        reference = [completed_task("a", 0.0, 10.0), failed_task("b", 0.0)]
        candidate = [completed_task("a", 0.0, 5.0), completed_task("b", 0.0, 5.0)]
        comparison = tasks_finishing_sooner(candidate, reference)
        assert comparison.comparable == 1
        assert comparison.sooner == 1

    def test_compare_runs_requires_reference(self):
        runs = {"mct": [completed_task("a", 0.0, 10.0)], "msf": [completed_task("a", 0.0, 8.0)]}
        comparisons = compare_runs(runs, reference="mct")
        assert set(comparisons) == {"msf"}
        assert comparisons["msf"].sooner == 1
        with pytest.raises(KeyError):
            compare_runs(runs, reference="missing")


class TestAggregation:
    def test_aggregate_values_statistics(self):
        aggregate = aggregate_values([10.0, 20.0, 30.0])
        assert aggregate.n == 3
        assert aggregate.mean == pytest.approx(20.0)
        assert aggregate.minimum == 10.0
        assert aggregate.maximum == 30.0
        assert aggregate.std == pytest.approx(10.0)
        assert aggregate.half_ci95 > 0.0
        assert aggregate.as_dict()["mean"] == 20.0

    def test_aggregate_of_empty_and_single_values(self):
        assert aggregate_values([]).n == 0
        single = aggregate_values([5.0])
        assert single.std == 0.0
        assert single.half_ci95 == 0.0

    def test_aggregate_summaries_by_metric(self):
        summaries = [
            MetricSummary("h", 10, 10, 100.0, 1000.0, 50.0, 3.0, 100.0, 1.5),
            MetricSummary("h", 10, 8, 120.0, 1200.0, 70.0, 5.0, 150.0, 2.5),
        ]
        aggregates = aggregate_summaries(summaries)
        assert aggregates["makespan"].mean == pytest.approx(110.0)
        assert aggregates["n_completed"].mean == pytest.approx(9.0)
        assert aggregate_summaries([]) == {}


class TestReportRendering:
    def test_render_table_contains_all_cells(self):
        columns = {
            "mct": {"sumflow": 25922.0, "makespan": 9906.0},
            "msf": {"sumflow": 19702.0, "makespan": 9905.0},
        }
        text = render_table(columns, title="Table 5", column_order=["mct", "msf"])
        assert "Table 5" in text
        assert "25922" in text and "19702" in text
        assert text.index("mct") < text.index("msf")

    def test_render_markdown_table_structure(self):
        columns = {"mct": {"sumflow": 1.0}, "msf": {"sumflow": 2.0}}
        markdown = render_markdown_table(columns)
        lines = markdown.splitlines()
        assert lines[0].startswith("| metric |")
        assert lines[1].startswith("|---")
        assert any("sumflow" in line for line in lines)

    def test_missing_cells_render_as_dash(self):
        columns = {"mct": {"sumflow": 1.0}, "msf": {}}
        assert "-" in render_table(columns)

    def test_format_value_precision(self):
        from repro.metrics.report import format_value

        assert format_value(None) == "-"
        assert format_value("text") == "text"
        assert format_value(500) == "500"
        assert format_value(10162.0) == "10162"
        assert format_value(12.84) == "12.8"
        assert format_value(3.7123) == "3.71"
