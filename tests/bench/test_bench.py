"""Tests of the bench harness: suites, reports, the regression gate, history."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    BenchCase,
    BenchReport,
    SMOKE_SUITE,
    compare_reports,
    get_suite,
    history_entries,
    next_history_path,
    render_history,
    run_suite,
)
from repro.bench.report import SCHEMA, BenchCaseResult
from repro.cli import main
from repro.errors import ExperimentError, ResultsError


def _report(wall_by_case, seed: int = 2003, counters=None) -> BenchReport:
    report = BenchReport(suite="test", seed=seed, jobs=1)
    for name, wall in wall_by_case.items():
        report.cases.append(
            BenchCaseResult(
                name=name,
                scenario="paper-low-rate",
                scale={"tasks_per_metatask": 10},
                wall_s=wall,
                phases={"simulate": wall},
                tasks_simulated=100,
                tasks_per_s=100.0 / wall if wall else 0.0,
                cells=4,
                counters=dict(counters or {"calendar.pushes": 1000}),
            )
        )
    return report


class TestSuites:
    def test_unknown_suite_is_rejected(self):
        with pytest.raises(ExperimentError, match="unknown bench suite"):
            get_suite("nope")

    def test_duplicate_case_names_are_rejected(self):
        case = BenchCase(name="dup", scenario="paper-low-rate", tasks=5)
        with pytest.raises(ExperimentError, match="duplicate"):
            run_suite([case, case])

    def test_empty_suite_is_rejected(self):
        with pytest.raises(ExperimentError, match="empty"):
            run_suite([])


class TestRunner:
    def test_smoke_suite_produces_a_full_report(self):
        report = run_suite(SMOKE_SUITE, suite="smoke", seed=2003)
        assert [case.name for case in report.cases] == [c.name for c in SMOKE_SUITE]
        for case in report.cases:
            assert case.wall_s > 0
            assert case.tasks_simulated > 0
            assert case.counters  # deterministic hot-path counters present
            assert "simulate" in case.phases

    def test_counters_are_deterministic_across_runs(self):
        case = BenchCase(name="tiny", scenario="paper-low-rate", tasks=10)
        first = run_suite([case], seed=2003)
        second = run_suite([case], seed=2003)
        assert first.cases[0].counters == second.cases[0].counters
        assert first.cases[0].tasks_simulated == second.cases[0].tasks_simulated


class TestReportPersistence:
    def test_roundtrip(self, tmp_path):
        report = _report({"a": 1.0, "b": 2.0})
        path = str(tmp_path / "report.json")
        report.save_json(path)
        loaded = BenchReport.load_json(path)
        assert loaded.as_dict() == report.as_dict()
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle)["schema"] == SCHEMA

    def test_schema_mismatch_is_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "bench-report/v999"}', encoding="utf-8")
        with pytest.raises(ResultsError, match="schema"):
            BenchReport.load_json(str(path))

    def test_render_lists_every_case(self):
        text = _report({"a": 1.0, "b": 2.0}).render()
        assert "a" in text and "b" in text and "2 case(s)" in text


class TestCompare:
    def test_identical_reports_pass(self):
        comparison = compare_reports(_report({"a": 1.0}), _report({"a": 1.0}))
        assert comparison.ok
        assert "PASS" in comparison.render()

    def test_twenty_five_percent_slowdown_regresses(self):
        comparison = compare_reports(_report({"a": 1.0}), _report({"a": 1.25}))
        assert not comparison.ok
        assert "wall time" in comparison.render()

    def test_slowdown_inside_the_budget_passes(self):
        assert compare_reports(_report({"a": 1.0}), _report({"a": 1.15})).ok

    def test_improvement_passes(self):
        assert compare_reports(_report({"a": 1.0}), _report({"a": 0.5})).ok

    def test_no_wall_gate_reports_but_does_not_fail(self):
        comparison = compare_reports(
            _report({"a": 1.0}), _report({"a": 3.0}), wall_gate=False
        )
        assert comparison.ok

    def test_counter_growth_regresses_even_when_wall_improves(self):
        baseline = _report({"a": 1.0}, counters={"calendar.pushes": 1000})
        current = _report({"a": 0.9}, counters={"calendar.pushes": 1200})
        comparison = compare_reports(baseline, current)
        assert not comparison.ok
        assert "counter calendar.pushes" in comparison.render()

    def test_missing_case_regresses_and_new_case_passes(self):
        comparison = compare_reports(
            _report({"a": 1.0, "gone": 1.0}), _report({"a": 1.0, "fresh": 1.0})
        )
        assert not comparison.ok
        rendered = comparison.render()
        assert "MISSING" in rendered and "new case" in rendered
        only_missing = [d for d in comparison.deltas if d.regressed]
        assert [d.name for d in only_missing] == ["gone"]

    def test_seed_mismatch_is_rejected(self):
        with pytest.raises(ExperimentError, match="seed"):
            compare_reports(_report({"a": 1.0}), _report({"a": 1.0}, seed=1))


class TestHistory:
    def test_archive_sequence_and_trend_render(self, tmp_path):
        directory = str(tmp_path / "hist")
        first = next_history_path(directory)
        assert first.endswith("bench-0001.json")
        _report({"a": 1.0}).save_json(first)
        second = next_history_path(directory)
        assert second.endswith("bench-0002.json")
        _report({"a": 1.5}).save_json(second)
        entries = history_entries(directory)
        assert [path for path, _ in entries] == [first, second]
        text = render_history(entries)
        assert "2 report(s)" in text and "a" in text

    def test_missing_directory_is_an_error(self, tmp_path):
        with pytest.raises(ResultsError):
            history_entries(str(tmp_path / "nope"))


class TestCliGate:
    def test_compare_exits_nonzero_on_synthetic_slowdown(self, tmp_path, capsys):
        baseline = str(tmp_path / "base.json")
        slowed = str(tmp_path / "slow.json")
        _report({"a": 1.0}).save_json(baseline)
        slow = _report({"a": 1.0})
        for case in slow.cases:
            case.wall_s *= 1.25  # >= 20% slower than the committed baseline
        slow.save_json(slowed)
        assert main(["bench", "compare", baseline, slowed]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_compare_exits_zero_on_identical_reports(self, tmp_path, capsys):
        path = str(tmp_path / "report.json")
        _report({"a": 1.0}).save_json(path)
        assert main(["bench", "compare", path, path]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_run_with_compare_gates_in_one_command(self, tmp_path, capsys):
        case_names = "paper-low-rate-40"
        baseline = str(tmp_path / "base.json")
        assert (
            main(
                ["bench", "run", "--suite", "smoke", "--cases", case_names,
                 "--json", baseline]
            )
            == 0
        )
        capsys.readouterr()
        # Same machine, same work, no-wall-gate for safety: must pass.
        assert (
            main(
                ["bench", "run", "--suite", "smoke", "--cases", case_names,
                 "--compare", baseline, "--no-wall-gate"]
            )
            == 0
        )
        assert "PASS" in capsys.readouterr().out

    def test_history_cli(self, tmp_path, capsys):
        directory = str(tmp_path / "hist")
        _report({"a": 1.0}).save_json(next_history_path(directory))
        assert main(["bench", "history", directory]) == 0
        assert "1 report(s)" in capsys.readouterr().out
