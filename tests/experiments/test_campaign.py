"""Tests of the campaign execution engine (planning, executors, determinism)."""

from __future__ import annotations

import multiprocessing
import pickle

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    ExperimentConfig,
    ExperimentScale,
    MultiprocessingExecutor,
    RunCell,
    SerialExecutor,
    create_executor,
    derive_seed_offset,
    plan_cells,
    run_campaign,
)
from repro.experiments.campaign import CellWork, execute_cell
from repro.experiments.runner import run_table_experiment
from repro.platform.middleware import MiddlewareConfig
from repro.workload.problems import PAPER_CATALOGUE
from repro.workload.testbed import first_set_platform, matmul_metatask


def tiny_config(repetitions: int = 1, jobs: int = 1) -> ExperimentConfig:
    return ExperimentConfig(
        scale=ExperimentScale(
            name="tiny", task_count=25, metatask_count=1, repetitions=repetitions
        ),
        seed=42,
        jobs=jobs,
    )


def tiny_metatask(seed: int = 42, name: str = "campaign-test"):
    return matmul_metatask(25, 20.0, rng=np.random.default_rng(seed), name=name)


class TestPlanning:
    def test_seed_offsets_derive_from_coordinates_only(self):
        assert derive_seed_offset(0, 0) == 0
        assert derive_seed_offset(0, 3) == 3
        assert derive_seed_offset(2, 1) == 2001

    def test_plan_orders_reference_first_then_metatask_then_repetition(self):
        config = tiny_config(repetitions=2)
        cells = plan_cells(config, metatask_count=2)
        assert len(cells) == 4 * 2 * 2  # heuristics × metatasks × repetitions
        assert [c.heuristic for c in cells[:4]] == ["mct"] * 4
        assert [(c.metatask_index, c.repetition) for c in cells[:4]] == [
            (0, 0), (0, 1), (1, 0), (1, 1),
        ]
        # every cell's seed offset matches the historical serial scheme
        for cell in cells:
            assert cell.seed_offset == cell.metatask_index * 1000 + cell.repetition

    def test_every_heuristic_covers_every_cell_key(self):
        config = tiny_config(repetitions=2)
        cells = plan_cells(config, metatask_count=3)
        keys_by_heuristic = {}
        for cell in cells:
            keys_by_heuristic.setdefault(cell.heuristic, set()).add(cell.key)
        expected = {(m, r) for m in range(3) for r in range(2)}
        assert all(keys == expected for keys in keys_by_heuristic.values())

    def test_cell_work_is_picklable(self):
        config = tiny_config()
        work = CellWork(
            cell=RunCell("mct", 0, 0, 0),
            platform=first_set_platform(),
            metatask=tiny_metatask(),
            middleware_config=config.middleware_for("mct", 0),
            catalogue=PAPER_CATALOGUE,
        )
        clone = pickle.loads(pickle.dumps(work))
        assert clone.cell == work.cell
        assert clone.metatask.name == work.metatask.name


class TestExecutors:
    def test_create_executor_picks_backend(self):
        assert isinstance(create_executor(None), SerialExecutor)
        assert isinstance(create_executor(1), SerialExecutor)
        assert isinstance(create_executor(4), MultiprocessingExecutor)
        with pytest.raises(ExperimentError):
            create_executor(0)

    def test_multiprocessing_executor_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            MultiprocessingExecutor(0)

    def test_executors_preserve_cell_order(self):
        config = tiny_config()
        platform = first_set_platform()
        metatask = tiny_metatask()
        cells = plan_cells(config, metatask_count=1)
        work_items = [
            CellWork(
                cell=cell,
                platform=platform,
                metatask=metatask,
                middleware_config=config.middleware_for(cell.heuristic, cell.seed_offset),
                catalogue=PAPER_CATALOGUE,
            )
            for cell in cells
        ]
        results = MultiprocessingExecutor(jobs=4)(work_items)
        assert [r.heuristic for r in results] == [c.heuristic for c in cells]

    def test_execute_cell_builds_a_fresh_middleware_per_cell(self):
        config = tiny_config()
        work = CellWork(
            cell=RunCell("mct", 0, 0, 0),
            platform=first_set_platform(),
            metatask=tiny_metatask(),
            middleware_config=config.middleware_for("mct", 0),
            catalogue=PAPER_CATALOGUE,
        )
        first = execute_cell(work)
        second = execute_cell(work)  # would raise if the middleware were reused
        assert first.completed_count == second.completed_count
        assert first.seed == second.seed == config.seed


class TestDeterminism:
    def test_jobs1_and_jobs4_tables_are_byte_identical(self):
        """The headline guarantee: a Table-5-shaped campaign run serially and
        on a 4-worker pool produces byte-identical columns."""
        config = tiny_config(repetitions=2)
        platform = first_set_platform()
        metatask = tiny_metatask()

        serial = run_campaign(
            "table5-shaped", "t", platform, [metatask], config, jobs=1
        )
        parallel = run_campaign(
            "table5-shaped", "t", platform, [metatask], config, jobs=4
        )

        assert pickle.dumps(serial.columns) == pickle.dumps(parallel.columns)
        assert serial.render() == parallel.render()

    def test_parallel_outcomes_match_serial_run_for_run(self):
        config = tiny_config(repetitions=2)
        platform = first_set_platform()
        metatask = tiny_metatask()
        serial = run_campaign("t", "t", platform, [metatask], config, jobs=1)
        parallel = run_campaign("t", "t", platform, [metatask], config, jobs=3)
        for name in serial.columns:
            runs_a = serial.outcomes[name].runs
            runs_b = parallel.outcomes[name].runs
            assert [r.seed for r in runs_a] == [r.seed for r in runs_b]
            assert [r.duration for r in runs_a] == [r.duration for r in runs_b]
            assert [
                sorted(t.completion_time for t in r.tasks if t.completed) for r in runs_a
            ] == [
                sorted(t.completion_time for t in r.tasks if t.completed) for r in runs_b
            ]

    def test_run_table_experiment_is_a_deprecated_delegating_shim(self):
        config = tiny_config()
        platform = first_set_platform()
        metatask = tiny_metatask()
        with pytest.warns(DeprecationWarning, match="run_table_experiment"):
            via_runner = run_table_experiment("t", "t", platform, [metatask], config)
        via_campaign = run_campaign("t", "t", platform, [metatask], config)
        assert via_runner.columns == via_campaign.columns

    def test_config_jobs_is_honoured(self):
        config = tiny_config(jobs=2)
        platform = first_set_platform()
        metatask = tiny_metatask()
        parallel = run_campaign("t", "t", platform, [metatask], config)
        serial = run_campaign("t", "t", platform, [metatask], config.with_jobs(1))
        assert parallel.columns == serial.columns

    def test_custom_executor_is_pluggable(self):
        calls = {}

        def recording_executor(work_items):
            calls["n"] = len(work_items)
            return [execute_cell(work) for work in work_items]

        config = tiny_config()
        table = run_campaign(
            "t", "t", first_set_platform(), [tiny_metatask()], config,
            executor=recording_executor,
        )
        assert calls["n"] == 4
        assert set(table.columns) == {"mct", "hmct", "mp", "msf"}

    def test_mismatched_executor_result_count_raises(self):
        config = tiny_config()
        with pytest.raises(ExperimentError):
            run_campaign(
                "t", "t", first_set_platform(), [tiny_metatask()], config,
                executor=lambda work_items: [],
            )


class TestComparisons:
    def test_non_reference_outcomes_compare_against_matching_reference_cell(self):
        config = tiny_config(repetitions=2)
        table = run_campaign("t", "t", first_set_platform(), [tiny_metatask()], config, jobs=4)
        for name, outcome in table.outcomes.items():
            if name == "mct":
                assert outcome.comparisons == []
            else:
                assert len(outcome.comparisons) == 2  # one per (metatask, repetition)
                assert all(c.reference == "mct" for c in outcome.comparisons)


def _two_cell_work(heuristics=("mct", "msf")):
    """Two small cells sharing one platform/metatask (helper for spawn tests)."""
    config = tiny_config()
    platform = first_set_platform()
    metatask = tiny_metatask()
    return [
        CellWork(
            cell=RunCell(name, 0, 0, 0),
            platform=platform,
            metatask=metatask,
            middleware_config=config.middleware_for(name, 0),
            catalogue=PAPER_CATALOGUE,
        )
        for name in heuristics
    ]


def _daemonic_campaign_worker(queue):
    """Runs inside a *daemonic* process, which may not spawn children: the
    multiprocessing executor must degrade to serial execution instead of
    crashing with 'daemonic processes are not allowed to have children'."""
    try:
        results = MultiprocessingExecutor(jobs=2)(_two_cell_work())
        queue.put([(r.heuristic, r.completed_count, r.duration) for r in results])
    except BaseException as exc:  # pragma: no cover - surfaced by the test
        queue.put(exc)


class TestSpawnSafety:
    def test_executor_uses_an_explicit_context(self):
        executor = MultiprocessingExecutor(jobs=2)
        method = executor._context().get_start_method()
        # The platform default is respected (it exists for fork-safety
        # reasons), just resolved into an explicit context.
        assert method == multiprocessing.get_start_method(allow_none=False)

    def test_explicit_start_method_is_honoured(self):
        method = multiprocessing.get_all_start_methods()[0]
        executor = MultiprocessingExecutor(jobs=2, start_method=method)
        assert executor._context().get_start_method() == method

    def test_unknown_start_method_is_rejected(self):
        with pytest.raises(ValueError):
            MultiprocessingExecutor(jobs=2, start_method="not-a-method")

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="the daemonic-child regression test needs a fast fork context",
    )
    def test_nested_campaign_inside_daemonic_worker_falls_back_to_serial(self):
        context = multiprocessing.get_context("fork")
        queue = context.Queue()
        child = context.Process(target=_daemonic_campaign_worker, args=(queue,), daemon=True)
        child.start()
        try:
            payload = queue.get(timeout=120)
        finally:
            child.join(timeout=120)
        if isinstance(payload, BaseException):
            raise AssertionError(f"daemonic campaign crashed: {payload!r}")
        # The fallback is byte-identical to an in-process serial run.
        serial = SerialExecutor()(_two_cell_work())
        assert payload == [(r.heuristic, r.completed_count, r.duration) for r in serial]


class TestTruncationFlagging:
    def test_truncated_runs_are_flagged_in_table_notes(self):
        config = ExperimentConfig(
            scale=ExperimentScale(name="tiny", task_count=10, metatask_count=1),
            seed=42,
            middleware=MiddlewareConfig(noise_model=None, max_horizon_s=5.0),
        )
        table = run_campaign(
            "truncated", "t", first_set_platform(), [tiny_metatask()], config
        )
        assert any("truncated" in note for note in table.notes)
        assert all(run.truncated for o in table.outcomes.values() for run in o.runs)

    def test_complete_campaigns_carry_no_truncation_note(self):
        table = run_campaign(
            "complete", "t", first_set_platform(), [tiny_metatask()], tiny_config()
        )
        assert not any("truncated" in note for note in table.notes)
        assert not any(run.truncated for o in table.outcomes.values() for run in o.runs)
