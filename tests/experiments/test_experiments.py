"""Tests of the experiment harness: validation, Fig. 1, table runner, registry, CLI."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    EXPERIMENTS,
    ExperimentConfig,
    ExperimentScale,
    experiment_ids,
    get_experiment,
    run_experiment,
    run_fig1,
    run_table1,
    table1_metatasks,
)
from repro.experiments.config import FULL_SCALE, HIGH_RATE_MEAN_S, LOW_RATE_MEAN_S, SMOKE_SCALE
from repro.experiments.campaign import run_campaign
from repro.experiments.validation import TABLE1_METATASK_A, TABLE1_METATASK_B
from repro.platform.faults import SpeedNoiseModel
from repro.workload.testbed import first_set_platform, matmul_metatask
from repro import cli


class TestConfig:
    def test_full_scale_matches_the_paper_protocol(self):
        assert FULL_SCALE.task_count == 500
        assert LOW_RATE_MEAN_S == 20.0
        assert HIGH_RATE_MEAN_S == 15.0

    def test_with_scale_and_seed_return_copies(self):
        config = ExperimentConfig()
        smaller = config.with_scale(SMOKE_SCALE)
        reseeded = config.with_seed(7)
        assert smaller.scale is SMOKE_SCALE
        assert config.scale is FULL_SCALE
        assert reseeded.seed == 7 and config.seed == 2003

    def test_scaled_scale_factor(self):
        assert FULL_SCALE.scaled(0.1).task_count == 50

    def test_middleware_for_applies_seed_offset(self):
        config = ExperimentConfig(seed=100)
        assert config.middleware_for("mct", seed_offset=3).seed == 103


class TestTable1Validation:
    def test_table1_metatasks_match_the_published_workload(self):
        metatasks = table1_metatasks()
        assert len(metatasks) == 2
        assert len(metatasks[0]) == len(TABLE1_METATASK_A)
        assert len(metatasks[1]) == len(TABLE1_METATASK_B)
        sizes = {item.problem.parameter for metatask in metatasks for item in metatask}
        assert sizes == {1200, 1500, 1800}

    def test_model_error_is_small_with_realistic_noise(self):
        result = run_table1(noise=SpeedNoiseModel(relative_sigma=0.02, period_s=20.0), seed=1)
        assert len(result.rows) == len(TABLE1_METATASK_A) + len(TABLE1_METATASK_B)
        # the paper reports a mean error below 3 %; allow some slack for the
        # synthetic noise model
        assert result.mean_percent_error < 5.0
        assert result.max_percent_error < 20.0

    def test_model_error_is_zero_without_noise(self):
        result = run_table1(noise=None, seed=1)
        assert result.mean_percent_error == pytest.approx(0.0, abs=1e-6)

    def test_render_lists_every_task(self):
        result = run_table1(noise=None, seed=1)
        text = result.render()
        assert "mean % error" in text
        assert text.count("table1-") == len(result.rows)


class TestFig1:
    def test_htm_picks_the_server_with_least_remaining_work(self):
        result = run_fig1(duration_t1=100.0, duration_t2=200.0, duration_t3=100.0, arrival_t3=80.0)
        assert result.chosen_server == "server-1"
        assert result.remaining["server-1 (task1)"] == pytest.approx(20.0)
        assert result.remaining["server-2 (task2)"] == pytest.approx(120.0)
        p1 = result.predictions["server-1"]
        p2 = result.predictions["server-2"]
        # hand-computed: on server-1, task1 (20 s left) shares with task3 and
        # finishes at 120 (perturbation 20), task3 finishes at 200.  On
        # server-2, task3 finishes at 280 and task2 (120 s left) is pushed
        # from 200 to 300 (perturbation 100).
        assert p1.new_task_completion == pytest.approx(200.0)
        assert p1.sum_perturbation == pytest.approx(20.0)
        assert p2.new_task_completion == pytest.approx(280.0)
        assert p2.sum_perturbation == pytest.approx(100.0)

    def test_charts_cover_both_candidates_and_render(self):
        result = run_fig1()
        assert set(result.charts) == {"server-1", "server-2"}
        text = result.render()
        assert "HMCT decision" in text
        assert "task3" in text

    def test_symmetric_scenario_breaks_tie_deterministically(self):
        result = run_fig1(duration_t1=100.0, duration_t2=100.0, arrival_t3=80.0)
        assert result.chosen_server in ("server-1", "server-2")
        assert result.predictions["server-1"].new_task_completion == pytest.approx(
            result.predictions["server-2"].new_task_completion
        )


class TestTableRunner:
    @pytest.fixture(scope="class")
    def small_table(self):
        config = ExperimentConfig(
            scale=ExperimentScale(name="tiny", task_count=50, metatask_count=1, repetitions=1),
            seed=42,
        )
        metatask = matmul_metatask(50, 20.0, rng=__import__("numpy").random.default_rng(42))
        return run_campaign(
            "test-table", "a small table", first_set_platform(), [metatask], config
        )

    def test_columns_cover_every_heuristic_and_row(self, small_table):
        assert set(small_table.columns) == {"mct", "hmct", "mp", "msf"}
        for name, column in small_table.columns.items():
            assert {"completed tasks", "makespan", "sumflow", "maxflow", "maxstretch"} <= set(column)
            if name != "mct":
                assert "tasks finishing sooner than MCT" in column

    def test_shape_htm_heuristics_do_not_lose_to_mct(self, small_table):
        """The central claim of the paper at small scale: the HTM heuristics
        give a sum-flow no worse than MCT's and most tasks finish sooner."""
        mct_sumflow = small_table.value("mct", "sumflow")
        for heuristic in ("hmct", "msf"):
            assert small_table.value(heuristic, "sumflow") <= mct_sumflow * 1.05
        for heuristic in ("hmct", "mp", "msf"):
            sooner = small_table.value(heuristic, "tasks finishing sooner than MCT")
            assert sooner >= 0.5 * small_table.value(heuristic, "completed tasks")

    def test_makespans_are_comparable(self, small_table):
        # At the paper's 500-task scale the makespans are within a few percent
        # of each other; at this 50-task test scale the last-task effect is
        # stronger, so only a loose bound is asserted here (the full-scale
        # check lives in the benchmark harness).
        makespans = [small_table.value(h, "makespan") for h in small_table.columns]
        assert max(makespans) <= min(makespans) * 1.3

    def test_render_and_markdown(self, small_table):
        text = small_table.render()
        markdown = small_table.render_markdown()
        assert "sumflow" in text and "msf" in text
        assert markdown.startswith("| metric |")
        assert small_table.column("msf")["completed tasks"] == 50

    def test_outcomes_keep_raw_runs(self, small_table):
        outcome = small_table.outcomes["msf"]
        assert len(outcome.runs) == 1
        assert outcome.runs[0].completed_count == 50
        assert len(outcome.comparisons) == 1


class TestRegistryAndCli:
    def test_every_paper_artefact_is_registered(self):
        ids = experiment_ids()
        for required in ("table1", "fig1", "table5", "table6", "table7", "table8"):
            assert required in ids
        assert any(i.startswith("ablation-") for i in ids)

    def test_entries_carry_descriptions(self):
        for experiment_id in experiment_ids():
            entry = get_experiment(experiment_id)
            assert entry.description
            assert entry.paper_artefact

    def test_unknown_experiment_raises(self):
        with pytest.raises(ExperimentError):
            get_experiment("table99")

    def test_run_experiment_smoke_scale(self):
        config = ExperimentConfig(
            scale=ExperimentScale(name="tiny", task_count=30, metatask_count=1, repetitions=1)
        )
        result = run_experiment("table5", config)
        assert result.experiment_id == "table5"
        assert result.value("msf", "completed tasks") == 30

    def test_cli_list(self, capsys):
        assert cli.main(["--list"]) == 0
        captured = capsys.readouterr()
        assert "table5" in captured.out
        assert "Table 1" in captured.out

    def test_cli_runs_fig1(self, capsys):
        assert cli.main(["fig1"]) == 0
        assert "HMCT decision" in capsys.readouterr().out

    def test_cli_runs_a_table_at_smoke_scale(self, capsys):
        assert cli.main(["table5", "--scale", "smoke", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "sumflow" in out

    def test_cli_markdown_output(self, capsys):
        assert cli.main(["table5", "--scale", "smoke", "--markdown"]) == 0
        assert "| metric |" in capsys.readouterr().out
