"""Golden regression snapshots of the reproduced Table 5 / Table 6 columns.

These pin the *exact numbers* produced by the seed's simulation pipeline at a
small fixed scale (40 tasks, seed 2003) so that future refactors of the
simulator, the HTM or the campaign engine cannot silently shift the
reproduced tables.  The shape criteria (who wins, by what factor) live in the
benchmark harness; this file is about bit-level reproducibility.

If a change *intentionally* alters the simulation (a model fix, a different
integration order), regenerate the snapshots with::

    PYTHONPATH=src python - <<'EOF'
    from repro.experiments import ExperimentConfig, ExperimentScale, run_experiment
    scale = ExperimentScale(name="golden", task_count=40, metatask_count=1, repetitions=1)
    config = ExperimentConfig(scale=scale, seed=2003)
    for exp in ("table5", "table6"):
        print(exp, run_experiment(exp, config).columns)
    EOF

and say so in the commit message.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig, ExperimentScale, run_experiment

GOLDEN_SCALE = ExperimentScale(name="golden", task_count=40, metatask_count=1, repetitions=1)
GOLDEN_SEED = 2003

#: Columns of the golden small-scale Table 5 run (low arrival rate).
TABLE5_GOLDEN = {
    "mct": {
        "completed tasks": 40.0,
        "makespan": 828.0560994890744,
        "sumflow": 2397.6173862310516,
        "maxflow": 157.9592802736007,
        "maxstretch": 3.9975983047570796,
    },
    "hmct": {
        "completed tasks": 40.0,
        "makespan": 784.2976900978059,
        "sumflow": 1938.8698440685084,
        "maxflow": 100.29779286889892,
        "maxstretch": 2.9315937480724292,
        "tasks finishing sooner than MCT": 22.0,
    },
    "mp": {
        "completed tasks": 40.0,
        "makespan": 893.6479592723184,
        "sumflow": 2842.0321976396244,
        "maxflow": 509.9873963506963,
        "maxstretch": 2.0164163248417295,
        "tasks finishing sooner than MCT": 24.0,
    },
    "msf": {
        "completed tasks": 40.0,
        "makespan": 786.3339776695071,
        "sumflow": 1907.9317310770903,
        "maxflow": 89.69207027247111,
        "maxstretch": 2.2780101234496875,
        "tasks finishing sooner than MCT": 26.0,
    },
}

#: Columns of the golden small-scale Table 6 run (high arrival rate).
TABLE6_GOLDEN = {
    "mct": {
        "completed tasks": 40.0,
        "makespan": 639.441618291458,
        "sumflow": 3227.936204654995,
        "maxflow": 174.7855054745803,
        "maxstretch": 3.86429515735386,
    },
    "hmct": {
        "completed tasks": 40.0,
        "makespan": 633.3641180465306,
        "sumflow": 2828.788683969317,
        "maxflow": 161.05137039079227,
        "maxstretch": 3.4645708950796146,
        "tasks finishing sooner than MCT": 28.0,
    },
    "mp": {
        "completed tasks": 40.0,
        "makespan": 779.1972385394475,
        "sumflow": 2939.7406603005957,
        "maxflow": 519.5763026216357,
        "maxstretch": 2.559970846268657,
        "tasks finishing sooner than MCT": 31.0,
    },
    "msf": {
        "completed tasks": 40.0,
        "makespan": 624.5119593361525,
        "sumflow": 2338.196375832128,
        "maxflow": 105.31951539746332,
        "maxstretch": 2.7020570764683947,
        "tasks finishing sooner than MCT": 32.0,
    },
}


def golden_config(jobs: int = 1) -> ExperimentConfig:
    return ExperimentConfig(scale=GOLDEN_SCALE, seed=GOLDEN_SEED, jobs=jobs)


def assert_matches_golden(table, golden):
    assert set(table.columns) == set(golden)
    for heuristic, expected_column in golden.items():
        column = table.columns[heuristic]
        assert set(column) == set(expected_column), heuristic
        for row, expected in expected_column.items():
            assert column[row] == pytest.approx(expected, rel=1e-9), (heuristic, row)


class TestGoldenTables:
    @pytest.fixture(scope="class")
    def table5(self):
        return run_experiment("table5", golden_config())

    @pytest.fixture(scope="class")
    def table6(self):
        return run_experiment("table6", golden_config())

    def test_table5_columns_match_the_snapshot(self, table5):
        assert_matches_golden(table5, TABLE5_GOLDEN)

    def test_table6_columns_match_the_snapshot(self, table6):
        assert_matches_golden(table6, TABLE6_GOLDEN)

    def test_table5_snapshot_holds_under_parallel_execution(self):
        """The campaign engine cannot shift golden numbers, whatever ``jobs``."""
        table = run_experiment("table5", golden_config(), jobs=4)
        assert_matches_golden(table, TABLE5_GOLDEN)

    def test_goldens_are_pure_views_over_run_records(self, table5, table6):
        """Acceptance criterion of the unified results API: the golden
        columns reproduce unchanged when re-pivoted from the run records."""
        for table, golden in ((table5, TABLE5_GOLDEN), (table6, TABLE6_GOLDEN)):
            assert table.result_set is not None
            assert_matches_golden(table.result_set.pivot(), golden)

    def test_goldens_survive_a_jsonl_round_trip(self, table5, table6, tmp_path):
        """Acceptance criterion: a saved-then-loaded ResultSet renders the
        byte-identical golden table."""
        from repro.results import ResultSet

        for name, table, golden in (
            ("table5", table5, TABLE5_GOLDEN),
            ("table6", table6, TABLE6_GOLDEN),
        ):
            path = tmp_path / f"{name}.jsonl"
            table.result_set.save(path)
            loaded = ResultSet.load(path)
            assert_matches_golden(loaded.pivot(), golden)
            assert loaded.pivot().render() == table.render()

    def test_goldens_preserve_the_papers_ordering_claims(self, table5, table6):
        """Cross-check: the snapshots themselves exhibit the paper's shape
        (HTM heuristics beat MCT on sum-flow; MSF has the lowest max-flow)."""
        for table in (table5, table6):
            mct_sumflow = table.value("mct", "sumflow")
            assert table.value("hmct", "sumflow") < mct_sumflow
            assert table.value("msf", "sumflow") < mct_sumflow
            assert table.value("msf", "maxflow") == min(
                table.value(h, "maxflow") for h in table.columns
            )
