"""Shared configuration of the benchmark harness.

Every table and figure of the paper's evaluation has a benchmark here that
regenerates it (see DESIGN.md §4).  Each benchmark:

* runs the experiment once through ``benchmark.pedantic`` (the experiments are
  deterministic given the seed, so repeated rounds would only measure the
  simulator's wall-clock time, which the micro-benchmarks already cover);
* attaches the reproduced table to ``benchmark.extra_info`` so the values end
  up in the pytest-benchmark report;
* asserts the paper's *shape* criteria (who wins, by roughly what factor).

Set the environment variable ``REPRO_BENCH_SCALE`` to ``bench`` or ``smoke``
to run the table benchmarks at a reduced size (the shape assertions are
calibrated for the default ``full`` scale of 500-task metatasks).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import BENCH_SCALE, ExperimentConfig, FULL_SCALE, SMOKE_SCALE

_SCALES = {"full": FULL_SCALE, "bench": BENCH_SCALE, "smoke": SMOKE_SCALE}


def bench_scale_name() -> str:
    """Scale selected through the REPRO_BENCH_SCALE environment variable."""
    return os.environ.get("REPRO_BENCH_SCALE", "full").lower()


@pytest.fixture(scope="session")
def experiment_config() -> ExperimentConfig:
    """Experiment configuration used by every table benchmark."""
    scale = _SCALES.get(bench_scale_name(), FULL_SCALE)
    return ExperimentConfig(scale=scale, seed=2003)


@pytest.fixture(scope="session")
def full_scale() -> bool:
    """Whether the benchmarks run at the paper's 500-task scale."""
    return bench_scale_name() == "full"


def attach_table(benchmark, table) -> None:
    """Record the reproduced table in the benchmark's extra info."""
    benchmark.extra_info["experiment"] = table.experiment_id
    benchmark.extra_info["columns"] = {
        name: {row: round(float(value), 2) for row, value in column.items()}
        for name, column in table.columns.items()
    }
