"""Benchmark regenerating Table 6 — matrix multiplications, high arrival rate.

Shape criteria (from the paper's Table 6): at this rate MCT and HMCT overload
the fastest servers until they exhaust memory and collapse, so neither
completes the whole metatask (NetSolve's fault tolerance salvages most of
MCT's tasks); MP and MSF complete all 500 tasks; MCT has by far the worst
sum-flow and max-stretch; MSF the best max-flow.
"""

from __future__ import annotations

from conftest import attach_table

from repro.experiments.set1 import run_table6


def bench_table6_matrix_high_rate(benchmark, experiment_config, full_scale):
    """Reproduce Table 6 and check the memory-collapse behaviour."""

    table = benchmark.pedantic(lambda: run_table6(experiment_config), rounds=1, iterations=1)
    attach_table(benchmark, table)

    completed = {h: table.value(h, "completed tasks") for h in table.columns}
    sumflow = {h: table.value(h, "sumflow") for h in table.columns}
    maxflow = {h: table.value(h, "maxflow") for h in table.columns}
    maxstretch = {h: table.value(h, "maxstretch") for h in table.columns}

    collapses = {
        name: sum(
            sum(run.server_stats[server]["collapses"] for server in run.server_stats)
            for run in outcome.runs
        )
        for name, outcome in table.outcomes.items()
    }
    benchmark.extra_info["collapses"] = collapses

    total = experiment_config.scale.task_count
    # MP and MSF never overload a server into collapse: they complete everything.
    assert completed["mp"] == total
    assert completed["msf"] == total
    assert collapses["mp"] == 0
    assert collapses["msf"] == 0

    if full_scale:
        # MCT and HMCT trigger collapses on the fastest servers and lose tasks.
        assert collapses["mct"] >= 1
        assert collapses["hmct"] >= 1
        assert completed["mct"] < total
        assert completed["hmct"] < total
        # MCT pays the largest sum-flow and the worst stretch.
        assert sumflow["mct"] == max(sumflow.values())
        assert maxstretch["mct"] == max(maxstretch.values())
        assert maxstretch["mp"] == min(maxstretch.values())
        # MSF keeps the smallest max-flow.
        assert maxflow["msf"] == min(maxflow.values())
        # The HTM heuristics still make most tasks finish sooner than MCT.
        for heuristic in ("mp", "msf"):
            sooner = table.value(heuristic, "tasks finishing sooner than MCT")
            assert sooner >= 0.6 * completed["mct"]
