"""Benchmark regenerating Table 7 — waste-cpu tasks, low arrival rate.

Shape criteria (from the paper's Table 7): every task completes (waste-cpu
needs no memory); the HTM heuristics improve the sum-flow over MCT; MP gives
the best max-stretch and the largest max-flow; roughly two thirds of the
tasks finish sooner than under MCT.
"""

from __future__ import annotations

from conftest import attach_table

from repro.experiments.set2 import run_table7


def bench_table7_wastecpu_low_rate(benchmark, experiment_config, full_scale):
    """Reproduce Table 7 (three metatasks, means) and check the ordering."""

    table = benchmark.pedantic(lambda: run_table7(experiment_config), rounds=1, iterations=1)
    attach_table(benchmark, table)

    completed = {h: table.value(h, "completed tasks") for h in table.columns}
    sumflow = {h: table.value(h, "sumflow") for h in table.columns}
    maxflow = {h: table.value(h, "maxflow") for h in table.columns}
    maxstretch = {h: table.value(h, "maxstretch") for h in table.columns}
    makespan = {h: table.value(h, "makespan") for h in table.columns}

    # "All the tasks of all the metatasks of this set of experiments have been
    # submitted, accepted and computed."
    total = experiment_config.scale.task_count
    for heuristic in ("mct", "hmct", "mp", "msf"):
        assert completed[heuristic] == total

    assert max(makespan.values()) <= min(makespan.values()) * (1.03 if full_scale else 1.3)

    if full_scale:
        # HTM-based heuristics do not lose to the stale-information MCT.
        assert sumflow["hmct"] <= sumflow["mct"]
        assert sumflow["msf"] <= sumflow["hmct"]
        assert sumflow["mp"] <= sumflow["mct"]
        # MP: best stretch, largest max-flow; MSF: smallest max-flow.
        assert maxstretch["mp"] == min(maxstretch.values())
        assert maxstretch["mct"] == max(maxstretch.values())
        assert maxflow["mp"] == max(maxflow.values())
        assert maxflow["msf"] == min(maxflow.values())
        for heuristic in ("hmct", "mp", "msf"):
            sooner = table.value(heuristic, "tasks finishing sooner than MCT")
            assert sooner >= 0.55 * total
