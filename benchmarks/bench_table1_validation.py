"""Benchmark regenerating Table 1 — validation of the shared-CPU model.

Paper reference: "We have shown small variations between the simulated and
real execution dates (a mean of less than 3% with regard to the duration)."
"""

from __future__ import annotations

from repro.experiments.validation import run_table1
from repro.platform.faults import SpeedNoiseModel


def bench_table1_model_validation(benchmark):
    """Real vs HTM-simulated completion dates on a noisy server."""

    result = benchmark.pedantic(
        lambda: run_table1(noise=SpeedNoiseModel(relative_sigma=0.02, period_s=20.0), seed=2003),
        rounds=1,
        iterations=1,
    )

    benchmark.extra_info["mean_percent_error"] = round(result.mean_percent_error, 3)
    benchmark.extra_info["max_percent_error"] = round(result.max_percent_error, 3)
    benchmark.extra_info["rows"] = [
        {
            "task": row.task_id,
            "arrival": round(row.arrival, 2),
            "size": row.matrix_size,
            "real": round(row.real_completion, 2),
            "simulated": round(row.simulated_completion, 2),
            "percent_error": round(row.percent_error, 2),
        }
        for row in result.rows
    ]

    # Shape criterion: the HTM's model error stays within a few percent, as in
    # the paper (Table 1 reports a mean below 3 %).
    assert result.mean_percent_error < 4.0
    assert result.max_percent_error < 15.0
    assert len(result.rows) == 12  # 3 + 9 tasks, as in Table 1


def bench_table1_noiseless_sanity(benchmark):
    """Without platform noise the HTM matches the ground truth exactly."""

    result = benchmark.pedantic(lambda: run_table1(noise=None, seed=1), rounds=1, iterations=1)
    benchmark.extra_info["mean_percent_error"] = round(result.mean_percent_error, 6)
    assert result.mean_percent_error < 1e-6
