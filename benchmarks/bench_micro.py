"""Micro-benchmarks of the library's hot paths.

Unlike the table benchmarks (which run an experiment once and check its
shape), these measure the wall-clock performance of the building blocks the
experiments hammer: the processor-sharing queue, the fluid network, HTM
predictions and a full middleware run.  They are ordinary pytest-benchmark
timings (multiple rounds) and carry no shape assertion.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.htm import HistoricalTraceManager
from repro.platform.middleware import GridMiddleware, MiddlewareConfig
from repro.simulation import fluid, fluid_legacy
from repro.simulation.fluid import FluidNetwork, FluidStage, ProcessorSharingQueue
from repro.workload.problems import matmul_problem
from repro.workload.tasks import Task
from repro.workload.testbed import first_set_platform, matmul_metatask


def bench_psq_thousand_jobs(benchmark):
    """Advance a processor-sharing queue through 1000 staggered jobs."""

    def run():
        queue = ProcessorSharingQueue(capacity=1.0)
        completions = 0
        for i in range(1000):
            completions += len(queue.advance_to(float(i)))
            queue.add(i, 5.0 + (i % 7), now=float(i))
        completions += len(queue.advance_to(10_000.0))
        return completions

    assert benchmark(run) == 1000


def bench_fluid_network_three_phase_tasks(benchmark):
    """Run 300 three-phase tasks through a server-like fluid network."""

    def run():
        network = FluidNetwork({"net_in": 1.0, "cpu": 1.0, "net_out": 1.0})
        for i in range(300):
            network.add_task(
                i,
                arrival=i * 2.0,
                stages=(
                    FluidStage("net_in", 1.0),
                    FluidStage("cpu", 10.0 + (i % 5)),
                    FluidStage("net_out", 0.5),
                ),
            )
        return len(network.run_to_completion())

    assert benchmark(run) == 300


# --------------------------------------------------------------------------- #
# Large-N asymptotics: the virtual-time core vs the preserved legacy core.
#
# These are the first entries of the BENCH trajectory (CI runs them with
# --benchmark-json and uploads the artifact).  The legacy core rescans every
# job of every queue at every event — O(E·R·J) per run — while the
# virtual-time core schedules through heaps in O((E + mutations)·log J), so
# the gap widens with N; the acceptance bar for this PR is >= 3x at N = 2000.
# --------------------------------------------------------------------------- #
LARGE_N = 2000


def _run_large_n_network(core, n: int = LARGE_N) -> int:
    """Saturated three-phase workload: arrivals outpace service, so the CPU
    queue keeps growing and the per-event job count actually reaches O(N)."""
    network = core.FluidNetwork({"net_in": 1.0, "cpu": 1.0, "net_out": 1.0})
    for i in range(n):
        network.add_task(
            i,
            arrival=i * 2.0,
            stages=(
                core.FluidStage("net_in", 1.0),
                core.FluidStage("cpu", 10.0 + (i % 5)),
                core.FluidStage("net_out", 0.5),
            ),
        )
    return len(network.run_to_completion())


def bench_fluid_network_large_n_2000_tasks(benchmark):
    """2000 three-phase tasks through the virtual-time fluid core."""
    assert benchmark(lambda: _run_large_n_network(fluid)) == LARGE_N


def bench_fluid_network_large_n_2000_tasks_legacy_core(benchmark):
    """The same 2000-task workload on the pre-virtual-time (legacy) core."""
    assert benchmark(lambda: _run_large_n_network(fluid_legacy)) == LARGE_N


def _loaded_htm_large_n(core, n: int = LARGE_N) -> HistoricalTraceManager:
    """An HTM trace carrying ``n`` committed tasks, backed by a chosen core.

    The legacy arm swaps the trace's network for a legacy ``FluidNetwork``
    before committing (the trace API is duck-typed), so both arms measure the
    same what-if simulation on different cores.  Incremental caching is off:
    this benchmark isolates the copy-and-rerun cost that every candidate
    server of every scheduling decision pays.
    """
    htm = HistoricalTraceManager(incremental_predictions=False)
    htm.register_server("artimon", lambda p: p.costs_on("artimon"))
    trace = htm.trace("artimon")
    trace.network = core.FluidNetwork(
        {"net_in": 1.0, "cpu": 1.0, "net_out": 1.0}, per_job_caps={"cpu": 1.0}
    )
    for i in range(n):
        htm.commit("artimon", Task(f"t{i}", matmul_problem(1500), arrival=0.0), now=float(i))
    return htm


def bench_htm_predict_large_n_2000_tasks(benchmark):
    """One what-if prediction against a 2000-task trace (virtual-time core)."""
    htm = _loaded_htm_large_n(fluid)
    new_task = Task("new", matmul_problem(1800), arrival=float(LARGE_N))

    prediction = benchmark(lambda: htm.predict("artimon", new_task, now=float(LARGE_N)))
    assert prediction.new_task_completion > float(LARGE_N)


def bench_htm_predict_large_n_2000_tasks_legacy_core(benchmark):
    """The same 2000-task prediction on the pre-virtual-time (legacy) core."""
    htm = _loaded_htm_large_n(fluid_legacy)
    new_task = Task("new", matmul_problem(1800), arrival=float(LARGE_N))

    prediction = benchmark(lambda: htm.predict("artimon", new_task, now=float(LARGE_N)))
    assert prediction.new_task_completion > float(LARGE_N)


def bench_large_n_speedup_guard():
    """Hard floor on the asymptotic win: the virtual-time core must complete
    the large-N workload at least 3x faster than the legacy core (the
    observed ratio is an order of magnitude larger; 3x keeps CI noise-proof).

    This is a plain assertion, not a pytest-benchmark timing: it needs no
    benchmark fixture and runs in CI's dedicated large-N step
    (``-k 'large_n or speedup'``), which is the only job that selects it.
    """
    start = time.perf_counter()
    assert _run_large_n_network(fluid) == LARGE_N
    new_core = time.perf_counter() - start
    start = time.perf_counter()
    assert _run_large_n_network(fluid_legacy) == LARGE_N
    legacy_core = time.perf_counter() - start
    assert legacy_core >= 3.0 * new_core, (
        f"virtual-time core only {legacy_core / new_core:.1f}x faster than legacy"
    )


def _loaded_htm(incremental: bool) -> HistoricalTraceManager:
    htm = HistoricalTraceManager(incremental_predictions=incremental)
    htm.register_server("artimon", lambda p: p.costs_on("artimon"))
    for i in range(50):
        htm.commit("artimon", Task(f"t{i}", matmul_problem(1500), arrival=0.0), now=float(i))
    return htm


def bench_htm_prediction_under_load(benchmark):
    """One HTM what-if prediction on a server already loaded with 50 tasks.

    Uses the default incremental mode: the "without" baseline is served from
    the trace cache, so only the "with the new task" simulation runs per call.
    Compare with :func:`bench_htm_prediction_under_load_legacy`.
    """
    htm = _loaded_htm(incremental=True)
    new_task = Task("new", matmul_problem(1800), arrival=50.0)

    prediction = benchmark(lambda: htm.predict("artimon", new_task, now=50.0))
    assert prediction.new_task_completion > 50.0


def bench_htm_prediction_under_load_legacy(benchmark):
    """The same prediction with the legacy copy-and-rerun baseline path."""
    htm = _loaded_htm(incremental=False)
    new_task = Task("new", matmul_problem(1800), arrival=50.0)

    prediction = benchmark(lambda: htm.predict("artimon", new_task, now=50.0))
    assert prediction.new_task_completion > 50.0


def bench_full_middleware_run_msf_100_tasks(benchmark):
    """End-to-end middleware run: 100 matrix tasks scheduled by MSF."""
    metatask = matmul_metatask(count=100, mean_interarrival=20.0, rng=np.random.default_rng(1))

    def run():
        middleware = GridMiddleware(
            first_set_platform(), "msf", config=MiddlewareConfig(seed=1)
        )
        return middleware.run(metatask).completed_count

    assert benchmark(run) == 100


def bench_full_middleware_run_mct_100_tasks(benchmark):
    """End-to-end middleware run: the MCT baseline on the same workload."""
    metatask = matmul_metatask(count=100, mean_interarrival=20.0, rng=np.random.default_rng(1))

    def run():
        middleware = GridMiddleware(
            first_set_platform(), "mct", config=MiddlewareConfig(seed=1)
        )
        return middleware.run(metatask).completed_count

    assert benchmark(run) == 100


def _campaign_run(jobs: int) -> int:
    """One 4-cell table campaign (all heuristics, 60 tasks) at a given parallelism."""
    from repro.experiments import ExperimentConfig, ExperimentScale, run_campaign

    config = ExperimentConfig(
        scale=ExperimentScale(name="bench-campaign", task_count=60, metatask_count=1),
        seed=1,
    )
    metatask = matmul_metatask(count=60, mean_interarrival=20.0, rng=np.random.default_rng(1))
    table = run_campaign(
        "bench", "bench", first_set_platform(), [metatask], config, jobs=jobs
    )
    return int(table.value("msf", "completed tasks"))


def bench_campaign_four_heuristics_serial(benchmark):
    """The campaign of :func:`_campaign_run` on the serial executor."""
    assert benchmark(lambda: _campaign_run(jobs=1)) == 60


def bench_campaign_four_heuristics_jobs4(benchmark):
    """The same campaign on a 4-worker process pool (identical table).

    Compared with the serial variant this measures the executor's scaling
    behaviour: on a multi-core machine the four cells run concurrently; on a
    single-core box it exposes the pool's fork/pickle overhead instead.
    """
    assert benchmark(lambda: _campaign_run(jobs=4)) == 60
