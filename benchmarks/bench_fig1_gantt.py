"""Benchmark regenerating the Fig. 1 / Section 2.3 "usefulness of the HTM" scenario."""

from __future__ import annotations

from repro.experiments.fig1 import run_fig1


def bench_fig1_htm_usefulness(benchmark):
    """Two identical servers, a third task at t=80: the HTM picks the right one."""

    result = benchmark.pedantic(
        lambda: run_fig1(duration_t1=100.0, duration_t2=200.0, duration_t3=100.0, arrival_t3=80.0),
        rounds=1,
        iterations=1,
    )

    p1 = result.predictions["server-1"]
    p2 = result.predictions["server-2"]
    benchmark.extra_info["chosen_server"] = result.chosen_server
    benchmark.extra_info["completion_on_server_1"] = round(p1.new_task_completion, 2)
    benchmark.extra_info["completion_on_server_2"] = round(p2.new_task_completion, 2)
    benchmark.extra_info["perturbation_on_server_1"] = round(p1.sum_perturbation, 2)
    benchmark.extra_info["perturbation_on_server_2"] = round(p2.sum_perturbation, 2)

    # Shape criteria: the HTM knows the remaining durations (20 s vs 120 s) and
    # therefore maps the new task on server-1, with a strictly smaller
    # completion date and a strictly smaller perturbation.
    assert result.chosen_server == "server-1"
    assert p1.new_task_completion < p2.new_task_completion
    assert p1.sum_perturbation < p2.sum_perturbation
    # Both Gantt charts exist and cover the three tasks of the figure.
    assert {row.task_id for row in result.charts["server-1"]} == {"task1", "task3"}
    assert {row.task_id for row in result.charts["server-2"]} == {"task2", "task3"}
