"""Benchmark regenerating Table 5 — matrix multiplications, low arrival rate.

Shape criteria (from the paper's Table 5):

* every heuristic completes the whole 500-task metatask;
* the makespans are within a few percent of each other;
* ``sumflow(MSF) <= sumflow(HMCT) <= sumflow(MCT)`` and MSF beats MP;
* MP has the largest max-flow (it parks tasks on slow but idle servers) and
  the smallest max-stretch; MSF has the smallest max-flow;
* well over half of the tasks finish sooner than under NetSolve's MCT.
"""

from __future__ import annotations

from conftest import attach_table

from repro.experiments.set1 import run_table5


def bench_table5_matrix_low_rate(benchmark, experiment_config, full_scale):
    """Reproduce Table 5 and check the published ordering of the metrics."""

    table = benchmark.pedantic(lambda: run_table5(experiment_config), rounds=1, iterations=1)
    attach_table(benchmark, table)

    completed = {h: table.value(h, "completed tasks") for h in table.columns}
    sumflow = {h: table.value(h, "sumflow") for h in table.columns}
    maxflow = {h: table.value(h, "maxflow") for h in table.columns}
    maxstretch = {h: table.value(h, "maxstretch") for h in table.columns}
    makespan = {h: table.value(h, "makespan") for h in table.columns}

    # Every task completes at the low rate.
    total = experiment_config.scale.task_count
    for heuristic in ("mct", "hmct", "mp", "msf"):
        assert completed[heuristic] == total

    # Makespans are essentially identical ("the makespan value is strongly
    # dependent on the latest task arrival").
    assert max(makespan.values()) <= min(makespan.values()) * (1.03 if full_scale else 1.3)

    if full_scale:
        # The HTM heuristics beat the load-report MCT on sum-flow.
        assert sumflow["msf"] <= sumflow["hmct"] <= sumflow["mct"] * 1.02
        assert sumflow["msf"] < sumflow["mp"]
        # MP has the largest max-flow, MSF the smallest; MP the best stretch.
        assert maxflow["mp"] == max(maxflow.values())
        assert maxflow["msf"] == min(maxflow.values())
        assert maxstretch["mp"] == min(maxstretch.values())
        # Most tasks finish sooner than under MCT.
        for heuristic in ("hmct", "mp", "msf"):
            sooner = table.value(heuristic, "tasks finishing sooner than MCT")
            assert sooner >= 0.55 * total
