"""Benchmarks of the scenario subsystem.

Two layers:

* generation cost — drawing non-homogeneous arrival streams (thinning and
  MMPP are per-candidate Python loops, so their throughput matters at
  500-task × many-metatask scale);
* end-to-end cost — one scenario campaign and a two-scenario sweep at a
  reduced size, the numbers CI tracks next to ``bench-large-n.json`` to
  extend the perf trajectory (see ``bench-scenarios.json`` in the workflow).

Shape assertions keep the benchmarks honest: byte-identical ``jobs=1`` vs
``jobs=2`` sweeps, and every scenario completing tasks.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import ExperimentConfig, ExperimentScale
from repro.scenarios import run_scenario, run_sweep
from repro.workload.arrivals import (
    DiurnalArrivals,
    MarkovModulatedArrivals,
    PoissonArrivals,
)

#: Small-but-not-trivial scale: big enough that campaign overheads are
#: negligible, small enough for CI smoke runs.
_BENCH_SCENARIO_SCALE = ExperimentScale(
    name="bench-scenario", task_count=60, metatask_count=1, repetitions=1
)


def _config(seed: int = 2003) -> ExperimentConfig:
    return ExperimentConfig(scale=_BENCH_SCENARIO_SCALE, seed=seed)


def bench_inhomogeneous_thinning_10k(benchmark):
    """Draw 10 000 diurnal arrivals by thinning."""
    process = DiurnalArrivals(mean_interarrival=5.0, amplitude=0.8, period_s=3600.0)

    def run():
        return len(process.dates(10_000, np.random.default_rng(1)))

    assert benchmark(run) == 10_000


def bench_mmpp_10k(benchmark):
    """Draw 10 000 Markov-modulated arrivals."""
    process = MarkovModulatedArrivals(
        burst_interarrival=2.0, quiet_interarrival=30.0, mean_burst_s=60.0, mean_quiet_s=120.0
    )

    def run():
        return len(process.dates(10_000, np.random.default_rng(2)))

    assert benchmark(run) == 10_000


def bench_homogeneous_poisson_10k_reference(benchmark):
    """The vectorised homogeneous baseline the loops above are compared to."""
    process = PoissonArrivals(5.0)

    def run():
        return len(process.dates(10_000, np.random.default_rng(3)))

    assert benchmark(run) == 10_000


def bench_scenario_burst_storm(benchmark):
    """One full burst-storm campaign (4 heuristics × 60 tasks)."""
    table = benchmark.pedantic(
        lambda: run_scenario("burst-storm", config=_config()), rounds=1, iterations=1
    )
    benchmark.extra_info["columns"] = {
        name: {k: round(v, 2) for k, v in column.items()}
        for name, column in table.columns.items()
    }
    assert all(table.value(h, "completed tasks") > 0 for h in table.columns)


def bench_scenario_sweep_two_regimes(benchmark):
    """A two-scenario sweep, asserting jobs=1 vs jobs=2 byte-identity."""
    names = ["paper-low-rate", "flaky-servers"]

    def run():
        return run_sweep(names, config=_config(), jobs=1)

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    parallel = run_sweep(names, config=_config(), jobs=2)
    assert sweep.render() == parallel.render()
    benchmark.extra_info["best_per_scenario"] = sweep.best_per_scenario()
