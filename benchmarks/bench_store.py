"""Benchmarks of the campaign store: cache speedup and journaling overhead.

Three questions, one bench each:

* how much does journaling cost a *cold* sweep?  (``bench_store_cold_sweep``
  measures the store-attached run and reports the storeless baseline and the
  overhead ratio in ``extra_info`` — the target is <5 % on cold runs);
* how fast is a *warm* sweep?  (``bench_store_warm_sweep`` replays the same
  sweep against a populated store: zero simulations, pure journal reads);
* what does one durable journal append cost?  (``bench_journal_append``, the
  per-cell WAL price paid while a campaign streams results).

Shape assertions keep the benches honest: the warm sweep must recover every
cell from the journal and render identically to the cold run.
"""

from __future__ import annotations

import shutil
import tempfile
import time

from repro.experiments.config import ExperimentConfig, ExperimentScale
from repro.results import RunRecord
from repro.scenarios import run_sweep
from repro.store import CampaignStore, CellEntry, CellKey
from repro.store.journal import Journal

#: Same reduced size as bench_scenarios: campaign overheads negligible,
#: CI-smoke friendly.
_BENCH_STORE_SCALE = ExperimentScale(
    name="bench-store", task_count=60, metatask_count=1, repetitions=1
)

_SWEEP = ["paper-low-rate", "flaky-servers"]


def _config() -> ExperimentConfig:
    return ExperimentConfig(scale=_BENCH_STORE_SCALE, seed=2003)


def bench_store_cold_sweep(benchmark):
    """A cold two-scenario sweep with the journal attached (vs storeless)."""
    # Storeless baseline, measured once alongside the benched run.
    t0 = time.perf_counter()
    baseline = run_sweep(_SWEEP, config=_config())
    baseline_s = time.perf_counter() - t0

    state = {}

    def setup():
        state["dir"] = tempfile.mkdtemp(prefix="repro-bench-store-")

    def run():
        try:
            return run_sweep(_SWEEP, config=_config(), store=state["dir"])
        finally:
            shutil.rmtree(state["dir"], ignore_errors=True)

    cold = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    assert cold.render() == baseline.render()
    cold_s = benchmark.stats.stats.mean
    benchmark.extra_info["baseline_no_store_s"] = round(baseline_s, 4)
    benchmark.extra_info["journal_overhead_ratio"] = round(cold_s / baseline_s, 4)
    # The WAL must stay in the noise next to the simulations (<5 % target;
    # the assert only catches pathological regressions, not CI jitter).
    assert cold_s < 2.0 * baseline_s, (
        f"journaling made the cold sweep {cold_s / baseline_s:.2f}x slower"
    )


def bench_store_warm_sweep(benchmark):
    """The same sweep against a fully populated store: zero simulations."""
    store_dir = tempfile.mkdtemp(prefix="repro-bench-store-")
    try:
        cold = run_sweep(_SWEEP, config=_config(), store=store_dir)

        def run():
            return run_sweep(_SWEEP, config=_config(), store=store_dir)

        warm = benchmark.pedantic(run, rounds=3, iterations=1)
        assert warm.render() == cold.render()
        # Every cell must have come from the journal.
        store = CampaignStore(store_dir)
        assert len(store) == len(cold.result_set)
        benchmark.extra_info["cells_recovered_per_run"] = len(cold.result_set)
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)


def bench_journal_append(benchmark):
    """One durable (flush + fsync) journal append — the per-cell WAL price."""
    directory = tempfile.mkdtemp(prefix="repro-bench-journal-")
    key = CellKey(
        config_hash="bench", experiment_id="bench", heuristic="mct",
        metatask_index=0, repetition=0, seed=2003,
    )
    entry = CellEntry(
        key=key,
        record=RunRecord(
            experiment_id="bench", heuristic="mct", metatask_index=0,
            repetition=0, seed=2003, config_hash="bench",
            metrics={"n_completed": 60.0, "sum_flow": 1234.5678},
        ),
        completions={f"task-{i:04d}": float(i) * 1.25 for i in range(60)},
    ).to_json_dict()
    journal = Journal(f"{directory}/journal.jsonl")
    try:
        benchmark(journal.append, entry)
        journal.close()
        entries, torn = journal.recover()
        assert not torn and len(entries) >= 1
    finally:
        journal.close()
        shutil.rmtree(directory, ignore_errors=True)
