"""Ablation benchmarks.

These quantify the design choices DESIGN.md calls out and the paper's two
future-work items.  They run at a reduced scale (the smoke scale of the
experiment harness) because they sweep several configurations each.
"""

from __future__ import annotations

from conftest import attach_table

from repro.experiments.ablations import (
    ablation_arrival_rate_sweep,
    ablation_communication_model,
    ablation_dual_cpu,
    ablation_htm_resync,
    ablation_memory_aware_msf,
    ablation_monitor_period,
)


def bench_ablation_monitor_period(benchmark):
    """Stale load reports: MCT degrades as the monitor period grows, MSF does not."""
    table = benchmark.pedantic(ablation_monitor_period, rounds=1, iterations=1)
    attach_table(benchmark, table)
    msf_5 = table.columns["msf @ 5s"]["sumflow"]
    msf_120 = table.columns["msf @ 120s"]["sumflow"]
    # MSF never reads the load reports, so the report period cannot change its
    # schedule; MCT's sum-flow moves with the period (in either direction at
    # this reduced scale) but never beats MSF.
    assert abs(msf_120 - msf_5) <= 0.05 * msf_5
    for period in ("5", "30", "120"):
        assert (
            table.columns[f"msf @ {period}s"]["sumflow"]
            <= table.columns[f"mct @ {period}s"]["sumflow"] * 1.02
        )


def bench_ablation_htm_resync(benchmark):
    """Re-anchoring the HTM on completion messages never hurts (future work #2)."""
    table = benchmark.pedantic(ablation_htm_resync, rounds=1, iterations=1)
    attach_table(benchmark, table)
    for heuristic in ("hmct", "msf"):
        with_resync = table.columns[f"{heuristic} (resync)"]["sumflow"]
        without = table.columns[f"{heuristic} (no resync)"]["sumflow"]
        assert with_resync <= without * 1.10


def bench_ablation_memory_aware_msf(benchmark):
    """Memory-aware MSF (future work #1) completes at least as many tasks as HMCT."""
    table = benchmark.pedantic(ablation_memory_aware_msf, rounds=1, iterations=1)
    attach_table(benchmark, table)
    aware = table.columns["msf (memory aware)"]
    hmct = table.columns["hmct"]
    assert aware["completed tasks"] >= hmct["completed tasks"]
    assert aware["server collapses"] <= hmct["server collapses"]


def bench_ablation_communication_model(benchmark):
    """Dropping the transfer phases from the HTM keeps the heuristics functional."""
    table = benchmark.pedantic(ablation_communication_model, rounds=1, iterations=1)
    attach_table(benchmark, table)
    for heuristic in ("hmct", "msf"):
        full = table.columns[f"{heuristic} (3-phase)"]["sumflow"]
        compute_only = table.columns[f"{heuristic} (compute-only)"]["sumflow"]
        # The compute-only model loses little on this workload (transfers are
        # short), but it must not diverge wildly either.
        assert compute_only <= full * 1.25


def bench_ablation_dual_cpu(benchmark):
    """Dual-CPU Xeons lower the contention for every heuristic (Table 2 ambiguity)."""
    table = benchmark.pedantic(ablation_dual_cpu, rounds=1, iterations=1)
    attach_table(benchmark, table)
    for heuristic in ("mct", "mp", "msf"):
        single = table.columns[f"{heuristic} (single-CPU xeons)"]["sumflow"]
        dual = table.columns[f"{heuristic} (dual-CPU xeons)"]["sumflow"]
        assert dual <= single


def bench_ablation_arrival_rate_sweep(benchmark):
    """The advantage of MSF over MCT grows with the arrival rate."""
    table = benchmark.pedantic(
        lambda: ablation_arrival_rate_sweep(rates_s=(30.0, 20.0, 15.0)), rounds=1, iterations=1
    )
    attach_table(benchmark, table)
    gain_low = table.columns["mct"]["sumflow @ 30s"] - table.columns["msf"]["sumflow @ 30s"]
    gain_high = table.columns["mct"]["sumflow @ 15s"] - table.columns["msf"]["sumflow @ 15s"]
    assert gain_high >= gain_low
    # MSF never loses to MCT at any swept rate.
    for rate in ("30", "20", "15"):
        assert (
            table.columns["msf"][f"sumflow @ {rate}s"]
            <= table.columns["mct"][f"sumflow @ {rate}s"] * 1.02
        )
