"""Benchmark regenerating Table 8 — waste-cpu tasks, high arrival rate.

Shape criteria (from the paper's Table 8): all tasks still complete; the
contention is higher, so the perturbation-aware heuristics pull further
ahead — MP and MSF have clearly lower sum-flows than MCT and HMCT, MSF the
lowest max-flow, MP the lowest max-stretch, and the number of tasks finishing
sooner than MCT grows towards 80 % for MP and MSF.
"""

from __future__ import annotations

from conftest import attach_table

from repro.experiments.set2 import run_table8


def bench_table8_wastecpu_high_rate(benchmark, experiment_config, full_scale):
    """Reproduce Table 8 (three metatasks, means) and check the ordering."""

    table = benchmark.pedantic(lambda: run_table8(experiment_config), rounds=1, iterations=1)
    attach_table(benchmark, table)

    completed = {h: table.value(h, "completed tasks") for h in table.columns}
    sumflow = {h: table.value(h, "sumflow") for h in table.columns}
    maxflow = {h: table.value(h, "maxflow") for h in table.columns}
    maxstretch = {h: table.value(h, "maxstretch") for h in table.columns}

    total = experiment_config.scale.task_count
    for heuristic in ("mct", "hmct", "mp", "msf"):
        assert completed[heuristic] == total

    if full_scale:
        # The gain of the perturbation-based heuristics grows with the rate.
        assert sumflow["mct"] == max(sumflow.values())
        assert sumflow["mp"] < sumflow["hmct"]
        assert sumflow["msf"] < sumflow["hmct"]
        assert sumflow["msf"] < 0.9 * sumflow["mct"]
        # MSF: smallest max-flow; MP: smallest max-stretch.
        assert maxflow["msf"] == min(maxflow.values())
        assert maxstretch["mp"] == min(maxstretch.values())
        # Quality of service: MP and MSF make ~80 % of the tasks finish sooner.
        for heuristic in ("mp", "msf"):
            sooner = table.value(heuristic, "tasks finishing sooner than MCT")
            assert sooner >= 0.7 * total
        assert table.value("hmct", "tasks finishing sooner than MCT") >= 0.5 * total
