"""Benchmarks of the observability subsystem: what does watching cost?

Three questions, one bench each:

* what does a campaign cost with tracing *off*?  (``bench_trace_off_campaign``
  — the baseline every overhead claim is anchored to; the dormant hooks are
  ``tracer is None`` checks and plain-int counter bumps);
* what does the full trace bus cost when *on*?  (``bench_trace_on_campaign``
  measures the traced run and reports the off/on ratio in ``extra_info`` —
  tracing is opt-in, so a 10-30 % hit is acceptable there, but the records
  must stay byte-identical to the untraced run);
* what does one event emission cost?  (``bench_tracer_emit``, the unit price
  paid per dispatch/report/completion while the bus is on).

Shape assertions keep the benches honest: the traced campaign must produce
the same rendered table as the untraced one, and its trace must actually
contain events.
"""

from __future__ import annotations

from repro.experiments.campaign import run_campaign
from repro.experiments.config import ExperimentConfig, ExperimentScale
from repro.obs import Tracer
from repro.scenarios.scenario import (
    build_scenario_metatasks,
    get_scenario,
    scenario_config,
)

#: Same reduced size as bench_scenarios: campaign overheads negligible,
#: CI-smoke friendly.
_BENCH_PROFILE_SCALE = ExperimentScale(
    name="bench-profile", task_count=60, metatask_count=1, repetitions=1
)

_SCENARIO = "diurnal-week"


def _campaign_kwargs():
    scenario = get_scenario(_SCENARIO)
    config = scenario_config(
        scenario, ExperimentConfig(scale=_BENCH_PROFILE_SCALE, seed=2003)
    )
    return {
        "experiment_id": f"scenario-{scenario.name}",
        "title": f"bench {scenario.name}",
        "platform": scenario.platform_factory(),
        "metatasks": build_scenario_metatasks(scenario, config),
        "config": config,
        "jobs": 1,
    }


def bench_trace_off_campaign(benchmark):
    """The untraced campaign: dormant hooks must stay in the noise."""
    table = benchmark.pedantic(
        lambda: run_campaign(**_campaign_kwargs()), rounds=3, iterations=1
    )
    assert len(table.result_set) > 0
    assert table.traces == []


def bench_trace_on_campaign(benchmark):
    """The same campaign with the trace bus on (records must not change)."""
    baseline = run_campaign(**_campaign_kwargs())

    def run():
        return run_campaign(**_campaign_kwargs(), trace=True)

    traced = benchmark.pedantic(run, rounds=3, iterations=1)
    # Tracing is observation only: same records, same table.
    assert traced.render() == baseline.render()
    events = sum(len(cell.events) for cell in traced.traces)
    assert events > 0, "traced campaign produced no events"
    benchmark.extra_info["events_per_run"] = events
    benchmark.extra_info["cells_per_run"] = len(traced.traces)


def bench_tracer_emit(benchmark):
    """One event emission on a bounded ring — the per-event price when on."""
    tracer = Tracer(limit=10_000)
    benchmark(
        tracer.emit,
        12.5,
        "task.dispatch",
        task="task-0001",
        server="adonis",
        heuristic="mct",
        estimated=13.75,
    )
    assert len(tracer.events()) > 0
