"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file only
exists so that the package can be installed in editable mode on minimal,
offline environments where the ``wheel`` package (required by the PEP 517
editable path of older setuptools) is unavailable::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'New Dynamic Heuristics in the Client-Agent-Server Model' "
        "(Caniou & Jeannot, HCW'03)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
            "repro-experiment=repro.cli:main",
        ]
    },
)
