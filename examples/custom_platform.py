#!/usr/bin/env python
"""Using the library beyond the paper's testbed: a custom synthetic platform.

The problem catalogue of Tables 3 and 4 carries measured costs for the six
LORIA machines only; for any other machine the library falls back to a
speed/bandwidth cost model.  This example builds a synthetic heterogeneous
platform (eight servers, two of them dual-CPU), defines a custom problem, and
compares the heuristics on it — demonstrating that nothing in the core is
tied to the original testbed.

Run with::

    python examples/custom_platform.py
"""

from __future__ import annotations

import numpy as np

from repro import GridMiddleware, MiddlewareConfig
from repro.metrics import render_table, summarize, tasks_finishing_sooner
from repro.platform.spec import MachineRole, MachineSpec, PlatformSpec
from repro.workload.arrivals import PoissonArrivals
from repro.workload.metatask import generate_metatask
from repro.workload.problems import ProblemCatalogue, ProblemSpec

HEURISTICS = ("mct", "hmct", "mp", "msf")


def build_platform() -> PlatformSpec:
    machines = {}
    speeds = [300.0, 450.0, 600.0, 900.0, 1200.0, 1600.0, 2000.0, 2400.0]
    for index, mhz in enumerate(speeds):
        machines[f"node-{index}"] = MachineSpec(
            name=f"node-{index}",
            processor="synthetic",
            speed_mhz=mhz,
            memory_mb=512.0,
            swap_mb=512.0,
            role=MachineRole.SERVER,
            cpu_count=2 if index >= 6 else 1,
        )
    machines["dispatcher"] = MachineSpec(
        "dispatcher", "synthetic", 1000.0, 1024.0, 1024.0, MachineRole.AGENT
    )
    machines["user"] = MachineSpec(
        "user", "synthetic", 1000.0, 1024.0, 1024.0, MachineRole.CLIENT
    )
    return PlatformSpec(machines=machines)


def build_catalogue() -> ProblemCatalogue:
    catalogue = ProblemCatalogue()
    for name, mflop, data_mb in (
        ("render-small", 40_000.0, 8.0),
        ("render-medium", 120_000.0, 20.0),
        ("render-large", 300_000.0, 45.0),
    ):
        catalogue.add(
            ProblemSpec(
                name=name,
                family="render",
                parameter=int(mflop),
                input_mb=data_mb,
                output_mb=data_mb / 4.0,
                compute_mflop=mflop,
            )
        )
    return catalogue


def main() -> None:
    platform = build_platform()
    catalogue = build_catalogue()
    metatask = generate_metatask(
        name="render-batch",
        problems=list(catalogue),
        count=120,
        arrivals=PoissonArrivals(mean_interarrival=6.0),
        rng=np.random.default_rng(7),
    )

    runs = {}
    for heuristic in HEURISTICS:
        middleware = GridMiddleware(
            platform, heuristic, catalogue=catalogue, config=MiddlewareConfig(seed=7)
        )
        runs[heuristic] = middleware.run(metatask)

    columns = {}
    for heuristic, result in runs.items():
        summary = summarize(result.tasks, heuristic)
        columns[heuristic] = {
            "completed tasks": summary.n_completed,
            "makespan": summary.makespan,
            "sumflow": summary.sum_flow,
            "maxstretch": summary.max_stretch,
        }
        if heuristic != "mct":
            columns[heuristic]["tasks finishing sooner than MCT"] = tasks_finishing_sooner(
                result.tasks, runs["mct"].tasks
            ).sooner

    print(render_table(columns, title="custom rendering farm, 120 tasks, 8 synthetic servers"))
    print("\nbusiest servers under MSF:", dict(sorted(
        runs["msf"].agent_decisions.items(), key=lambda kv: -kv[1])[:4]))


if __name__ == "__main__":
    main()
