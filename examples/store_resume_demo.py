#!/usr/bin/env python
"""Tour of the campaign store (:mod:`repro.store`).

Walks the store's whole lifecycle on a small Table 5 campaign:

* **cold run** — every cell simulates; each completed cell is durably
  appended to the store's write-ahead journal before it counts as done;
* **warm run** — the identical campaign replays from the journal with *zero*
  simulations, byte-identical records, in milliseconds;
* **crash + resume** — the journal is truncated mid-cell (including a torn
  final line, exactly what a kill -9 leaves behind); reopening the store
  repairs the tail and ``api.resume`` re-runs only the lost cells, again to
  byte-identical output.

Run with::

    python examples/store_resume_demo.py
    python examples/store_resume_demo.py --tasks 200 --jobs 4
"""

from __future__ import annotations

import argparse
import tempfile
import time
from pathlib import Path

from repro import api
from repro.experiments import ExperimentConfig, ExperimentScale
from repro.store import CampaignStore


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tasks", type=int, default=60, help="tasks per metatask (paper: 500)")
    parser.add_argument("--seed", type=int, default=2003)
    parser.add_argument("--jobs", type=int, default=1, help="campaign worker processes")
    args = parser.parse_args()

    config = ExperimentConfig(
        scale=ExperimentScale(name="demo", task_count=args.tasks, metatask_count=1),
        seed=args.seed,
        jobs=args.jobs,
    )
    workdir = Path(tempfile.mkdtemp(prefix="repro-store-demo-"))
    store_dir = workdir / "store"

    # ----------------------------------------------------------------- #
    # 1. cold run: simulate + journal
    # ----------------------------------------------------------------- #
    t0 = time.perf_counter()
    cold = api.run("table5", config=config, store=str(store_dir))
    cold_s = time.perf_counter() - t0
    cold_path = api.save_results(cold, workdir / "cold.jsonl")
    print(f"cold run:  {cold.cache_info['executed']} cell(s) simulated "
          f"in {cold_s:.2f} s -> {cold_path}")

    # ----------------------------------------------------------------- #
    # 2. warm run: zero simulations, byte-identical
    # ----------------------------------------------------------------- #
    t0 = time.perf_counter()
    warm = api.run("table5", config=config, store=str(store_dir))
    warm_s = time.perf_counter() - t0
    warm_path = api.save_results(warm, workdir / "warm.jsonl")
    identical = Path(cold_path).read_bytes() == Path(warm_path).read_bytes()
    print(f"warm run:  {warm.cache_info['recovered']} cell(s) recovered, "
          f"{warm.cache_info['executed']} simulated in {warm_s*1000:.1f} ms "
          f"({cold_s/warm_s:.0f}x faster); byte-identical: {identical}")
    assert warm.cache_info["executed"] == 0 and identical

    # ----------------------------------------------------------------- #
    # 3. crash: truncate the journal mid-append (torn final line)
    # ----------------------------------------------------------------- #
    journal_path = store_dir / "journal.jsonl"
    lines = journal_path.read_text().splitlines(keepends=True)
    # keep the header + 2 committed cells + half of the third cell's line
    journal_path.write_text("".join(lines[:3]) + lines[3][:40])
    print(f"crash:     journal truncated to 2 committed cell(s) + a torn line")

    # ----------------------------------------------------------------- #
    # 4. resume: repair the tail, re-run only the missing cells
    # ----------------------------------------------------------------- #
    recovered_store = CampaignStore(store_dir)
    print(f"reopen:    torn tail repaired: {recovered_store.recovered_torn_tail}, "
          f"{len(recovered_store)} cell(s) left in the journal")
    report = api.resume("table5", recovered_store, config=config)
    print(f"resume:    {report.render()}")
    resumed_path = api.save_results(report.result, workdir / "resumed.jsonl")
    identical = Path(cold_path).read_bytes() == Path(resumed_path).read_bytes()
    print(f"           resumed output byte-identical to the cold run: {identical}")
    assert identical

    print(f"\nstore directory kept for inspection: {store_dir}")
    print("try:  repro cache stats", store_dir)


if __name__ == "__main__":
    main()
