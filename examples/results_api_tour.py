#!/usr/bin/env python
"""Tour of the unified results API (:mod:`repro.api`).

Runs a small Table 5 campaign through the stable facade, then exercises the
whole results lifecycle on its records:

* every run is a provenance-stamped :class:`repro.results.RunRecord` (cell
  coordinates, derived seed, config hash, schema version, truncation flag);
* the printed table is a *pure pivot view* over those records;
* records persist to JSONL (with set-level metadata) and CSV, round-trip
  losslessly, and re-render the identical table after reload;
* ``api.compare`` proves the round-trip (and is how you diff two runs of
  different code versions: ``repro results diff a.jsonl b.jsonl``).

Run with::

    python examples/results_api_tour.py
    python examples/results_api_tour.py --tasks 200 --jobs 4
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro import api
from repro.experiments import ExperimentConfig, ExperimentScale
from repro.results import ProgressObserver


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tasks", type=int, default=60, help="tasks per metatask (paper: 500)")
    parser.add_argument("--seed", type=int, default=2003)
    parser.add_argument("--jobs", type=int, default=1, help="campaign worker processes")
    args = parser.parse_args()

    config = ExperimentConfig(
        scale=ExperimentScale(name="tour", task_count=args.tasks, metatask_count=1),
        seed=args.seed,
        jobs=args.jobs,
    )

    # 1. run through the facade — cells stream progress lines to stderr.
    table = api.run("table5", config=config, observers=[ProgressObserver()])
    print(table.render())
    print()

    # 2. the table is a pivot view over typed records.
    records = table.result_set
    print(f"{len(records)} records; metrics: {records.metric_names()}")
    first = records.records[0]
    print(
        f"first record: {first.heuristic} m{first.metatask_index} rep{first.repetition} "
        f"seed={first.seed} config={first.config_hash} schema=v{first.schema_version}"
    )
    print()

    # 3. fluent queries: filter / group_by / aggregate.
    msf = records.filter(heuristic="msf")
    print(f"msf mean sumflow: {msf.mean('sum_flow'):.2f} over {len(msf)} run(s)")
    by_heuristic = records.aggregate("sum_flow", by="heuristic")
    for name, aggregate in by_heuristic.items():
        print(f"  {name:>5}: sumflow mean={aggregate.mean:.2f} (n={aggregate.n})")
    print()

    # 4. persistence: save, reload, re-render the identical table.
    with tempfile.TemporaryDirectory() as tmp:
        jsonl = Path(tmp) / "table5.jsonl"
        api.save_results(table, jsonl)
        loaded = api.load_results(jsonl)
        assert loaded.pivot().render() == records.pivot().render()
        diff = api.compare(table, loaded)
        print(f"JSONL round-trip: {diff.render()}")

        csv = Path(tmp) / "table5.csv"
        api.save_results(table, csv)
        reloaded = api.load_results(csv)
        assert api.compare(records, reloaded).identical
        print("CSV round-trip: identical records")


if __name__ == "__main__":
    main()
