#!/usr/bin/env python
"""First experiment set in miniature: matrix products and memory pressure.

Replays the scenario behind Tables 5 and 6 of the paper at a configurable
scale: the same matrix-multiplication metatask is submitted at a low and a
high arrival rate, and the script reports how each heuristic behaves — in
particular how MCT and HMCT overload the fastest servers until they run out
of memory at the high rate, while MP and MSF complete every task.

Run with::

    python examples/matrix_campaign.py            # 150 tasks, a few seconds
    python examples/matrix_campaign.py --tasks 500   # the paper's full scale
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import GridMiddleware, MiddlewareConfig, PAPER_HEURISTICS
from repro.metrics import render_table, summarize, tasks_finishing_sooner
from repro.workload.testbed import first_set_platform, matmul_metatask


def run_rate(task_count: int, rate: float, seed: int) -> None:
    platform = first_set_platform()
    metatask = matmul_metatask(
        count=task_count, mean_interarrival=rate, rng=np.random.default_rng(seed),
        name=f"matrix-{rate:g}s",
    )
    runs = {}
    for heuristic in PAPER_HEURISTICS:
        middleware = GridMiddleware(platform, heuristic, config=MiddlewareConfig(seed=seed))
        runs[heuristic] = middleware.run(metatask)

    columns = {}
    for heuristic, result in runs.items():
        summary = summarize(result.tasks, heuristic)
        collapses = sum(stats["collapses"] for stats in result.server_stats.values())
        columns[heuristic] = {
            "completed tasks": summary.n_completed,
            "makespan": summary.makespan,
            "sumflow": summary.sum_flow,
            "maxflow": summary.max_flow,
            "maxstretch": summary.max_stretch,
            "server collapses": collapses,
        }
        if heuristic != "mct":
            columns[heuristic]["tasks finishing sooner than MCT"] = tasks_finishing_sooner(
                result.tasks, runs["mct"].tasks
            ).sooner

    title = (
        f"{task_count} matrix tasks, Poisson mean {rate:g} s "
        f"(servers: {', '.join(platform.server_names())})"
    )
    print(render_table(columns, title=title))
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tasks", type=int, default=150, help="tasks per metatask (paper: 500)")
    parser.add_argument("--seed", type=int, default=2003)
    args = parser.parse_args()

    print("--- low arrival rate (Table 5 regime) ---")
    run_rate(args.tasks, 20.0, args.seed)
    print("--- high arrival rate (Table 6 regime: memory pressure) ---")
    run_rate(args.tasks, 15.0, args.seed)
    print(
        "Expected shape: at the high rate MCT/HMCT overload the fastest servers\n"
        "(collapses > 0, tasks lost) while MP and MSF complete every task."
    )


if __name__ == "__main__":
    main()
