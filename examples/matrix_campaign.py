#!/usr/bin/env python
"""First experiment set in miniature: matrix products and memory pressure.

Replays the scenario behind Tables 5 and 6 of the paper at a configurable
scale: the same matrix-multiplication metatask is submitted at a low and a
high arrival rate, and the script reports how each heuristic behaves — in
particular how MCT and HMCT overload the fastest servers until they run out
of memory at the high rate, while MP and MSF complete every task.

Run with::

    python examples/matrix_campaign.py            # 150 tasks, a few seconds
    python examples/matrix_campaign.py --tasks 500   # the paper's full scale
    python examples/matrix_campaign.py --jobs 4   # cells on a process pool

The runs go through the campaign execution engine
(:mod:`repro.experiments.campaign`): one cell per heuristic, executed
serially or on a process pool — the numbers are identical either way.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import api
from repro.experiments import ExperimentConfig, ExperimentScale, run_campaign
from repro.metrics import render_table
from repro.workload.testbed import first_set_platform, matmul_metatask


def run_rate(task_count: int, rate: float, seed: int, jobs: int):
    platform = first_set_platform()
    metatask = matmul_metatask(
        count=task_count, mean_interarrival=rate, rng=np.random.default_rng(seed),
        name=f"matrix-{rate:g}s",
    )
    config = ExperimentConfig(
        scale=ExperimentScale(name="example", task_count=task_count, metatask_count=1),
        seed=seed,
        jobs=jobs,
    )
    table = run_campaign(
        f"matrix-{rate:g}s", f"matrix campaign @ {rate:g} s", platform, [metatask], config
    )

    columns = {}
    for heuristic, outcome in table.outcomes.items():
        columns[heuristic] = dict(table.columns[heuristic])
        # Mean across runs, like every other row of the column.
        columns[heuristic]["server collapses"] = sum(
            stats["collapses"] for run in outcome.runs for stats in run.server_stats.values()
        ) / len(outcome.runs)

    title = (
        f"{task_count} matrix tasks, Poisson mean {rate:g} s "
        f"(servers: {', '.join(platform.server_names())})"
    )
    print(render_table(columns, title=title))
    print()
    return table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tasks", type=int, default=150, help="tasks per metatask (paper: 500)")
    parser.add_argument("--seed", type=int, default=2003)
    parser.add_argument("--jobs", type=int, default=1, help="campaign worker processes")
    parser.add_argument(
        "--save",
        metavar="FILE",
        help="save both rates' run records to FILE (.jsonl or .csv) via repro.api",
    )
    args = parser.parse_args()

    print("--- low arrival rate (Table 5 regime) ---")
    low = run_rate(args.tasks, 20.0, args.seed, args.jobs)
    print("--- high arrival rate (Table 6 regime: memory pressure) ---")
    high = run_rate(args.tasks, 15.0, args.seed, args.jobs)
    if args.save:
        path = api.save_results(low.result_set.merge(high.result_set), args.save)
        print(f"saved records to {path} — inspect with 'repro results show {path}'")
    print(
        "Expected shape: at the high rate MCT/HMCT overload the fastest servers\n"
        "(collapses > 0, tasks lost) while MP and MSF complete every task."
    )


if __name__ == "__main__":
    main()
