#!/usr/bin/env python
"""Second experiment set in miniature: waste-cpu tasks across arrival rates.

Replays the scenario behind Tables 7 and 8 of the paper and extends it with a
rate sweep: the same waste-cpu workload is submitted at several Poisson rates
and the script tracks how the advantage of the perturbation-aware heuristics
(MP, MSF) over MCT grows with the contention.

Run with::

    python examples/wastecpu_campaign.py
    python examples/wastecpu_campaign.py --tasks 500 --rates 20 15 12
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import GridMiddleware, MiddlewareConfig
from repro.metrics import render_table, summarize
from repro.workload.testbed import second_set_platform, wastecpu_metatask

HEURISTICS = ("mct", "hmct", "mp", "msf", "mni")


def run_sweep(task_count: int, rates: list[float], seed: int) -> None:
    platform = second_set_platform()
    columns: dict[str, dict[str, float]] = {h: {} for h in HEURISTICS}

    for rate in rates:
        metatask = wastecpu_metatask(
            count=task_count, mean_interarrival=rate, rng=np.random.default_rng(seed),
            name=f"wastecpu-{rate:g}s",
        )
        for heuristic in HEURISTICS:
            middleware = GridMiddleware(platform, heuristic, config=MiddlewareConfig(seed=seed))
            result = middleware.run(metatask)
            summary = summarize(result.tasks, heuristic)
            columns[heuristic][f"sumflow @ {rate:g}s"] = summary.sum_flow
            columns[heuristic][f"maxstretch @ {rate:g}s"] = summary.max_stretch

    title = (
        f"waste-cpu workload, {task_count} tasks per metatask "
        f"(servers: {', '.join(platform.server_names())})"
    )
    print(render_table(columns, title=title, column_order=list(HEURISTICS)))
    print(
        "\nExpected shape: the sum-flow gap between MCT and MP/MSF widens as the\n"
        "rate increases (smaller mean inter-arrival = more contention), while the\n"
        "max-stretch of MP stays the lowest throughout — the paper's Section 5.3."
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tasks", type=int, default=120, help="tasks per metatask (paper: 500)")
    parser.add_argument(
        "--rates", type=float, nargs="+", default=[25.0, 20.0, 15.0],
        help="mean inter-arrival times to sweep (seconds)",
    )
    parser.add_argument("--seed", type=int, default=2003)
    args = parser.parse_args()
    run_sweep(args.tasks, list(args.rates), args.seed)


if __name__ == "__main__":
    main()
