#!/usr/bin/env python
"""The Historical Trace Manager at work (Fig. 1 of the paper).

Reproduces the "usefulness of the HTM" scenario of Section 2.3: two identical
servers each run one task; when a third task arrives the HTM knows the
*remaining* durations and picks the server that frees up first.  The script
prints the per-candidate Gantt charts and the perturbation report of the
decision, then shows how an agent-side trace evolves as more tasks are
committed.

Run with::

    python examples/htm_gantt_demo.py
"""

from __future__ import annotations

from repro.core import HistoricalTraceManager, PerturbationReport
from repro.experiments import run_fig1
from repro.workload.problems import matmul_problem
from repro.workload.tasks import Task


def fig1_scenario() -> None:
    print("=" * 78)
    print("Fig. 1 — two identical servers, a third task arrives at t = 80 s")
    print("=" * 78)
    result = run_fig1(duration_t1=100.0, duration_t2=200.0, duration_t3=100.0, arrival_t3=80.0)
    print(result.render())
    print()


def growing_trace() -> None:
    print("=" * 78)
    print("An agent-side trace growing on the paper's testbed (server artimon)")
    print("=" * 78)
    htm = HistoricalTraceManager()
    htm.register_server("artimon", lambda problem: problem.costs_on("artimon"))

    arrivals = [(0.0, 1800), (10.0, 1200), (25.0, 1500), (40.0, 1200)]
    for index, (arrival, size) in enumerate(arrivals):
        task = Task(f"task-{index}", matmul_problem(size), arrival=arrival)
        prediction = htm.predict("artimon", task, now=arrival)
        print(
            f"t={arrival:6.1f}s  mapping matmul-{size}: predicted completion "
            f"{prediction.new_task_completion:7.1f}s, "
            f"perturbation inflicted {prediction.sum_perturbation:6.1f}s "
            f"on {prediction.n_perturbed} running task(s)"
        )
        htm.commit("artimon", task, now=arrival)

    print("\npredicted Gantt chart of the artimon trace:")
    print(htm.gantt("artimon").render())
    print()


def candidate_comparison() -> None:
    print("=" * 78)
    print("Comparing candidate servers for one decision (perturbation report)")
    print("=" * 78)
    htm = HistoricalTraceManager()
    for server in ("chamagne", "cabestan", "artimon", "pulney"):
        htm.register_server(server, lambda problem, s=server: problem.costs_on(s))
    # Pre-load the two fastest servers.
    htm.commit("artimon", Task("bg-1", matmul_problem(1800), arrival=0.0), now=0.0)
    htm.commit("pulney", Task("bg-2", matmul_problem(1500), arrival=0.0), now=0.0)
    htm.commit("pulney", Task("bg-3", matmul_problem(1200), arrival=5.0), now=5.0)

    new_task = Task("new", matmul_problem(1800), arrival=20.0)
    predictions = htm.predict_all(htm.servers(), new_task, now=20.0)
    report = PerturbationReport.from_predictions(predictions, new_task.task_id, 20.0)
    print(report.render())
    print()
    print(f"HMCT would pick : {report.best_by('new_task_completion').server}")
    print(f"MP   would pick : {report.best_by('sum_perturbation').server}")
    print(f"MSF  would pick : {report.best_by('sum_flow_increase').server}")


def main() -> None:
    fig1_scenario()
    growing_trace()
    candidate_comparison()


if __name__ == "__main__":
    main()
