#!/usr/bin/env python
"""Quickstart: schedule a small metatask with each heuristic and compare them.

This is the five-minute tour of the library:

1. build the paper's first testbed (Table 2 machines);
2. draw a metatask of matrix multiplications (Table 3 problems, Poisson arrivals);
3. run it through NetSolve's MCT and the three HTM heuristics;
4. print the Section 3 metrics and the "tasks finishing sooner than MCT" count.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import GridMiddleware, MiddlewareConfig, PAPER_HEURISTICS
from repro.metrics import render_table, summarize, tasks_finishing_sooner
from repro.workload.testbed import first_set_platform, matmul_metatask


def main() -> None:
    rng = np.random.default_rng(42)
    platform = first_set_platform()
    metatask = matmul_metatask(count=100, mean_interarrival=20.0, rng=rng, name="quickstart")
    print(f"metatask: {len(metatask)} tasks, mix {metatask.problem_mix()}")
    print(f"servers : {', '.join(platform.server_names())}\n")

    runs = {}
    for heuristic in PAPER_HEURISTICS:
        middleware = GridMiddleware(platform, heuristic, config=MiddlewareConfig(seed=42))
        runs[heuristic] = middleware.run(metatask)

    columns = {}
    for heuristic, result in runs.items():
        summary = summarize(result.tasks, heuristic)
        columns[heuristic] = {
            "completed tasks": summary.n_completed,
            "makespan": summary.makespan,
            "sumflow": summary.sum_flow,
            "maxflow": summary.max_flow,
            "maxstretch": summary.max_stretch,
        }
        if heuristic != "mct":
            comparison = tasks_finishing_sooner(
                result.tasks, runs["mct"].tasks, heuristic, "mct"
            )
            columns[heuristic]["tasks finishing sooner than MCT"] = comparison.sooner

    print(render_table(columns, title="100 matrix-multiplication tasks, Poisson mean 20 s"))
    print("\nwhere each heuristic sent the tasks:")
    for heuristic, result in runs.items():
        print(f"  {heuristic:>5}: {result.agent_decisions}")


if __name__ == "__main__":
    main()
