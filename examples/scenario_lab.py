#!/usr/bin/env python
"""Build a custom scenario from scratch and sweep it against stock regimes.

The scenario subsystem is declarative: a :class:`~repro.scenarios.Scenario`
names a platform factory, a workload family, an arrival process factory and
(optionally) a fault schedule.  This example defines "crunch-time" — a
10-server power-law farm under ramping load with a mid-run slowdown of the
fastest server — runs it, then sweeps it against two registered regimes and
prints the cross-scenario heuristic ranking.

Run with::

    python examples/scenario_lab.py               # ~60 tasks, a few seconds
    python examples/scenario_lab.py --tasks 200 --jobs 4
"""

from __future__ import annotations

import argparse

from repro.experiments import ExperimentConfig, ExperimentScale
from repro.metrics.comparison import cross_scenario_ranking
from repro.metrics.report import render_table
from repro.platform.faults import FaultSchedule, SlowdownWindow
from repro.scenarios import Scenario, power_law_farm, run_scenario, run_sweep
from repro.workload.arrivals import RampArrivals


def crunch_time() -> Scenario:
    """Ramping load on a heterogeneous farm whose best server degrades."""

    def arrivals(scenario: Scenario, config: ExperimentConfig) -> RampArrivals:
        mean = scenario.mean_interarrival_s
        return RampArrivals(
            start_interarrival=2.0 * mean,
            end_interarrival=0.5 * mean,
            duration_s=0.5 * scenario.expected_span_s(config),
        )

    def schedule(scenario: Scenario, config: ExperimentConfig) -> FaultSchedule:
        span = scenario.expected_span_s(config)
        # plaw-9 is the fastest server of the power-law farm (quantile-ordered).
        return FaultSchedule(
            windows=(SlowdownWindow("plaw-9", 0.4 * span, 0.9 * span, factor=0.25),)
        )

    return Scenario(
        name="crunch-time",
        description="ramping load on a power-law farm; fastest server at 25% mid-run",
        regime="ramping+churn",
        platform_factory=lambda: power_law_farm(10, min_speed_mhz=400.0, alpha=1.5),
        problem_family="wastecpu",
        arrivals=arrivals,
        mean_interarrival_s=10.0,
        fault_schedule=schedule,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tasks", type=int, default=60)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--seed", type=int, default=2003)
    args = parser.parse_args()

    config = ExperimentConfig(
        scale=ExperimentScale(name="example", task_count=args.tasks, metatask_count=1),
        seed=args.seed,
        jobs=args.jobs,
    )

    custom = crunch_time()
    custom_table = run_scenario(custom, config=config)
    print(custom_table.render())
    print()

    stock = run_sweep(["burst-storm", "flaky-servers"], config=config)
    columns = {name: table.columns for name, table in stock.tables.items()}
    columns["crunch-time"] = custom_table.columns
    ranking = cross_scenario_ranking(columns, metric="sumflow")
    print(
        render_table(
            ranking,
            title="Cross-scenario ranking (custom + stock; #1 best per scenario)",
        )
    )


if __name__ == "__main__":
    main()
