"""Clients of the client-agent-server model.

A client "is a program that requests for computational resources.  It asks
the agent to find a set of the most suitable servers that are able to solve
its problems" (Section 2.1), then performs an RPC-like call to the chosen
server.  In the simulation, a :class:`Client` is a process that walks through
the tasks of a metatask in arrival order, submits each one to the middleware
at its arrival date, and records nothing else — every observable quantity
lives on the :class:`~repro.workload.tasks.Task` objects themselves.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from ..simulation import Environment
from ..workload.tasks import Task

__all__ = ["Client"]


class Client:
    """Submits the tasks of a metatask to the agent at their arrival dates.

    Parameters
    ----------
    env:
        The simulation environment.
    name:
        Client name (e.g. ``"zanzibar"``); stored on the submitted tasks.
    tasks:
        The tasks to submit (their :attr:`~repro.workload.tasks.Task.arrival`
        dates drive the submission process).
    submit:
        Callback invoked with each task at its arrival date — in practice
        :meth:`repro.platform.middleware.GridMiddleware.submit`.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        tasks: Sequence[Task],
        submit: Callable[[Task], None],
    ):
        self.env = env
        self.name = name
        self.tasks: List[Task] = sorted(tasks, key=lambda t: (t.arrival, t.task_id))
        self._submit = submit
        self.submitted = 0
        for task in self.tasks:
            task.client = name
        self.process = env.process(self._run(), name=f"client-{name}")

    def _run(self):
        for task in self.tasks:
            delay = task.arrival - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self._submit(task)
            self.submitted += 1
        return self.submitted

    def __repr__(self) -> str:
        return f"<Client {self.name} submitted={self.submitted}/{len(self.tasks)}>"
