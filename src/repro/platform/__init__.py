"""The simulated NetSolve-like platform (ground truth).

This package models everything that, in the paper, was the *real* testbed:
the time-shared servers with memory pressure and speed noise, the LAN links,
the load monitors, the agent and the clients.  The agent's knowledge is
strictly limited to what monitors report and what the Historical Trace
Manager simulates — the separation between ground truth and agent knowledge
is what makes the comparison between MCT and the HTM heuristics meaningful.
"""

from .agent import Agent, AgentStats, ServerRegistration
from .client import Client
from .faults import (
    FaultSchedule,
    FaultTolerancePolicy,
    MemoryModel,
    OutageWindow,
    SlowdownWindow,
    SpeedNoiseModel,
)
from .middleware import GridMiddleware, MiddlewareConfig, RunResult
from .monitors import LoadMonitor, LoadReport
from .server import (
    RESOURCE_CPU,
    RESOURCE_NET_IN,
    RESOURCE_NET_OUT,
    ComputeServer,
    ServerStats,
)
from .spec import (
    DEFAULT_LINK,
    PAPER_MACHINES,
    LinkSpec,
    MachineRole,
    MachineSpec,
    PlatformSpec,
    paper_machine,
)

__all__ = [
    "Agent",
    "AgentStats",
    "ServerRegistration",
    "Client",
    "FaultTolerancePolicy",
    "MemoryModel",
    "SpeedNoiseModel",
    "FaultSchedule",
    "OutageWindow",
    "SlowdownWindow",
    "GridMiddleware",
    "MiddlewareConfig",
    "RunResult",
    "LoadMonitor",
    "LoadReport",
    "ComputeServer",
    "ServerStats",
    "RESOURCE_CPU",
    "RESOURCE_NET_IN",
    "RESOURCE_NET_OUT",
    "MachineSpec",
    "MachineRole",
    "LinkSpec",
    "PlatformSpec",
    "PAPER_MACHINES",
    "DEFAULT_LINK",
    "paper_machine",
]
