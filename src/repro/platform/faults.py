"""Fault, memory-pressure and noise models of the ground-truth platform.

The first experiment set of the paper (matrix products, Tables 5 and 6) is
shaped by memory exhaustion: MCT and HMCT pile tasks onto the fastest
servers, which run out of memory, thrash, and eventually *collapse*; NetSolve
fault-tolerance then resubmits the failed tasks (for MCT).  These models make
that behaviour reproducible:

* :class:`MemoryModel` — resident-set accounting, thrashing slowdown and the
  collapse threshold (memory + swap, Table 2).
* :class:`SpeedNoiseModel` — multiplicative CPU-speed noise, which is what
  makes the HTM's predictions *slightly* wrong (Table 1 reports a mean error
  below 3 %) and emulates a non-dedicated LAN.
* :class:`FaultTolerancePolicy` — NetSolve's resubmission behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

import numpy as np

__all__ = [
    "MemoryModel",
    "SpeedNoiseModel",
    "FaultTolerancePolicy",
    "OutageWindow",
    "SlowdownWindow",
    "FaultSchedule",
]


@dataclass(frozen=True)
class MemoryModel:
    """Memory pressure model of a server.

    Parameters
    ----------
    enabled:
        When ``False`` tasks never consume memory (the ``waste-cpu`` second
        experiment set behaves as if this were off since its tasks need no
        memory).
    thrashing:
        When the resident set exceeds the physical memory but stays below
        memory + swap, the CPU capacity is multiplied by
        ``max(min_thrash_factor, usable_memory / resident)``.  Disabled by
        default: the paper's validated model is the pure ``1/n`` sharing, and
        the thrashing feedback loop is an optional refinement (ablation).
    collapse:
        When the resident set would exceed memory + swap the server collapses:
        every resident task fails and the server stays unavailable for
        ``recovery_s`` seconds.  With ``collapse=False`` the submission is
        rejected instead (the task fails immediately but the server survives).
    """

    enabled: bool = True
    thrashing: bool = False
    min_thrash_factor: float = 0.25
    collapse: bool = True
    recovery_s: float = 120.0

    def thrash_factor(self, resident_mb: float, usable_memory_mb: float) -> float:
        """CPU slowdown factor for a given resident set."""
        if not self.enabled or not self.thrashing:
            return 1.0
        if resident_mb <= usable_memory_mb or resident_mb <= 0:
            return 1.0
        return max(self.min_thrash_factor, usable_memory_mb / resident_mb)


@dataclass(frozen=True)
class SpeedNoiseModel:
    """Multiplicative CPU speed noise, redrawn at a fixed period.

    Every ``period_s`` seconds the CPU capacity of a server is set to
    ``base_capacity * factor`` with ``factor`` drawn from a log-normal
    distribution with median 1 and the given coefficient of variation.  A
    ``relative_sigma`` of 0 disables the noise entirely.
    """

    relative_sigma: float = 0.02
    period_s: float = 30.0

    def __post_init__(self) -> None:
        if self.relative_sigma < 0:
            raise ValueError("relative_sigma must be non-negative")
        if self.period_s <= 0:
            raise ValueError("period_s must be strictly positive")

    @property
    def enabled(self) -> bool:
        """Whether the model actually perturbs the speed."""
        return self.relative_sigma > 0

    def draw_factor(self, rng: np.random.Generator) -> float:
        """Draw one multiplicative speed factor."""
        if not self.enabled:
            return 1.0
        return float(rng.lognormal(mean=0.0, sigma=self.relative_sigma))


@dataclass(frozen=True)
class FaultTolerancePolicy:
    """NetSolve-style fault tolerance (resubmission of failed tasks).

    The paper notes that "the NetSolve MCT has fault tolerance mechanisms that
    permit to schedule almost all tasks" while the newly implemented
    heuristics did not benefit from them — which is why HMCT completes only
    358 of the 500 tasks of Table 6.  The middleware applies this policy per
    heuristic.
    """

    enabled: bool = True
    max_attempts: int = 10
    retry_delay_s: float = 10.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.retry_delay_s < 0:
            raise ValueError("retry_delay_s must be non-negative")

    def should_retry(self, attempts_so_far: int) -> bool:
        """Whether a task that failed ``attempts_so_far`` times may be retried."""
        return self.enabled and attempts_so_far < self.max_attempts

    @classmethod
    def disabled(cls) -> "FaultTolerancePolicy":
        """A policy that never retries (used for HMCT/MP/MSF as in the paper)."""
        return cls(enabled=False, max_attempts=1, retry_delay_s=0.0)


# --------------------------------------------------------------------------- #
# scheduled fault / churn windows (the scenario subsystem's "flaky servers")
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class OutageWindow:
    """A planned outage of one server over ``[start_s, end_s)``.

    At ``start_s`` the server goes down: every resident task fails (and is
    retried or not, per the run's fault-tolerance policy) and the agent is
    notified, exactly as for a memory collapse.  At ``end_s`` the server
    re-registers.  Unlike collapses, the window is part of the *scenario*, not
    of the memory model, so it replays identically under every heuristic.
    """

    server: str
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError("start_s must be non-negative")
        if self.end_s <= self.start_s:
            raise ValueError("end_s must be strictly after start_s")


@dataclass(frozen=True)
class SlowdownWindow:
    """A CPU slowdown of one server over ``[start_s, end_s)``.

    During the window the server's effective CPU capacity is multiplied by
    ``factor`` (0 < factor; values above 1 model a temporary speed-up).  The
    slowdown composes multiplicatively with the speed-noise and thrashing
    models, and monitors/HTM observe it only through their usual channels —
    which is precisely what makes stale-information scenarios interesting.
    """

    server: str
    start_s: float
    end_s: float
    factor: float

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError("start_s must be non-negative")
        if self.end_s <= self.start_s:
            raise ValueError("end_s must be strictly after start_s")
        if self.factor <= 0:
            raise ValueError("factor must be strictly positive")


@dataclass(frozen=True)
class FaultSchedule:
    """A deterministic per-run schedule of outage and slowdown windows.

    The schedule is a frozen value object (picklable, shippable to campaign
    workers) wired through :class:`~repro.platform.middleware.MiddlewareConfig`;
    the middleware turns each window into simulation-clock callbacks at
    construction time.  Overlapping slowdown windows on the same server are
    rejected — their composition would depend on callback ordering.
    """

    windows: Tuple[Union[OutageWindow, SlowdownWindow], ...] = ()

    def __post_init__(self) -> None:
        by_server: dict = {}
        for window in self.windows:
            by_server.setdefault((window.server, type(window)), []).append(window)
        for (server, kind), group in by_server.items():
            group = sorted(group, key=lambda w: w.start_s)
            for earlier, later in zip(group, group[1:]):
                if later.start_s < earlier.end_s:
                    raise ValueError(
                        f"overlapping {kind.__name__}s on server {server!r}: "
                        f"[{earlier.start_s}, {earlier.end_s}) and "
                        f"[{later.start_s}, {later.end_s})"
                    )

    def __bool__(self) -> bool:
        return bool(self.windows)

    def server_names(self) -> Tuple[str, ...]:
        """Names of the servers the schedule touches (deduplicated, ordered)."""
        seen: List[str] = []
        for window in self.windows:
            if window.server not in seen:
                seen.append(window.server)
        return tuple(seen)

    def for_server(self, name: str) -> Tuple[Union[OutageWindow, SlowdownWindow], ...]:
        """The windows targeting one server, ordered by start date."""
        return tuple(
            sorted((w for w in self.windows if w.server == name), key=lambda w: w.start_s)
        )
