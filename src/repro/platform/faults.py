"""Fault, memory-pressure and noise models of the ground-truth platform.

The first experiment set of the paper (matrix products, Tables 5 and 6) is
shaped by memory exhaustion: MCT and HMCT pile tasks onto the fastest
servers, which run out of memory, thrash, and eventually *collapse*; NetSolve
fault-tolerance then resubmits the failed tasks (for MCT).  These models make
that behaviour reproducible:

* :class:`MemoryModel` — resident-set accounting, thrashing slowdown and the
  collapse threshold (memory + swap, Table 2).
* :class:`SpeedNoiseModel` — multiplicative CPU-speed noise, which is what
  makes the HTM's predictions *slightly* wrong (Table 1 reports a mean error
  below 3 %) and emulates a non-dedicated LAN.
* :class:`FaultTolerancePolicy` — NetSolve's resubmission behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["MemoryModel", "SpeedNoiseModel", "FaultTolerancePolicy"]


@dataclass(frozen=True)
class MemoryModel:
    """Memory pressure model of a server.

    Parameters
    ----------
    enabled:
        When ``False`` tasks never consume memory (the ``waste-cpu`` second
        experiment set behaves as if this were off since its tasks need no
        memory).
    thrashing:
        When the resident set exceeds the physical memory but stays below
        memory + swap, the CPU capacity is multiplied by
        ``max(min_thrash_factor, usable_memory / resident)``.  Disabled by
        default: the paper's validated model is the pure ``1/n`` sharing, and
        the thrashing feedback loop is an optional refinement (ablation).
    collapse:
        When the resident set would exceed memory + swap the server collapses:
        every resident task fails and the server stays unavailable for
        ``recovery_s`` seconds.  With ``collapse=False`` the submission is
        rejected instead (the task fails immediately but the server survives).
    """

    enabled: bool = True
    thrashing: bool = False
    min_thrash_factor: float = 0.25
    collapse: bool = True
    recovery_s: float = 120.0

    def thrash_factor(self, resident_mb: float, usable_memory_mb: float) -> float:
        """CPU slowdown factor for a given resident set."""
        if not self.enabled or not self.thrashing:
            return 1.0
        if resident_mb <= usable_memory_mb or resident_mb <= 0:
            return 1.0
        return max(self.min_thrash_factor, usable_memory_mb / resident_mb)


@dataclass(frozen=True)
class SpeedNoiseModel:
    """Multiplicative CPU speed noise, redrawn at a fixed period.

    Every ``period_s`` seconds the CPU capacity of a server is set to
    ``base_capacity * factor`` with ``factor`` drawn from a log-normal
    distribution with median 1 and the given coefficient of variation.  A
    ``relative_sigma`` of 0 disables the noise entirely.
    """

    relative_sigma: float = 0.02
    period_s: float = 30.0

    def __post_init__(self) -> None:
        if self.relative_sigma < 0:
            raise ValueError("relative_sigma must be non-negative")
        if self.period_s <= 0:
            raise ValueError("period_s must be strictly positive")

    @property
    def enabled(self) -> bool:
        """Whether the model actually perturbs the speed."""
        return self.relative_sigma > 0

    def draw_factor(self, rng: np.random.Generator) -> float:
        """Draw one multiplicative speed factor."""
        if not self.enabled:
            return 1.0
        return float(rng.lognormal(mean=0.0, sigma=self.relative_sigma))


@dataclass(frozen=True)
class FaultTolerancePolicy:
    """NetSolve-style fault tolerance (resubmission of failed tasks).

    The paper notes that "the NetSolve MCT has fault tolerance mechanisms that
    permit to schedule almost all tasks" while the newly implemented
    heuristics did not benefit from them — which is why HMCT completes only
    358 of the 500 tasks of Table 6.  The middleware applies this policy per
    heuristic.
    """

    enabled: bool = True
    max_attempts: int = 10
    retry_delay_s: float = 10.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.retry_delay_s < 0:
            raise ValueError("retry_delay_s must be non-negative")

    def should_retry(self, attempts_so_far: int) -> bool:
        """Whether a task that failed ``attempts_so_far`` times may be retried."""
        return self.enabled and attempts_so_far < self.max_attempts

    @classmethod
    def disabled(cls) -> "FaultTolerancePolicy":
        """A policy that never retries (used for HMCT/MP/MSF as in the paper)."""
        return cls(enabled=False, max_attempts=1, retry_delay_s=0.0)
