"""The agent of the client-agent-server model.

"The agent is the central part.  It knows the state of the environment and
schedules client requests on servers that are able to execute them"
(Section 2.1).  The :class:`Agent` implemented here:

* keeps the *registration table*: which server solves which problems, with
  the static costs of Tables 3 and 4;
* stores the latest :class:`~repro.platform.monitors.LoadReport` of each
  server and applies NetSolve's two load-correction mechanisms (assignment
  bump and completion message, Section 5.3);
* hosts the :class:`~repro.core.htm.HistoricalTraceManager` and feeds it with
  commits, completion messages and failure notifications;
* delegates each mapping decision to the configured heuristic, handing it a
  :class:`~repro.core.heuristics.base.SchedulingContext` built from the
  knowledge above — never from the ground truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.heuristics import Decision, Heuristic, SchedulingContext, ServerInfo
from ..core.heuristics.msf import MsfHeuristic
from ..core.htm import HistoricalTraceManager
from ..core.records import HtmPrediction
from ..errors import NoCandidateServer, SchedulingError
from ..simulation import Environment
from ..workload.problems import PhaseCosts
from ..workload.tasks import Task
from .monitors import LoadReport
from .server import ComputeServer

__all__ = ["ServerRegistration", "AgentStats", "Agent"]


@dataclass
class ServerRegistration:
    """The agent-side record of one registered server."""

    server: ComputeServer
    #: Latest load report received from the server's monitor (``None`` before
    #: the first one arrives).
    last_report: Optional[LoadReport] = None
    #: NetSolve's first load-correction mechanism: tasks mapped on the server
    #: since the last report, minus completion messages received since then.
    pending_correction: int = 0
    #: Whether the agent currently believes the server is alive.
    believed_up: bool = True

    @property
    def name(self) -> str:
        """Name of the registered server."""
        return self.server.name


@dataclass
class AgentStats:
    """Counters describing the agent's activity during a run."""

    requests: int = 0
    mappings: int = 0
    completion_messages: int = 0
    failure_messages: int = 0
    reports_received: int = 0
    #: Reports received with ``is_up=False`` (the agent *does* apply them —
    #: this makes the down-notification traffic visible per run).
    reports_down_received: int = 0
    #: Reports for servers absent from the registration table.  They carry no
    #: usable state and are discarded — counted here instead of silently.
    reports_dropped: int = 0
    #: Dispatch decisions split by whether the chosen server had ever sent a
    #: load report, plus the staleness (now - emitted_at) of the report the
    #: decision relied on.  Feeds ``RunResult.monitor_summary``.
    dispatches_with_report: int = 0
    dispatches_without_report: int = 0
    staleness_sum: float = 0.0
    staleness_max: float = 0.0
    decisions_per_server: Dict[str, int] = field(default_factory=dict)


class Agent:
    """The scheduling agent.

    Parameters
    ----------
    env:
        Simulation environment (used only for time stamps).
    heuristic:
        The scheduling heuristic; if it requires the HTM one is created
        automatically unless ``htm`` is provided.
    htm:
        Optional explicit Historical Trace Manager instance (lets experiments
        configure resynchronisation or communication modelling).
    """

    def __init__(
        self,
        env: Environment,
        heuristic: Heuristic,
        htm: Optional[HistoricalTraceManager] = None,
    ):
        self.env = env
        self.heuristic = heuristic
        if htm is None and heuristic.requires_htm:
            htm = HistoricalTraceManager()
        self.htm = htm
        self._registry: Dict[str, ServerRegistration] = {}
        self.stats = AgentStats()
        #: Trace of every decision: ``(time, task_id, server, Decision)``.
        self.decision_log: List[Tuple[float, str, str, Decision]] = []
        #: Optional :class:`repro.obs.Tracer` the middleware wires in.
        #: ``tracer is None`` is the zero-overhead-when-off guard.
        self.tracer = None

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register_server(self, server: ComputeServer) -> None:
        """A server joins the middleware and announces its problem list."""
        if server.name in self._registry:
            raise SchedulingError(f"server {server.name!r} is already registered")
        self._registry[server.name] = ServerRegistration(server=server)
        if self.htm is not None:
            self.htm.register_server(
                server.name,
                server.costs_for_problem_spec,
                cpu_count=server.spec.cpu_count,
            )

    def registered_servers(self) -> List[str]:
        """Names of the registered servers."""
        return list(self._registry)

    def registration(self, name: str) -> ServerRegistration:
        """The registration record of server ``name``."""
        try:
            return self._registry[name]
        except KeyError:
            raise SchedulingError(f"server {name!r} is not registered") from None

    # ------------------------------------------------------------------ #
    # information flow (monitors, completion / failure messages)
    # ------------------------------------------------------------------ #
    def receive_load_report(self, report: LoadReport) -> None:
        """A monitor report reached the agent."""
        registration = self._registry.get(report.server)
        if registration is None:
            # No registration record to update: the report is discarded, but
            # visibly (counter + trace event), never silently.
            self.stats.reports_dropped += 1
            if self.tracer is not None:
                self.tracer.emit(
                    report.received_at,
                    "monitor.report",
                    server=report.server,
                    dropped=True,
                )
            return
        registration.last_report = report
        registration.pending_correction = 0
        registration.believed_up = report.is_up
        self.stats.reports_received += 1
        if not report.is_up:
            self.stats.reports_down_received += 1
        if self.tracer is not None:
            self.tracer.emit(
                report.received_at,
                "monitor.report",
                server=report.server,
                load=report.load,
                resident=report.resident_tasks,
                is_up=report.is_up,
                latency=report.received_at - report.emitted_at,
            )

    def notify_completion(self, task: Task, server_name: str, at: float) -> None:
        """A server notified the agent that a task finished (mechanism #2)."""
        registration = self._registry.get(server_name)
        if registration is not None:
            registration.pending_correction = max(0, registration.pending_correction - 1)
        if self.htm is not None:
            self.htm.notify_completion(task.task_id, at)
        if isinstance(self.heuristic, MsfHeuristic) and self.heuristic.memory_aware:
            self.heuristic.notify_release(server_name, task.problem.memory_mb)
        self.stats.completion_messages += 1

    def notify_failure(self, task: Task, server_name: str, at: float) -> None:
        """A task failed on a server (rejection or collapse)."""
        registration = self._registry.get(server_name)
        if registration is not None:
            registration.pending_correction = max(0, registration.pending_correction - 1)
        if self.htm is not None:
            self.htm.notify_failure(task.task_id, at)
        if isinstance(self.heuristic, MsfHeuristic) and self.heuristic.memory_aware:
            self.heuristic.notify_release(server_name, task.problem.memory_mb)
        self.stats.failure_messages += 1

    def notify_server_down(self, server_name: str, at: float) -> None:
        """The agent learnt that a server collapsed / left."""
        registration = self._registry.get(server_name)
        if registration is not None:
            registration.believed_up = False
        if self.htm is not None and self.htm.has_server(server_name):
            self.htm.clear_server(server_name, at)

    def notify_server_up(self, server_name: str, at: float) -> None:
        """The agent learnt that a server recovered."""
        registration = self._registry.get(server_name)
        if registration is not None:
            registration.believed_up = True

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def build_context(self, task: Task) -> SchedulingContext:
        """Assemble the knowledge available to the heuristic for ``task``."""
        now = self.env.now
        infos: List[ServerInfo] = []
        for registration in self._registry.values():
            server = registration.server
            if not server.can_solve(task.problem.name):
                continue
            report = registration.last_report
            costs: PhaseCosts = server.costs_for(task.problem.name)
            infos.append(
                ServerInfo(
                    name=server.name,
                    costs=costs,
                    reported_load=report.load if report is not None else 0.0,
                    report_age=(now - report.emitted_at) if report is not None else float("inf"),
                    pending_correction=registration.pending_correction,
                    is_up=registration.believed_up,
                    speed_hint=server.spec.speed_mflops or 1.0,
                    cpu_count=server.spec.cpu_count,
                )
            )
        if not infos:
            raise NoCandidateServer(task.problem.name)
        return SchedulingContext(now=now, task=task, servers=tuple(infos), htm=self.htm)

    def schedule(self, task: Task) -> Decision:
        """Map ``task`` on a server and update the agent's knowledge."""
        self.stats.requests += 1
        context = self.build_context(task)
        decision = self.heuristic.select(context)
        registration = self.registration(decision.server)
        registration.pending_correction += 1
        if self.htm is not None:
            self.htm.commit(decision.server, task, context.now)
        if isinstance(self.heuristic, MsfHeuristic) and self.heuristic.memory_aware:
            self.heuristic.notify_commit(decision.server, task.problem.memory_mb)
        self.stats.mappings += 1
        self.stats.decisions_per_server[decision.server] = (
            self.stats.decisions_per_server.get(decision.server, 0) + 1
        )
        report = registration.last_report
        if report is not None:
            staleness = context.now - report.emitted_at
            self.stats.dispatches_with_report += 1
            self.stats.staleness_sum += staleness
            if staleness > self.stats.staleness_max:
                self.stats.staleness_max = staleness
        else:
            staleness = None
            self.stats.dispatches_without_report += 1
        if self.tracer is not None:
            estimated = decision.estimated_completion
            if estimated is not None and not math.isfinite(estimated):
                estimated = None
            self.tracer.emit(
                context.now,
                "task.dispatch",
                task=task.task_id,
                server=decision.server,
                heuristic=self.heuristic.name,
                estimated=estimated,
                staleness=staleness,
                # Per-candidate heuristic scores, keys sorted, non-finite
                # entries nulled so the JSONL stays allow_nan=False clean.
                scores={
                    name: (value if math.isfinite(value) else None)
                    for name, value in sorted(decision.scores.items())
                },
            )
        self.decision_log.append((context.now, task.task_id, decision.server, decision))
        return decision

    def __repr__(self) -> str:
        return (
            f"<Agent heuristic={self.heuristic.name!r} servers={len(self._registry)} "
            f"mappings={self.stats.mappings}>"
        )
