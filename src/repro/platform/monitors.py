"""Load monitors and the report bus.

In NetSolve "a server runs its own monitors" and periodically reports dynamic
information (current CPU load average, bandwidth, latency) to the agent
(Section 2.2).  The baseline MCT heuristic bases its decisions on these
reports; their *staleness* — a report only reflects the state at the time it
was sent, and the load is assumed constant afterwards — is precisely the
weakness the HTM removes.

:class:`LoadMonitor` is a simulation process attached to one server: every
``period`` seconds (plus optional jitter) it samples the server's smoothed
load average and delivers a :class:`LoadReport` to the agent after a
configurable network delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..simulation import Environment
from .server import ComputeServer

__all__ = ["LoadReport", "LoadMonitor"]


@dataclass(frozen=True)
class LoadReport:
    """One report sent by a server's monitor to the agent."""

    server: str
    #: Smoothed number of tasks in the compute phase (UNIX-style load average).
    load: float
    #: Number of tasks resident on the server (any phase), informational.
    resident_tasks: int
    #: Whether the server was up when the report was emitted.
    is_up: bool
    #: Date the report was emitted by the server.
    emitted_at: float
    #: Date the report reaches the agent (emitted_at + network delay).
    received_at: float


class LoadMonitor:
    """Periodic load reporting from one server to the agent.

    Parameters
    ----------
    env:
        Simulation environment.
    server:
        The monitored server.
    deliver:
        Callback invoked (at reception time) with each :class:`LoadReport`.
    period:
        Reporting period in seconds (NetSolve servers report periodically;
        30 s is the default used in the experiments).
    delay:
        Network delay between emission and reception.
    jitter:
        Uniform jitter (± seconds) added to each period to avoid lockstep
        reporting across servers.
    rng:
        Random generator for the jitter.
    """

    def __init__(
        self,
        env: Environment,
        server: ComputeServer,
        deliver: Callable[[LoadReport], None],
        period: float = 30.0,
        delay: float = 0.05,
        jitter: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        if period <= 0:
            raise ValueError("period must be strictly positive")
        if delay < 0 or jitter < 0:
            raise ValueError("delay and jitter must be non-negative")
        self.env = env
        self.server = server
        self.deliver = deliver
        self.period = float(period)
        self.delay = float(delay)
        self.jitter = float(jitter)
        # repro: allow[DET-RNG] interactive convenience fallback only — every
        # campaign/experiment path passes a generator seeded from the root seed
        self._rng = rng if rng is not None else np.random.default_rng()
        self.reports_sent = 0
        self.process = env.process(self._run(), name=f"monitor-{server.name}")

    def _emit(self) -> None:
        report = LoadReport(
            server=self.server.name,
            load=self.server.load_average(),
            resident_tasks=self.server.resident_task_count(),
            is_up=self.server.is_up,
            emitted_at=self.env.now,
            received_at=self.env.now + self.delay,
        )
        self.reports_sent += 1
        if self.delay <= 0:
            self.deliver(report)
        else:
            timeout = self.env.timeout(self.delay)
            timeout.callbacks.append(lambda _evt, rep=report: self.deliver(rep))

    def _run(self):
        # An initial report at (roughly) time zero, as servers register with
        # their state when they join the agent.
        self._emit()
        while True:
            period = self.period
            if self.jitter > 0:
                period = max(0.1, period + float(self._rng.uniform(-self.jitter, self.jitter)))
            yield self.env.timeout(period)
            self._emit()
