"""Static platform descriptions.

Machines and links of the simulated testbed.  :data:`PAPER_MACHINES` encodes
Table 2 of the paper (the six LORIA machines, the agent and the client).
A :class:`PlatformSpec` groups a set of machines and links with the roles
each one plays; factories for the paper's two experiment sets are in
:mod:`repro.workload.testbed`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Mapping, Optional, Tuple

from ..errors import PlatformError

__all__ = [
    "MachineRole",
    "MachineSpec",
    "LinkSpec",
    "PlatformSpec",
    "PAPER_MACHINES",
    "DEFAULT_LINK",
    "paper_machine",
]


class MachineRole:
    """Roles a machine can play in the client-agent-server model."""

    SERVER = "server"
    AGENT = "agent"
    CLIENT = "client"


@dataclass(frozen=True)
class MachineSpec:
    """Description of one machine of the testbed (one row of Table 2).

    Parameters
    ----------
    name:
        Host name (e.g. ``"artimon"``).
    processor:
        Human-readable CPU description.
    speed_mhz:
        Clock speed, used only to derive a generic speed for problems without
        a measured cost entry.
    memory_mb / swap_mb:
        Physical memory and swap space, in MB (the collapse model of Table 6
        depends on these).
    role:
        ``"server"``, ``"agent"`` or ``"client"``.
    os_reserved_mb:
        Memory considered unavailable to tasks (OS, NetSolve daemon...).
    speed_mflops:
        Abstract compute speed for the generic cost model; defaults to a value
        proportional to ``speed_mhz``.
    cpu_count:
        Number of processors.  Table 2 only marks the agent machine as
        dual-processor ("bipro"); servers default to 1.  With ``cpu_count=c``
        a task still runs at the single-CPU speed measured in Tables 3/4, but
        up to *c* tasks compute without slowing each other down.
    """

    name: str
    processor: str
    speed_mhz: float
    memory_mb: float
    swap_mb: float
    role: str = MachineRole.SERVER
    os_reserved_mb: float = 64.0
    speed_mflops: Optional[float] = None
    cpu_count: int = 1

    def __post_init__(self) -> None:
        if self.speed_mhz <= 0:
            raise ValueError("speed_mhz must be strictly positive")
        if self.memory_mb < 0 or self.swap_mb < 0:
            raise ValueError("memory_mb and swap_mb must be non-negative")
        if self.role not in (MachineRole.SERVER, MachineRole.AGENT, MachineRole.CLIENT):
            raise ValueError(f"unknown machine role {self.role!r}")
        if self.cpu_count < 1:
            raise ValueError("cpu_count must be at least 1")
        if self.speed_mflops is None:
            object.__setattr__(self, "speed_mflops", self.speed_mhz * 0.6)

    @property
    def usable_memory_mb(self) -> float:
        """Physical memory available to tasks."""
        return max(0.0, self.memory_mb - self.os_reserved_mb)

    @property
    def collapse_threshold_mb(self) -> float:
        """Resident memory above which the machine collapses (memory + swap)."""
        return self.usable_memory_mb + self.swap_mb

    def with_role(self, role: str) -> "MachineSpec":
        """Return a copy of the spec with a different role."""
        return replace(self, role=role)


@dataclass(frozen=True)
class LinkSpec:
    """A network link between two machines.

    NetSolve computes the communication time as ``size / bandwidth + latency``
    (Section 2.2); the ground-truth model additionally shares the bandwidth
    equally among concurrent transfers on the same link.
    """

    bandwidth_mb_s: float = 10.0
    latency_s: float = 0.005

    def __post_init__(self) -> None:
        if self.bandwidth_mb_s <= 0:
            raise ValueError("bandwidth_mb_s must be strictly positive")
        if self.latency_s < 0:
            raise ValueError("latency_s must be non-negative")

    def transfer_time(self, size_mb: float) -> float:
        """NetSolve's estimate of the time to move ``size_mb`` MB alone."""
        return size_mb / self.bandwidth_mb_s + self.latency_s


#: Default LAN link used when a pair of machines has no explicit entry.
DEFAULT_LINK = LinkSpec(bandwidth_mb_s=10.0, latency_s=0.005)


#: Table 2 of the paper: the machines of the LORIA testbed.
PAPER_MACHINES: Dict[str, MachineSpec] = {
    "chamagne": MachineSpec("chamagne", "pentium II", 330.0, 512.0, 134.0, MachineRole.SERVER),
    "cabestan": MachineSpec("cabestan", "pentium III", 500.0, 192.0, 400.0, MachineRole.SERVER),
    "artimon": MachineSpec("artimon", "pentium IV", 1700.0, 512.0, 1024.0, MachineRole.SERVER),
    "pulney": MachineSpec("pulney", "xeon", 1400.0, 256.0, 533.0, MachineRole.SERVER),
    "valette": MachineSpec("valette", "pentium II", 400.0, 128.0, 126.0, MachineRole.SERVER),
    "spinnaker": MachineSpec("spinnaker", "xeon", 2000.0, 1024.0, 2048.0, MachineRole.SERVER),
    "xrousse": MachineSpec(
        "xrousse", "pentium II bipro", 400.0, 512.0, 512.0, MachineRole.AGENT, cpu_count=2
    ),
    "zanzibar": MachineSpec("zanzibar", "pentium III", 550.0, 256.0, 500.0, MachineRole.CLIENT),
}


def paper_machine(name: str) -> MachineSpec:
    """Return the Table 2 spec of machine ``name``."""
    try:
        return PAPER_MACHINES[name]
    except KeyError:
        raise PlatformError(f"machine {name!r} is not part of the paper's testbed") from None


@dataclass(frozen=True)
class PlatformSpec:
    """A full platform: machines, their roles, and the links between them.

    Parameters
    ----------
    machines:
        Mapping name → :class:`MachineSpec`.  Exactly one machine must have
        the agent role; at least one must be a server and one a client.
    links:
        Optional mapping ``(from, to)`` → :class:`LinkSpec`; missing pairs use
        ``default_link``.  Links are looked up symmetrically.
    default_link:
        Fallback link characteristics.
    """

    machines: Mapping[str, MachineSpec]
    links: Mapping[Tuple[str, str], LinkSpec] = field(default_factory=dict)
    default_link: LinkSpec = DEFAULT_LINK

    def __post_init__(self) -> None:
        if not self.machines:
            raise PlatformError("a platform needs at least one machine")
        for name, spec in self.machines.items():
            if name != spec.name:
                raise PlatformError(f"machine key {name!r} does not match spec name {spec.name!r}")
        if len(self.agent_names()) != 1:
            raise PlatformError("a platform needs exactly one agent machine")
        if not self.server_names():
            raise PlatformError("a platform needs at least one server machine")
        if not self.client_names():
            raise PlatformError("a platform needs at least one client machine")

    # ------------------------------------------------------------------ #
    def _names_with_role(self, role: str) -> Tuple[str, ...]:
        return tuple(name for name, spec in self.machines.items() if spec.role == role)

    def server_names(self) -> Tuple[str, ...]:
        """Names of the server machines, in declaration order."""
        return self._names_with_role(MachineRole.SERVER)

    def client_names(self) -> Tuple[str, ...]:
        """Names of the client machines, in declaration order."""
        return self._names_with_role(MachineRole.CLIENT)

    def agent_names(self) -> Tuple[str, ...]:
        """Names of the agent machines (exactly one for a valid platform)."""
        return self._names_with_role(MachineRole.AGENT)

    @property
    def agent_name(self) -> str:
        """Name of the (unique) agent machine."""
        return self.agent_names()[0]

    def machine(self, name: str) -> MachineSpec:
        """The spec of machine ``name``."""
        try:
            return self.machines[name]
        except KeyError:
            raise PlatformError(f"unknown machine {name!r}") from None

    def link(self, a: str, b: str) -> LinkSpec:
        """The link between machines ``a`` and ``b`` (symmetric lookup)."""
        if (a, b) in self.links:
            return self.links[(a, b)]
        if (b, a) in self.links:
            return self.links[(b, a)]
        return self.default_link

    def subset(self, server_names: Iterable[str]) -> "PlatformSpec":
        """Return a platform restricted to the given servers (agent/clients kept)."""
        keep = set(server_names)
        unknown = keep - set(self.server_names())
        if unknown:
            raise PlatformError(f"unknown servers {sorted(unknown)}")
        machines = {
            name: spec
            for name, spec in self.machines.items()
            if spec.role != MachineRole.SERVER or name in keep
        }
        links = {
            pair: link
            for pair, link in self.links.items()
            if pair[0] in machines and pair[1] in machines
        }
        return PlatformSpec(machines=machines, links=links, default_link=self.default_link)

    def __repr__(self) -> str:
        return (
            f"<PlatformSpec servers={list(self.server_names())} agent={self.agent_name} "
            f"clients={list(self.client_names())}>"
        )
