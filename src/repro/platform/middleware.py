"""The NetSolve-like middleware harness.

:class:`GridMiddleware` assembles a complete client-agent-server deployment
inside the discrete-event simulation: the ground-truth servers (with memory
pressure and speed noise), their load monitors, the agent with its heuristic
and Historical Trace Manager, the client submitting a metatask, and NetSolve's
fault-tolerance (resubmission of failed tasks).  One middleware instance
executes one run; the experiment harness builds a fresh instance per
(metatask, heuristic) pair.

This is the substitute for the real NetSolve deployment of the paper's
experiments — see DESIGN.md §2 for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.heuristics import Heuristic, create_heuristic
from ..core.htm import HistoricalTraceManager
from ..errors import NoCandidateServer, PlatformError, TaskRejected
from ..obs import MetricSeries, MetricsSampler, TraceEvent, Tracer, middleware_counters
from ..simulation import Environment, RandomStreams
from ..workload.metatask import Metatask
from ..workload.problems import ProblemCatalogue, PAPER_CATALOGUE
from ..workload.tasks import Task, TaskStatus
from .agent import Agent
from .client import Client
from .faults import (
    FaultSchedule,
    FaultTolerancePolicy,
    MemoryModel,
    OutageWindow,
    SlowdownWindow,
    SpeedNoiseModel,
)
from .monitors import LoadMonitor
from .server import RESOURCE_CPU, ComputeServer
from .spec import MachineRole, PlatformSpec

__all__ = ["MiddlewareConfig", "RunResult", "GridMiddleware"]


@dataclass(frozen=True)
class MiddlewareConfig:
    """Tunable knobs of a middleware deployment.

    The defaults correspond to the setting used for the paper's tables:
    30-second monitor reports, 2 % CPU speed noise, memory accounting with
    collapse enabled, fault tolerance reserved to the stock NetSolve agent
    (i.e. the MCT heuristic).
    """

    monitor_period_s: float = 30.0
    monitor_delay_s: float = 0.05
    monitor_jitter_s: float = 2.0
    memory_enabled: bool = True
    memory_model: MemoryModel = MemoryModel(enabled=True)
    noise_model: Optional[SpeedNoiseModel] = SpeedNoiseModel()
    fault_tolerance: FaultTolerancePolicy = FaultTolerancePolicy()
    #: Apply fault tolerance only to these heuristics (the paper's NetSolve
    #: MCT benefits from resubmission, the new heuristics did not).
    fault_tolerant_heuristics: tuple = ("mct",)
    htm_resync: bool = True
    htm_model_communication: bool = True
    #: Use the HTM's cached-baseline prediction fast path (see
    #: :class:`repro.core.htm.HistoricalTraceManager`).
    htm_incremental: bool = True
    seed: int = 0
    #: Hard bound on the simulated time of a run (safety net).
    max_horizon_s: float = 1_000_000.0
    #: Optional deterministic schedule of server outage / slowdown windows
    #: (the scenario subsystem's churn model).  ``None`` disables it.
    fault_schedule: Optional[FaultSchedule] = None

    def effective_memory_model(self) -> MemoryModel:
        """Memory model actually applied to servers (honours ``memory_enabled``)."""
        if not self.memory_enabled:
            return MemoryModel(enabled=False)
        return self.memory_model

    def fault_policy_for(self, heuristic_name: str) -> FaultTolerancePolicy:
        """Fault-tolerance policy applied to runs of the given heuristic."""
        if heuristic_name in self.fault_tolerant_heuristics:
            return self.fault_tolerance
        return FaultTolerancePolicy.disabled()


@dataclass
class RunResult:
    """Everything recorded during one middleware run."""

    heuristic: str
    metatask_name: str
    tasks: List[Task]
    duration: float
    agent_decisions: Dict[str, int] = field(default_factory=dict)
    server_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    seed: int = 0
    #: ``True`` when the run hit ``max_horizon_s`` before every task reached a
    #: terminal state; the in-flight tasks were then finalised as failed with
    #: reason ``"horizon"``.  Campaign assembly surfaces every truncated cell
    #: in the table notes (see :func:`repro.experiments.campaign.run_campaign`),
    #: so truncated runs are never *silently* mixed into the column means —
    #: check this flag to exclude them outright.
    truncated: bool = False
    #: Hot-path work counters harvested after the run (see
    #: :func:`repro.obs.counters.middleware_counters`).  Deterministic per
    #: cell, but an implementation measure: excluded from records/fingerprints.
    counters: Dict[str, int] = field(default_factory=dict)
    #: Report-bus health: counts plus staleness-at-dispatch of the load
    #: report each mapping decision relied on (virtual seconds).
    monitor_summary: Dict[str, float] = field(default_factory=dict)
    #: Virtual-time trace of the run (empty unless a tracer was attached).
    trace_events: Tuple[TraceEvent, ...] = ()
    #: Events the tracer's bounded ring had to drop (0 = complete trace).
    trace_dropped: int = 0
    #: Fixed-interval metric samples (``None`` unless a sampler was attached).
    metric_series: Optional[MetricSeries] = None

    @property
    def completed_tasks(self) -> List[Task]:
        """Tasks that ran to successful completion."""
        return [task for task in self.tasks if task.completed]

    @property
    def failed_tasks(self) -> List[Task]:
        """Tasks that never completed."""
        return [task for task in self.tasks if not task.completed]

    @property
    def completed_count(self) -> int:
        """Number of completed tasks (the paper's "number of completed tasks")."""
        return len(self.completed_tasks)

    @property
    def failed_count(self) -> int:
        """Number of tasks that never completed."""
        return len(self.tasks) - self.completed_count

    def task_by_id(self, task_id: str) -> Task:
        """Look a task up by identifier."""
        for task in self.tasks:
            if task.task_id == task_id:
                return task
        # repro: allow[EXC-BARE] mapping-protocol lookup: callers rely on
        # KeyError semantics (pinned by tests/platform/test_middleware.py)
        raise KeyError(task_id)


class GridMiddleware:
    """A complete simulated NetSolve deployment for one run.

    Parameters
    ----------
    platform:
        The machines and links (e.g. from :mod:`repro.workload.testbed`).
    heuristic:
        Either a heuristic instance or a registry name (``"mct"``, ``"hmct"``,
        ``"mp"``, ``"msf"``, ...).
    catalogue:
        The problem catalogue servers register from (defaults to the paper's).
    config:
        Middleware knobs; see :class:`MiddlewareConfig`.
    server_problems:
        Optional mapping server name → iterable of problem names it registers.
        By default a server registers every catalogue problem it has a
        measured cost for (or all problems when it has none).
    """

    def __init__(
        self,
        platform: PlatformSpec,
        heuristic: Union[Heuristic, str],
        catalogue: ProblemCatalogue = PAPER_CATALOGUE,
        config: Optional[MiddlewareConfig] = None,
        server_problems: Optional[Mapping[str, Iterable[str]]] = None,
        tracer: Optional[Tracer] = None,
        sampler: Optional[MetricsSampler] = None,
    ):
        self.platform = platform
        self.catalogue = catalogue
        self.config = config if config is not None else MiddlewareConfig()
        self.heuristic = (
            heuristic if isinstance(heuristic, Heuristic) else create_heuristic(heuristic)
        )
        self.streams = RandomStreams(self.config.seed)

        self.env = Environment()
        self.servers: Dict[str, ComputeServer] = {}
        self.monitors: Dict[str, LoadMonitor] = {}

        htm = None
        if self.heuristic.requires_htm:
            htm = HistoricalTraceManager(
                resync_on_completion=self.config.htm_resync,
                model_communication=self.config.htm_model_communication,
                incremental_predictions=self.config.htm_incremental,
            )
        self.agent = Agent(self.env, self.heuristic, htm=htm)
        # The trace bus (repro.obs).  ``tracer is None`` keeps every hook a
        # single attribute test — the zero-overhead-when-off contract.
        self.tracer = tracer
        self.agent.tracer = tracer
        if self.agent.htm is not None:
            self.agent.htm.tracer = tracer
        # The metrics bus (repro.obs): same ``is None`` zero-overhead contract
        # as the tracer; its sampling callbacks only *read* simulation state,
        # so a sampled run's numbers equal an unsampled run's.
        self.sampler = sampler
        self.fault_policy = self.config.fault_policy_for(self.heuristic.name)

        memory_model = self.config.effective_memory_model()
        for name in platform.server_names():
            spec = platform.machine(name)
            problems = self._problems_for(name, server_problems)
            server = ComputeServer(
                env=self.env,
                spec=spec,
                problems=problems,
                catalogue=catalogue,
                memory_model=memory_model,
                noise_model=self.config.noise_model,
                rng=self.streams[f"speed-noise/{name}"],
            )
            server.on_completion.append(self._on_task_completed)
            server.on_failure.append(self._on_task_failed)
            server.on_collapse.append(self._on_server_collapse)
            server.on_recovery.append(self._on_server_recovery)
            self.servers[name] = server
            self.agent.register_server(server)
            self.monitors[name] = LoadMonitor(
                env=self.env,
                server=server,
                deliver=self.agent.receive_load_report,
                period=self.config.monitor_period_s,
                delay=self.config.monitor_delay_s,
                jitter=self.config.monitor_jitter_s,
                rng=self.streams[f"monitor/{name}"],
            )

        self._wire_fault_schedule()

        self._tasks: List[Task] = []
        self._terminal = 0
        self._expected = 0
        # Incremental lifecycle counts: sampling reads them in O(1) instead
        # of scanning the task list at every sample.
        self._submitted_count = 0
        self._completed_count = 0
        self._failed_count = 0
        self._finished_event = None
        self._ran = False

    def _wire_fault_schedule(self) -> None:
        """Turn the configured fault schedule into simulation-clock callbacks.

        Every window boundary becomes a timeout on the environment's calendar,
        so the schedule replays identically under every heuristic and every
        campaign executor (it depends on the simulated clock only).
        """
        schedule = self.config.fault_schedule
        if not schedule:
            return
        unknown = [n for n in schedule.server_names() if n not in self.servers]
        if unknown:
            raise PlatformError(
                f"fault schedule targets unknown servers {sorted(unknown)}; "
                f"platform has {sorted(self.servers)}"
            )
        # Same-instant timeouts fire in creation order, so the wiring order
        # encodes the boundary semantics of back-to-back windows (declaration
        # order is not required to be sorted):
        # * slowdowns interleave start/end in chronological order — the old
        #   window's end-callback (restore 1.0) must fire before the new
        #   window's start-callback, or it would undo it;
        # * outages create every begin-callback before any end-callback — at a
        #   shared boundary the outage depth then goes 1 → 2 → 1 and the
        #   server stays down continuously instead of flapping up/down (no
        #   spurious agent re-registration between touching windows).
        ordered = sorted(schedule.windows, key=lambda w: (w.start_s, w.end_s))
        slowdowns = [w for w in ordered if isinstance(w, SlowdownWindow)]
        outages = [w for w in ordered if isinstance(w, OutageWindow)]
        unknown_kinds = [w for w in ordered if not isinstance(w, (SlowdownWindow, OutageWindow))]
        if unknown_kinds:  # pragma: no cover - defensive
            raise PlatformError(f"unknown fault window type {type(unknown_kinds[0])!r}")
        tracer = self.tracer
        for window in slowdowns:
            server = self.servers[window.server]
            start = self.env.timeout(window.start_s)
            start.callbacks.append(
                lambda _evt, s=server, f=window.factor: s.set_slowdown(f)
            )
            if tracer is not None:
                start.callbacks.append(
                    lambda _evt, t=window.start_s, n=window.server, f=window.factor: tracer.emit(
                        t, "fault.slowdown.begin", server=n, factor=f
                    )
                )
            end = self.env.timeout(window.end_s)
            end.callbacks.append(lambda _evt, s=server: s.set_slowdown(1.0))
            if tracer is not None:
                end.callbacks.append(
                    lambda _evt, t=window.end_s, n=window.server: tracer.emit(
                        t, "fault.slowdown.end", server=n
                    )
                )
        for window in outages:
            start = self.env.timeout(window.start_s)
            start.callbacks.append(
                lambda _evt, s=self.servers[window.server]: s.begin_outage()
            )
            if tracer is not None:
                start.callbacks.append(
                    lambda _evt, t=window.start_s, n=window.server: tracer.emit(
                        t, "fault.outage.begin", server=n
                    )
                )
        for window in outages:
            end = self.env.timeout(window.end_s)
            end.callbacks.append(
                lambda _evt, s=self.servers[window.server]: s.end_outage()
            )
            if tracer is not None:
                end.callbacks.append(
                    lambda _evt, t=window.end_s, n=window.server: tracer.emit(
                        t, "fault.outage.end", server=n
                    )
                )

    # ------------------------------------------------------------------ #
    # setup helpers
    # ------------------------------------------------------------------ #
    def _problems_for(
        self, server_name: str, server_problems: Optional[Mapping[str, Iterable[str]]]
    ) -> List[str]:
        if server_problems is not None and server_name in server_problems:
            return list(server_problems[server_name])
        measured = [p.name for p in self.catalogue if server_name in p.known_servers()]
        return measured if measured else [p.name for p in self.catalogue]

    # ------------------------------------------------------------------ #
    # task lifecycle
    # ------------------------------------------------------------------ #
    def submit(self, task: Task) -> None:
        """Entry point used by clients: schedule and dispatch one task."""
        task.status = TaskStatus.SUBMITTED
        self._submitted_count += 1
        if self.tracer is not None:
            self.tracer.emit(
                self.env.now,
                "task.submit",
                task=task.task_id,
                problem=task.problem.name,
            )
        self._dispatch(task)

    def _dispatch(self, task: Task) -> None:
        now = self.env.now
        try:
            decision = self.agent.schedule(task)
        except NoCandidateServer:
            task.mark_failed(now, "no candidate server")
            if self.tracer is not None:
                self.tracer.emit(
                    now, "task.reject", task=task.task_id, reason="no candidate server"
                )
            self._task_terminal(task)
            return
        server = self.servers[decision.server]
        task.new_attempt(decision.server, mapped_at=now)
        try:
            server.submit(task)
        except TaskRejected as exc:
            task.mark_failed(now, str(exc))
            if self.tracer is not None:
                self.tracer.emit(
                    now,
                    "task.reject",
                    task=task.task_id,
                    server=decision.server,
                    reason=str(exc),
                )
            self.agent.notify_failure(task, decision.server, now)
            self._maybe_retry(task, now)

    def _on_task_completed(self, task: Task, at: float) -> None:
        server_name = task.attempts[-1].server
        if self.tracer is not None:
            self.tracer.emit(
                at, "task.complete", task=task.task_id, server=server_name
            )
        if self.sampler is not None:
            self.sampler.note_completion(at, at - task.arrival)
        self.agent.notify_completion(task, server_name, at)
        self._task_terminal(task)

    def _on_task_failed(self, task: Task, at: float, reason: str) -> None:
        server_name = task.attempts[-1].server if task.attempts else "?"
        if self.tracer is not None:
            self.tracer.emit(
                at, "task.fail", task=task.task_id, server=server_name, reason=reason
            )
        self.agent.notify_failure(task, server_name, at)
        self._maybe_retry(task, at)

    def _maybe_retry(self, task: Task, at: float) -> None:
        if self.fault_policy.should_retry(task.n_attempts):
            if self.tracer is not None:
                self.tracer.emit(
                    at, "task.retry", task=task.task_id, attempt=task.n_attempts
                )
            delay = max(self.fault_policy.retry_delay_s, 0.0)
            # The task keeps its FAILED status during the back-off window and
            # only becomes SUBMITTED when the deferred dispatch actually
            # fires; flipping it eagerly here made the task misreport as
            # submitted for ``retry_delay_s`` seconds, so a concurrent
            # terminal check could miscount it as in flight.
            timeout = self.env.timeout(delay)
            timeout.callbacks.append(lambda _evt, t=task: self._redispatch(t))
        else:
            self._task_terminal(task)

    def _redispatch(self, task: Task) -> None:
        """Deferred retry: the task re-enters the submitted state only now."""
        task.status = TaskStatus.SUBMITTED
        self._dispatch(task)

    def _on_server_collapse(self, server: ComputeServer, at: float) -> None:
        if self.tracer is not None:
            self.tracer.emit(at, "server.collapse", server=server.name)
        self.agent.notify_server_down(server.name, at)

    def _on_server_recovery(self, server: ComputeServer, at: float) -> None:
        if self.tracer is not None:
            self.tracer.emit(at, "server.recover", server=server.name)
        self.agent.notify_server_up(server.name, at)

    def _task_terminal(self, task: Task) -> None:
        self._terminal += 1
        if task.completed:
            self._completed_count += 1
        else:
            self._failed_count += 1
        if self._finished_event is not None and self._terminal >= self._expected:
            if not self._finished_event.triggered:
                self._finished_event.succeed()

    # ------------------------------------------------------------------ #
    # metric sampling
    # ------------------------------------------------------------------ #
    def _metrics_loop(self):
        """Self-rescheduling sampling process (the LoadMonitor idiom).

        Samples at t=0 and then every ``sampler.interval`` virtual seconds.
        The loop only ever *reads* state, so the extra calendar entries can
        never change a simulated number: a sampled run's records equal an
        unsampled run's, and the samples themselves are byte-identical at
        any ``--jobs`` level.
        """
        while True:
            self._take_sample()
            yield self.env.timeout(self.sampler.interval)

    def _take_sample(self) -> None:
        """Append one metric row at the current virtual time (idempotent)."""
        sampler = self.sampler
        now = self.env.now
        times = sampler.series.times
        if times and times[-1] == now:
            return  # the end-of-run sample landed on a scheduled tick
        throughput, latency = sampler.window_stats(now)
        row: Dict[str, float] = {
            "inflight": float(self._submitted_count - self._terminal),
            "completed": float(self._completed_count),
            "failed": float(self._failed_count),
            "throughput_w": throughput,
            "latency_w": latency,
            "staleness_s": self._mean_report_staleness(now),
            "htm_unfinished": float(self._htm_unfinished()),
        }
        for name in sorted(self.servers):
            server = self.servers[name]
            row[f"queue.{name}"] = float(server.network.active_count())
            row[f"util.{name}"] = server.network.utilization(RESOURCE_CPU)
        sampler.record(now, row)

    def _mean_report_staleness(self, now: float) -> float:
        """Mean age of the freshest load report per server (0.0 = none yet)."""
        total = 0.0
        count = 0
        for name in sorted(self.servers):
            report = self.agent.registration(name).last_report
            if report is not None:
                total += now - report.emitted_at
                count += 1
        return total / count if count else 0.0

    def _htm_unfinished(self) -> int:
        """Tasks the HTM still tracks as unfinished, across its server traces."""
        htm = self.agent.htm
        if htm is None:
            return 0
        return htm.unfinished_total()

    # ------------------------------------------------------------------ #
    # running
    # ------------------------------------------------------------------ #
    def run(self, workload: Union[Metatask, Sequence[Task]], client_name: str = "zanzibar") -> RunResult:
        """Execute a metatask (or an explicit task list) to completion.

        The run ends when every task reached a terminal state (completed or
        definitively failed) or when the safety horizon is hit.
        """
        if self._ran:
            raise PlatformError("a GridMiddleware instance can only run once; build a new one")
        self._ran = True

        if isinstance(workload, Metatask):
            tasks = workload.instantiate(client=client_name)
            metatask_name = workload.name
        else:
            tasks = list(workload)
            metatask_name = "custom"

        self._tasks = tasks
        self._expected = len(tasks)
        self._finished_event = self.env.event()
        Client(self.env, client_name, tasks, submit=self.submit)
        if self.sampler is not None:
            self.env.process(self._metrics_loop(), name="metrics-sampler")

        horizon = self.env.timeout(self.config.max_horizon_s)
        self.env.run(until=self.env.any_of([self._finished_event, horizon]))

        truncated = self._terminal < self._expected
        if truncated:
            # The safety horizon fired with tasks still in flight: finalise
            # them so no task leaves the run in a non-terminal status with no
            # failure reason or date.
            now = self.env.now
            for task in tasks:
                if task.status not in (TaskStatus.COMPLETED, TaskStatus.FAILED):
                    task.mark_failed(now, "horizon")
        if self.sampler is not None:
            # One closing sample at the run's end state (skipped when the run
            # ended exactly on a scheduled tick).  Taken *before* horizon
            # finalisation would be dishonest — but the truncated tasks were
            # genuinely in flight at env.now, and the incremental counts the
            # row reads intentionally exclude the post-hoc 'horizon' failures.
            self._take_sample()

        return RunResult(
            heuristic=self.heuristic.name,
            metatask_name=metatask_name,
            tasks=tasks,
            duration=self.env.now,
            agent_decisions=dict(self.agent.stats.decisions_per_server),
            server_stats={name: server.stats.as_dict() for name, server in self.servers.items()},
            seed=self.config.seed,
            truncated=truncated,
            counters=middleware_counters(self),
            monitor_summary=self._monitor_summary(),
            trace_events=self.tracer.events() if self.tracer is not None else (),
            trace_dropped=self.tracer.dropped if self.tracer is not None else 0,
            metric_series=self.sampler.series if self.sampler is not None else None,
        )

    def _monitor_summary(self) -> Dict[str, float]:
        """Report-bus health of the run (counts + staleness-at-dispatch)."""
        stats = self.agent.stats
        with_report = stats.dispatches_with_report
        return {
            "reports_sent": float(sum(m.reports_sent for m in self.monitors.values())),
            "reports_received": float(stats.reports_received),
            "reports_down_received": float(stats.reports_down_received),
            "reports_dropped": float(stats.reports_dropped),
            "dispatches_with_report": float(with_report),
            "dispatches_without_report": float(stats.dispatches_without_report),
            "staleness_mean_s": (
                stats.staleness_sum / with_report if with_report else 0.0
            ),
            "staleness_max_s": stats.staleness_max,
        }

    def __repr__(self) -> str:
        return (
            f"<GridMiddleware heuristic={self.heuristic.name!r} "
            f"servers={list(self.servers)}>"
        )
