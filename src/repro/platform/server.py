"""Ground-truth computational servers.

A :class:`ComputeServer` executes tasks under the shared-resource model of
Section 2.3: every task goes through an input-data transfer, a computation
and an output-data transfer; each phase is served by a processor-shared
resource of the server (``net_in``, ``cpu``, ``net_out``), with egalitarian
sharing.  The server additionally models:

* memory pressure: thrashing slowdown and collapse when the resident set
  exceeds memory + swap (:class:`~repro.platform.faults.MemoryModel`);
* CPU speed noise (:class:`~repro.platform.faults.SpeedNoiseModel`) which is
  what distinguishes the "real" execution from the HTM's idealised
  simulation, as in Table 1 of the paper;
* load-average tracking used by the monitors of the baseline MCT.

The server is the *ground truth*: the agent never reads its internal state
directly, only what monitors report (for MCT) or what the HTM predicts (for
the paper's heuristics).

The execution itself runs on the virtual-time fluid core
(:mod:`repro.simulation.fluid`): ``_sync_wakeup`` peeks the network's next
event in O(1) per resource and ``_advance`` costs O(log J) per completion, so
a heavily loaded server stays cheap to simulate even with thousands of
resident tasks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set

import numpy as np

from ..errors import PlatformError, TaskRejected
from ..simulation import Environment, FluidEvent, FluidNetwork, FluidStage
from ..workload.problems import PhaseCosts, ProblemCatalogue
from ..workload.tasks import Task
from .faults import MemoryModel, SpeedNoiseModel
from .spec import MachineSpec

__all__ = [
    "RESOURCE_NET_IN",
    "RESOURCE_CPU",
    "RESOURCE_NET_OUT",
    "ServerStats",
    "ComputeServer",
]

RESOURCE_NET_IN = "net_in"
RESOURCE_CPU = "cpu"
RESOURCE_NET_OUT = "net_out"

#: Time constant (seconds) of the exponentially-smoothed load average.
LOAD_AVERAGE_TAU = 60.0


@dataclass
class ServerStats:
    """Counters accumulated by a server during a run."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    collapses: int = 0
    outages: int = 0
    peak_cpu_tasks: int = 0
    peak_resident_mb: float = 0.0
    busy_compute_seconds: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        """Return the counters as a plain dictionary (for reports)."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "collapses": self.collapses,
            "outages": self.outages,
            "peak_cpu_tasks": self.peak_cpu_tasks,
            "peak_resident_mb": round(self.peak_resident_mb, 2),
            "busy_compute_seconds": round(self.busy_compute_seconds, 2),
        }


class ComputeServer:
    """A time-shared computational server of the client-agent-server model.

    Parameters
    ----------
    env:
        The discrete-event environment.
    spec:
        Machine description (Table 2 entry or a custom one).
    problems:
        Names of the problems this server can solve (its registration list).
    catalogue:
        The problem catalogue used to look up unloaded costs.
    memory_model / noise_model:
        Optional fault models; ``None`` disables them.
    rng:
        Random generator for the speed noise.
    """

    def __init__(
        self,
        env: Environment,
        spec: MachineSpec,
        problems: Iterable[str],
        catalogue: ProblemCatalogue,
        memory_model: Optional[MemoryModel] = None,
        noise_model: Optional[SpeedNoiseModel] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.env = env
        self.spec = spec
        self.name = spec.name
        self.catalogue = catalogue
        self._problems: Set[str] = set(problems)
        self.memory_model = memory_model if memory_model is not None else MemoryModel(enabled=False)
        self.noise_model = noise_model
        # repro: allow[DET-RNG] interactive convenience fallback only — every
        # campaign/experiment path passes a generator seeded from the root seed
        self._rng = rng if rng is not None else np.random.default_rng()

        self.network = FluidNetwork(
            {RESOURCE_NET_IN: 1.0, RESOURCE_CPU: float(spec.cpu_count), RESOURCE_NET_OUT: 1.0},
            time=env.now,
            per_job_caps={RESOURCE_CPU: 1.0},
        )
        self._base_cpu_capacity = float(spec.cpu_count)
        self._noise_factor = 1.0
        self._slowdown_factor = 1.0
        # Number of scheduled outage windows currently open.  A counter, not
        # a flag: the middleware fires every begin-callback before any
        # end-callback at a shared boundary instant, so touching windows
        # overlap here (depth 1 → 2 → 1) and the server stays down
        # continuously as long as *any* window is open.
        self._outage_depth = 0
        # Simulated date a pending memory-collapse recovery is due, or None.
        # An outage window closing earlier must not cut this downtime short.
        self._collapse_recovery_at: Optional[float] = None
        self._up = True
        self._tasks: Dict[str, Task] = {}
        self._resident_mb = 0.0
        self._wake_token = 0

        self._load_ema = 0.0
        self._load_ema_time = env.now
        self._last_compute_count = 0
        self._last_compute_time = env.now

        self.stats = ServerStats()

        #: Callbacks ``f(task, time)`` invoked on successful completion.
        self.on_completion: List[Callable[[Task, float], None]] = []
        #: Callbacks ``f(task, time, reason)`` invoked when a task fails.
        self.on_failure: List[Callable[[Task, float, str], None]] = []
        #: Callbacks ``f(server, time)`` invoked when the server collapses.
        self.on_collapse: List[Callable[["ComputeServer", float], None]] = []
        #: Callbacks ``f(server, time)`` invoked when the server recovers.
        self.on_recovery: List[Callable[["ComputeServer", float], None]] = []

        if self.noise_model is not None and self.noise_model.enabled:
            self.env.process(self._noise_process(), name=f"noise-{self.name}")

    # ------------------------------------------------------------------ #
    # introspection (used by monitors and tests, never by heuristics directly)
    # ------------------------------------------------------------------ #
    @property
    def is_up(self) -> bool:
        """Whether the server is currently registered and accepting tasks."""
        return self._up

    def can_solve(self, problem_name: str) -> bool:
        """Whether the server registered the given problem."""
        return problem_name in self._problems

    def problem_names(self) -> Set[str]:
        """Names of the problems the server registered with the agent."""
        return set(self._problems)

    def cpu_task_count(self) -> int:
        """Number of tasks currently in their computation phase."""
        self._advance(self.env.now)
        return self.network.active_count(RESOURCE_CPU)

    def resident_task_count(self) -> int:
        """Number of tasks currently resident on the server (any phase)."""
        self._advance(self.env.now)
        return len(self._tasks)

    def resident_memory_mb(self) -> float:
        """Memory currently held by resident tasks."""
        self._advance(self.env.now)
        return self._resident_mb

    def load_average(self) -> float:
        """Exponentially smoothed number of tasks in the compute phase.

        This emulates the UNIX one-minute load average that NetSolve servers
        report to the agent.
        """
        self._advance(self.env.now)
        self._update_load_ema()
        return self._load_ema

    def cpu_capacity(self) -> float:
        """Current effective CPU capacity (1.0 = nominal unloaded speed)."""
        return self.network.capacity(RESOURCE_CPU)

    def costs_for(self, problem_name: str) -> PhaseCosts:
        """Unloaded costs of a problem on this server."""
        problem = self.catalogue.get(problem_name)
        return problem.costs_on(
            self.name, speed_mflops=self.spec.speed_mflops
        )

    def costs_for_problem_spec(self, problem) -> PhaseCosts:
        """Unloaded costs of a :class:`~repro.workload.problems.ProblemSpec`.

        This is the static information the server hands to the agent when it
        registers; the Historical Trace Manager uses it as its costs provider.
        """
        return problem.costs_on(self.name, speed_mflops=self.spec.speed_mflops)

    # ------------------------------------------------------------------ #
    # task submission
    # ------------------------------------------------------------------ #
    def submit(self, task: Task) -> None:
        """Start executing ``task`` on this server (input transfer begins now).

        Raises
        ------
        TaskRejected
            If the server is down, does not know the problem, or rejects the
            task for lack of memory (when the memory model is in "reject"
            mode).  The caller (middleware) decides whether to retry.
        """
        now = self.env.now
        self._advance(now)
        if not self._up:
            self.stats.rejected += 1
            raise TaskRejected(self.name, task.task_id, "server is down")
        if not self.can_solve(task.problem.name):
            self.stats.rejected += 1
            raise TaskRejected(self.name, task.task_id, f"cannot solve {task.problem.name}")
        if task.task_id in self._tasks:
            raise PlatformError(f"task {task.task_id} is already running on {self.name}")

        memory_needed = task.problem.memory_mb if self.memory_model.enabled else 0.0
        would_be_resident = self._resident_mb + memory_needed
        if (
            self.memory_model.enabled
            and not self.memory_model.collapse
            and would_be_resident > self.spec.collapse_threshold_mb
        ):
            self.stats.rejected += 1
            raise TaskRejected(self.name, task.task_id, "not enough memory")

        costs = self.costs_for_problem_spec(task.problem)
        stages = (
            FluidStage(RESOURCE_NET_IN, costs.input_s),
            FluidStage(RESOURCE_CPU, costs.compute_s),
            FluidStage(RESOURCE_NET_OUT, costs.output_s),
        )
        self._tasks[task.task_id] = task
        self._resident_mb += memory_needed
        self.stats.submitted += 1
        self.stats.peak_resident_mb = max(self.stats.peak_resident_mb, self._resident_mb)
        if task.attempts and task.attempts[-1].server == self.name:
            if task.attempts[-1].started_at is None:
                task.attempts[-1].started_at = now
            task.attempts[-1].unloaded_costs = costs

        events = self.network.add_task(task.task_id, arrival=now, stages=stages, now=now)
        self._handle_events(events)
        self._refresh_cpu_capacity()

        if (
            self.memory_model.enabled
            and self.memory_model.collapse
            and self._resident_mb > self.spec.collapse_threshold_mb
        ):
            # The new task pushed the server past memory + swap: it collapses.
            self._collapse(now)
            return

        self._sample_compute_count()
        self._sync_wakeup()

    # ------------------------------------------------------------------ #
    # time evolution
    # ------------------------------------------------------------------ #
    def _advance(self, now: float) -> None:
        """Advance the fluid network to ``now`` and process what happened."""
        if now <= self.network.time:
            return
        events = self.network.advance_to(now)
        self._handle_events(events)

    def _handle_events(self, events: List[FluidEvent]) -> None:
        for event in events:
            task = self._tasks.get(event.key)
            if task is None:
                continue
            attempt = task.attempts[-1] if task.attempts else None
            if attempt is not None and attempt.server == self.name:
                if event.stage_index == 0 and not event.task_finished:
                    attempt.input_done_at = event.time
                elif event.stage_index == 1 and not event.task_finished:
                    attempt.compute_done_at = event.time
            if event.task_finished:
                self._complete_task(task, event.time)

    def _complete_task(self, task: Task, at: float) -> None:
        self._tasks.pop(task.task_id, None)
        self.network.forget(task.task_id)
        if self.memory_model.enabled:
            self._resident_mb = max(0.0, self._resident_mb - task.problem.memory_mb)
        costs = self.costs_for_problem_spec(task.problem)
        self.stats.completed += 1
        self.stats.busy_compute_seconds += costs.compute_s
        task.mark_completed(at)
        self._refresh_cpu_capacity()
        self._sample_compute_count()
        for callback in list(self.on_completion):
            callback(task, at)
        self._sync_wakeup()

    # ------------------------------------------------------------------ #
    # collapse / recovery
    # ------------------------------------------------------------------ #
    def _go_down(self, now: float, reason: str) -> None:
        """Take the server down, failing every resident task with ``reason``."""
        self._up = False
        victims = list(self._tasks.values())
        self._tasks.clear()
        self._resident_mb = 0.0
        for task in victims:
            if task.task_id in self.network:
                self.network.remove_task(task.task_id, now)
            task.mark_failed(now, f"server {self.name} {reason}")
            self.stats.failed += 1
        self._refresh_cpu_capacity()
        for callback in list(self.on_collapse):
            callback(self, now)
        for task in victims:
            for callback in list(self.on_failure):
                callback(task, now, reason)

    def _collapse(self, now: float) -> None:
        self.stats.collapses += 1
        self._go_down(now, "collapsed (out of memory)")
        # Schedule the recovery.
        self._collapse_recovery_at = now + self.memory_model.recovery_s
        recovery = self.env.timeout(self.memory_model.recovery_s)
        recovery.callbacks.append(lambda _evt: self._recover_from_collapse())

    def _recover_from_collapse(self) -> None:
        """The memory model's mandated downtime is over; recover unless a
        scheduled outage window is still holding the server down."""
        self._collapse_recovery_at = None
        self._recover()

    def _recover(self) -> None:
        if self._outage_depth > 0:
            return  # a scheduled outage window is still open; stay down
        if self._up:
            return  # already recovered (e.g. an outage ended before this timer)
        self._up = True
        for callback in list(self.on_recovery):
            callback(self, self.env.now)
        self._sync_wakeup()

    # ------------------------------------------------------------------ #
    # scheduled faults (scenario fault/churn schedules)
    # ------------------------------------------------------------------ #
    def begin_outage(self) -> None:
        """Start a scheduled outage: resident tasks fail, server goes down.

        Unlike a memory collapse, no recovery is scheduled here — the caller
        (the middleware's fault-schedule wiring) calls :meth:`end_outage` at
        the end of the window.  Calling this while already down (e.g. during
        a collapse recovery) only extends the downtime.
        """
        now = self.env.now
        self._advance(now)
        self.stats.outages += 1
        self._outage_depth += 1
        if self._up:
            self._go_down(now, "outage (scheduled)")
        # else: already down; the outage merely overlaps the collapse.

    def end_outage(self) -> None:
        """End one scheduled outage window; the server re-registers with the
        agent once no window remains open *and* no collapse downtime is still
        pending (an outage overlapping a collapse only extends the downtime,
        never shortens the memory model's ``recovery_s``)."""
        self._outage_depth = max(0, self._outage_depth - 1)
        if self._outage_depth > 0 or self._up or self._collapse_recovery_at is not None:
            return
        self._recover()

    def set_slowdown(self, factor: float) -> None:
        """Multiply the CPU capacity by ``factor`` (1.0 restores nominal speed).

        Composes multiplicatively with the speed-noise and thrashing models;
        takes effect immediately for every resident task (fluid capacities are
        piecewise constant).
        """
        if factor <= 0:
            raise PlatformError("slowdown factor must be strictly positive")
        now = self.env.now
        self._advance(now)
        self._slowdown_factor = float(factor)
        self._refresh_cpu_capacity()
        self._sync_wakeup()

    # ------------------------------------------------------------------ #
    # capacity management
    # ------------------------------------------------------------------ #
    def _refresh_cpu_capacity(self) -> None:
        thrash = self.memory_model.thrash_factor(self._resident_mb, self.spec.usable_memory_mb)
        per_cpu_speed = self._noise_factor * thrash * self._slowdown_factor
        capacity = self._base_cpu_capacity * per_cpu_speed
        if abs(capacity - self.network.capacity(RESOURCE_CPU)) > 1e-12:
            events = self.network.set_capacity(
                RESOURCE_CPU, capacity, self.env.now, per_job_cap=per_cpu_speed
            )
            self._handle_events(events)

    def _noise_process(self):
        """Background process redrawing the CPU speed noise factor."""
        assert self.noise_model is not None
        while True:
            yield self.env.timeout(self.noise_model.period_s)
            self._advance(self.env.now)
            self._noise_factor = self.noise_model.draw_factor(self._rng)
            self._refresh_cpu_capacity()
            self._sync_wakeup()

    # ------------------------------------------------------------------ #
    # wakeup bookkeeping
    # ------------------------------------------------------------------ #
    def _sync_wakeup(self) -> None:
        """(Re)schedule a wakeup at the next internal event of the network."""
        t_next = self.network.next_event_time()
        if t_next == math.inf:
            return
        self._wake_token += 1
        token = self._wake_token
        delay = max(0.0, t_next - self.env.now)
        timeout = self.env.timeout(delay)
        timeout.callbacks.append(lambda _evt, tok=token: self._on_wakeup(tok))

    def _on_wakeup(self, token: int) -> None:
        if token != self._wake_token:
            return  # a newer wakeup superseded this one
        self._advance(self.env.now)
        self._sync_wakeup()

    # ------------------------------------------------------------------ #
    # load average bookkeeping
    # ------------------------------------------------------------------ #
    def _sample_compute_count(self) -> None:
        self._update_load_ema()
        self._last_compute_count = self.network.active_count(RESOURCE_CPU)

    def _update_load_ema(self) -> None:
        now = self.env.now
        dt = now - self._load_ema_time
        if dt > 0:
            alpha = math.exp(-dt / LOAD_AVERAGE_TAU)
            current = self.network.active_count(RESOURCE_CPU)
            self._load_ema = current + (self._load_ema - current) * alpha
            self._load_ema_time = now

    def __repr__(self) -> str:
        return (
            f"<ComputeServer {self.name} up={self._up} resident={len(self._tasks)} "
            f"cpu_tasks={self.network.active_count(RESOURCE_CPU)}>"
        )
