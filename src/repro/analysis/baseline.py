"""Grandfathered-finding baseline: load, match and rewrite.

The baseline is a committed JSON file listing findings the team has accepted
*for now*.  ``repro check`` subtracts them from its report, so CI gates on
new findings only; ``--update-baseline`` rewrites the file to the current
finding set (the deliberate way to accept or retire debt — the diff of the
committed file is the review artefact).

Matching is by finding *identity* — ``(path, rule, snippet)``, a multiset:
two identical violations on one line of one file need two baseline entries,
and an entry stops matching the moment the offending line's text changes.
Line numbers are deliberately not part of the identity, so unrelated edits
above a grandfathered finding do not un-baseline it.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from typing import Dict, List, Sequence, Tuple, Union

from ..errors import AnalysisError
from .findings import Finding

__all__ = [
    "BASELINE_FORMAT",
    "BASELINE_VERSION",
    "load_baseline",
    "save_baseline",
    "partition_findings",
]

#: Magic ``format`` value of the baseline file.
BASELINE_FORMAT = "repro-lint-baseline"

#: Version of the baseline layout; future versions are rejected.
BASELINE_VERSION = 1


def load_baseline(
    path: Union[str, "os.PathLike[str]"],
) -> Counter:
    """Load a baseline into an identity multiset (missing file = empty)."""
    path = os.fspath(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except FileNotFoundError:
        return Counter()
    except (OSError, json.JSONDecodeError) as exc:
        raise AnalysisError(f"corrupt lint baseline {path!r}: {exc}") from exc
    if not isinstance(data, dict) or data.get("format") != BASELINE_FORMAT:
        raise AnalysisError(
            f"{path!r} is not a lint baseline (format "
            f"{data.get('format') if isinstance(data, dict) else None!r})"
        )
    version = data.get("version")
    if not isinstance(version, int) or version > BASELINE_VERSION:
        raise AnalysisError(
            f"lint baseline {path!r} written by version {version!r}; this "
            f"library reads up to {BASELINE_VERSION} — upgrade repro"
        )
    identities: Counter = Counter()
    for entry in data.get("findings", ()):
        try:
            identities[(str(entry["path"]), str(entry["rule"]), str(entry["snippet"]))] += 1
        except (KeyError, TypeError) as exc:
            raise AnalysisError(f"malformed baseline entry in {path!r}: {exc}") from exc
    return identities


def save_baseline(
    path: Union[str, "os.PathLike[str]"], findings: Sequence[Finding]
) -> str:
    """Write ``findings`` as the new baseline (atomic, canonically sorted)."""
    from ..store.journal import atomic_write_text  # deferred: import cycle

    entries = [
        {"path": path_, "rule": rule, "snippet": snippet}
        for path_, rule, snippet in sorted(
            finding.identity for finding in findings
        )
    ]
    payload = {
        "format": BASELINE_FORMAT,
        "version": BASELINE_VERSION,
        "findings": entries,
    }
    return atomic_write_text(
        os.fspath(path), json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )


def partition_findings(
    findings: Sequence[Finding], baseline: Counter
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into ``(active, baselined)`` against the multiset.

    Deterministic: findings are consumed in canonical (path, line) order, so
    with N baseline entries for one identity, the first N occurrences match.
    """
    remaining = Counter(baseline)
    active: List[Finding] = []
    grandfathered: List[Finding] = []
    for finding in sorted(findings, key=lambda f: f.sort_key):
        if remaining[finding.identity] > 0:
            remaining[finding.identity] -= 1
            grandfathered.append(finding)
        else:
            active.append(finding)
    return active, grandfathered
