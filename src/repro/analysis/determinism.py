"""Determinism rules: RNG discipline, wall clocks and iteration order.

These rules encode the invariants behind the repo's headline guarantee —
byte-identical results at any ``--jobs`` level, across store temperatures and
after kill-and-resume.  They are the parse-time counterpart of CI's runtime
byte-diff smokes: one unseeded draw or one set-order iteration in a
number-determining path passes every tier-1 test on a given machine and still
corrupts every fingerprinted cache cell across machines or hash seeds.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from .findings import Finding
from .rules import ModuleSource, Rule, dotted_name, register

__all__ = ["DetRngRule", "DetClockRule", "DetOrderRule"]


#: ``numpy.random`` attributes that are *constructors/seeding machinery*, not
#: global-state draws; everything else on ``numpy.random`` is legacy
#: global-state API and always flagged.
_NP_RANDOM_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "RandomState",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Constructors that are unseeded when called without arguments.
_SEED_REQUIRED = frozenset(
    {"numpy.random.default_rng", "numpy.random.RandomState", "random.Random"}
)


@register
class DetRngRule(Rule):
    """DET-RNG — every random draw must trace back to an explicit seed.

    Flags (outside ``repro/simulation/rng.py``, the one sanctioned stream
    factory):

    * any call into the stdlib ``random`` module — including a *seeded*
      ``random.Random(n)``: stdlib generators are a determinism hazard near
      ``hash()`` (``PYTHONHASHSEED``) and outside the house
      :class:`~repro.simulation.rng.RandomStreams` discipline, so each use
      must justify itself with an explicit allow;
    * ``numpy.random.default_rng()`` / ``RandomState()`` with no arguments
      (OS-entropy seeding: two runs can never agree);
    * any legacy ``numpy.random.*`` global-state draw (``rand``, ``seed``,
      ``shuffle``, ...), which shares hidden mutable state across callers.
    """

    id = "DET-RNG"
    title = "no unseeded or stdlib RNG outside simulation/rng.py"
    rationale = (
        "A single unseeded draw in a number-determining path breaks "
        "byte-identity across runs, --jobs levels and store temperatures; "
        "every stream must derive from the root seed."
    )

    def applies_to(self, rel: str) -> bool:
        return rel != "repro/simulation/rng.py"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func, module.imports)
            if name is None:
                continue
            if name == "random.Random" or name.startswith("random.Random."):
                yield module.finding(
                    self.id,
                    node,
                    "stdlib random.Random construction — use RandomStreams "
                    "(simulation/rng.py) or justify with an allow",
                )
            elif name.startswith("random."):
                yield module.finding(
                    self.id,
                    node,
                    f"stdlib global-state draw {name}() — use a seeded "
                    "numpy Generator from RandomStreams",
                )
            elif name in _SEED_REQUIRED and not node.args and not node.keywords:
                yield module.finding(
                    self.id,
                    node,
                    f"{name}() without a seed draws OS entropy — pass an "
                    "explicit seed derived from the root seed",
                )
            elif (
                name.startswith("numpy.random.")
                and name.count(".") == 2
                and name.rsplit(".", 1)[1] not in _NP_RANDOM_CONSTRUCTORS
            ):
                yield module.finding(
                    self.id,
                    node,
                    f"legacy numpy global-state call {name}() — draw from an "
                    "explicitly seeded Generator instead",
                )


#: Wall-clock reads that leak nondeterminism into simulated time or records.
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: The one package allowed to read the host clock: ``repro.obs`` owns wall
#: time (phase timers, throughput display) and never feeds records,
#: fingerprints or persisted result bytes.
_CLOCK_EXEMPT = "repro/obs/"


@register
class DetClockRule(Rule):
    """DET-CLOCK — no wall-clock reads anywhere except ``repro.obs``.

    Simulated time is the only clock the library may consult; the single
    exemption is the observability package, where wall time is the *point*
    (phase timers, throughput, ETA) and is kept out of records and traces by
    construction.  Everything else — including code that merely *displays*
    elapsed time — must route through ``repro.obs.perf_counter`` /
    ``repro.obs.PhaseTimer`` so every host-clock read in the tree is
    auditable from one module.
    """

    id = "DET-CLOCK"
    title = "no wall-clock reads outside repro.obs"
    rationale = (
        "Host timestamps differ on every run; one leaking into a record or "
        "a journaled cell makes byte-diff verification impossible.  Funnel "
        "wall time through repro.obs, the audited exemption."
    )

    def applies_to(self, rel: str) -> bool:
        return rel.startswith("repro/") and not rel.startswith(_CLOCK_EXEMPT)

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func, module.imports)
            if name in _CLOCK_CALLS:
                yield module.finding(
                    self.id,
                    node,
                    f"wall-clock read {name}() outside repro.obs — use "
                    "simulated time (env.now), or route the measurement "
                    "through repro.obs (perf_counter / PhaseTimer)",
                )


#: Modules whose iteration results feed records, fingerprints or persisted
#: output; raw unordered iteration there surfaces as byte drift.
_ORDER_SCOPES = (
    "repro/store/",
    "repro/results/",
    "repro/metrics/",
    "repro/experiments/",
)

#: Calls whose result order is an OS artefact wherever they appear.
_FS_ORDER_CALLS = frozenset(
    {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)

#: Enclosing calls that make iteration order irrelevant (note ``sum`` is
#: absent on purpose: float accumulation order changes the bytes).
_ORDER_NEUTRAL_CALLS = frozenset(
    {"sorted", "len", "min", "max", "any", "all", "set", "frozenset"}
)


def _set_reason(node: ast.AST, imports) -> Optional[str]:
    """Why ``node``'s value is an unordered set, or ``None``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set literal/comprehension has no defined order"
    if isinstance(node, ast.Call):
        name = dotted_name(node.func, imports)
        if name in ("set", "frozenset"):
            return f"{name}() has no defined order"
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
    ):
        return _set_reason(node.left, imports) or _set_reason(node.right, imports)
    return None


@register
class DetOrderRule(Rule):
    """DET-ORDER — unordered iteration must not feed persisted output.

    In the record/persistence layers (store, results, metrics, experiments),
    flags iteration over:

    * sets (literals, comprehensions, ``set()``/``frozenset()`` calls and
      set-algebra expressions) — Python set order varies with
      ``PYTHONHASHSEED``;
    * ``os.listdir`` / ``os.scandir`` / ``glob.*`` results (anywhere in the
      package) — filesystem enumeration order is an OS artefact;
    * ``dict.keys() / .values() / .items()`` views **in ``repro/store/``
      only**: store indexes are populated in journal-replay order, which
      varies with ``--jobs`` and commit interleaving, so raw view iteration
      there leaks commit order into listings and reports.  (Ordinary dicts
      elsewhere iterate in insertion order, which the code controls — they
      are not flagged.)

    Wrapping the iterable in ``sorted(...)`` — or consuming it with an
    order-insensitive reducer (``len``, ``min``, ``max``, ``any``, ``all``,
    ``set``) — satisfies the rule.
    """

    id = "DET-ORDER"
    title = "sorted() around unordered iteration feeding persisted output"
    rationale = (
        "Set and filesystem order vary across processes and hash seeds; "
        "store-index order varies with --jobs.  Persisted output built from "
        "them stops byte-matching."
    )

    def applies_to(self, rel: str) -> bool:
        return rel.startswith(_ORDER_SCOPES)

    def _is_order_neutral(self, module: ModuleSource, node: ast.AST) -> bool:
        """Whether an ancestor consumes ``node`` order-insensitively."""
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, ast.Call):
                name = dotted_name(ancestor.func, module.imports)
                if name in _ORDER_NEUTRAL_CALLS:
                    return True
            if isinstance(ancestor, ast.Compare) and any(
                isinstance(op, (ast.In, ast.NotIn)) for op in ancestor.ops
            ):
                return True
            if isinstance(ancestor, ast.stmt):
                break
        return False

    def _unordered_reason(self, module: ModuleSource, node: ast.AST) -> Optional[str]:
        reason = _set_reason(node, module.imports)
        if reason is not None:
            return reason
        if isinstance(node, ast.Call):
            name = dotted_name(node.func, module.imports)
            if name in _FS_ORDER_CALLS:
                return f"{name}() returns entries in filesystem order"
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("keys", "values", "items")
                and module.rel.startswith("repro/store/")
            ):
                return (
                    f".{node.func.attr}() of a store index iterates in "
                    "journal-replay (commit) order"
                )
        return None

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        candidates: list = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.For):
                candidates.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                candidates.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func, module.imports)
                if name in ("list", "tuple", "iter") and len(node.args) == 1:
                    candidates.append(node.args[0])
        for iterable in candidates:
            reason = self._unordered_reason(module, iterable)
            if reason is None:
                continue
            if self._is_order_neutral(module, iterable):
                continue
            yield module.finding(
                self.id,
                iterable,
                f"{reason} — wrap in sorted() (or consume order-"
                "insensitively) before it reaches records or persisted output",
            )
