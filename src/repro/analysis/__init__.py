"""Static analysis: the determinism & contract linter behind ``repro check``.

The repo's headline guarantee — byte-identical results at any ``--jobs``
level, across store temperatures and after kill-and-resume — rests on
conventions a runtime test can only sample: every draw traces to the root
seed, no wall clock reaches a record, unordered iteration never feeds
persisted bytes, every config field declares its fingerprint role, writes in
the persistence layers are atomic, persisted float text is exact, the stable
facade doesn't drift, and dispatch failures use the library's exception
hierarchy.  This package *proves* those contracts at parse time, on every
file, before a single simulation runs.

Layout:

* :mod:`~repro.analysis.findings` — findings and ``# repro: allow[...]``
  suppressions;
* :mod:`~repro.analysis.rules` — the source model, import resolution and the
  rule registry;
* :mod:`~repro.analysis.determinism` — DET-RNG, DET-CLOCK, DET-ORDER;
* :mod:`~repro.analysis.contracts` — FP-FIELD, IO-ATOMIC, FLOAT-FMT,
  API-SURFACE, EXC-BARE;
* :mod:`~repro.analysis.baseline` — the grandfathered-findings file;
* :mod:`~repro.analysis.runner` — discovery, suppression/baseline
  accounting, text/JSON reports and exit codes.

Entry points: ``repro check`` (CLI), :func:`repro.api.check`, or directly::

    from repro.analysis import run_check
    report = run_check(["src/repro"])
    print(report.render())
    raise SystemExit(report.exit_code)
"""

from .baseline import load_baseline, partition_findings, save_baseline
from .findings import Finding, Suppression, parse_suppressions
from .rules import RULE_REGISTRY, ModuleSource, Rule, get_rule, register, rule_ids
from .runner import CheckReport, default_baseline_path, lint_source, run_check

# Importing the rule modules is what populates RULE_REGISTRY.
from . import contracts, determinism  # noqa: F401  (registration side effect)
from .contracts import write_api_surface

__all__ = [
    "Finding",
    "Suppression",
    "parse_suppressions",
    "Rule",
    "ModuleSource",
    "RULE_REGISTRY",
    "register",
    "rule_ids",
    "get_rule",
    "CheckReport",
    "run_check",
    "lint_source",
    "default_baseline_path",
    "load_baseline",
    "save_baseline",
    "partition_findings",
    "write_api_surface",
]
