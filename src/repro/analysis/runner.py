"""The check runner: discover files, apply rules, report, gate.

:func:`run_check` is the engine behind ``repro check`` and ``api.check``:

1. discover ``.py`` files under the given paths (sorted walk — the report
   itself honours DET-ORDER);
2. parse each into a :class:`~repro.analysis.rules.ModuleSource` and run
   every registered (or selected) rule scoped to it;
3. drop findings covered by in-source ``# repro: allow[...]`` suppressions
   (counting them, and flagging reasonless allows);
4. subtract the committed baseline, or rewrite it under
   ``--update-baseline``;
5. return a :class:`CheckReport` with text/JSON renderers and the exit code
   CI gates on (0 = clean, 1 = active findings, 2 = usage error — the CLI's
   convention).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import AnalysisError
from .baseline import load_baseline, partition_findings, save_baseline
from .findings import Finding, suppression_for_line
from .rules import RULE_REGISTRY, ModuleSource, select_rules

__all__ = ["CheckReport", "run_check", "lint_source", "default_baseline_path"]

#: Rule id of the meta-finding on a reasonless ``allow``.
_SUPPRESSION_RULE = "SUP-REASON"


def _package_relative(path: str) -> str:
    """Path relative to the outermost enclosing package, POSIX separators.

    ``src/repro/store/cache.py`` → ``"repro/store/cache.py"`` (walks up
    while ``__init__.py`` exists, so scoped rules see stable module paths
    whatever directory the checker was pointed at).
    """
    path = os.path.abspath(path)
    directory = os.path.dirname(path)
    parts = [os.path.basename(path)]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        parts.append(os.path.basename(directory))
        directory = os.path.dirname(directory)
    return "/".join(reversed(parts))


def _discover(paths: Sequence[str]) -> List[str]:
    """Every ``.py`` file under ``paths``, absolute, sorted, de-duplicated."""
    files: List[str] = []
    for path in paths:
        path = os.path.abspath(os.fspath(path))
        if os.path.isfile(path):
            if path.endswith(".py"):
                files.append(path)
            continue
        if not os.path.isdir(path):
            raise AnalysisError(f"no such file or directory: {path!r}")
        for root, dirs, names in os.walk(path):
            dirs.sort()
            dirs[:] = [d for d in dirs if d != "__pycache__"]
            for name in sorted(names):
                if name.endswith(".py"):
                    files.append(os.path.join(root, name))
    seen = set()
    unique = []
    for file_path in files:
        if file_path not in seen:
            seen.add(file_path)
            unique.append(file_path)
    return unique


def default_baseline_path() -> str:
    """The committed baseline shipped with the package."""
    return os.path.join(os.path.dirname(__file__), "lint_baseline.json")


def default_check_paths() -> List[str]:
    """What ``repro check`` scans when given no paths: the package itself."""
    import repro

    return [os.path.dirname(os.path.abspath(repro.__file__))]


@dataclass
class CheckReport:
    """Outcome of one ``repro check`` run."""

    #: Findings that gate (not suppressed, not baselined), canonical order.
    findings: List[Finding] = field(default_factory=list)
    #: Findings grandfathered by the baseline file.
    baselined: List[Finding] = field(default_factory=list)
    #: Findings silenced by in-source ``allow`` annotations.
    suppressed: List[Finding] = field(default_factory=list)
    #: Files checked (package-relative), sorted.
    files: List[str] = field(default_factory=list)
    #: Rule ids that ran.
    rules: List[str] = field(default_factory=list)
    #: Baseline file consulted (or rewritten).
    baseline_path: str = ""
    #: Whether the baseline file was rewritten by this run.
    baseline_updated: bool = False

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        return 0 if self.clean else 1

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def render(self) -> str:
        """The human report: one line per finding, then the tallies."""
        lines = [finding.render() for finding in self.findings]
        if lines:
            lines.append("")
        summary = (
            f"{len(self.findings)} finding(s) in {len(self.files)} file(s) "
            f"({len(self.rules)} rule(s))"
        )
        extras = []
        if self.suppressed:
            extras.append(f"{len(self.suppressed)} suppressed")
        if self.baselined:
            extras.append(f"{len(self.baselined)} baselined")
        if self.baseline_updated:
            extras.append(f"baseline rewritten: {self.baseline_path}")
        if extras:
            summary += " — " + ", ".join(extras)
        lines.append(summary)
        if self.findings:
            for rule, count in self.counts_by_rule().items():
                lines.append(f"  {rule}: {count}")
        return "\n".join(lines)

    def to_json_dict(self) -> Dict[str, Any]:
        """The machine-readable report (the CI ``lint-report`` artifact)."""
        return {
            "format": "repro-lint-report",
            "version": 1,
            "clean": self.clean,
            "files": list(self.files),
            "rules": list(self.rules),
            "counts": self.counts_by_rule(),
            "findings": [finding.to_json_dict() for finding in self.findings],
            "baselined": [finding.to_json_dict() for finding in self.baselined],
            "suppressed": [finding.to_json_dict() for finding in self.suppressed],
            "baseline_path": self.baseline_path,
            "baseline_updated": self.baseline_updated,
        }

    def save_json(self, path: Union[str, "os.PathLike[str]"]) -> str:
        """Write :meth:`to_json_dict` atomically; returns the path."""
        import json

        from ..store.journal import atomic_write_text  # deferred: import cycle

        return atomic_write_text(
            os.fspath(path),
            json.dumps(self.to_json_dict(), indent=2, sort_keys=True) + "\n",
        )


def _check_module(module: ModuleSource, rules) -> Tuple[List[Finding], List[Finding]]:
    """Run ``rules`` over one module; returns ``(raw, suppressed)``.

    Suppression accounting happens here so the ``allow`` annotations of one
    file only ever apply to that file.
    """
    raw: List[Finding] = []
    for rule in rules:
        if not rule.applies_to(module.rel):
            continue
        raw.extend(rule.check(module))
    kept: List[Finding] = []
    silenced: List[Finding] = []
    for finding in raw:
        suppression = suppression_for_line(
            module.suppressions, finding.line, finding.rule
        )
        if suppression is None:
            kept.append(finding)
        else:
            suppression.used.append(finding)
            silenced.append(finding)
    # A reasonless allow is itself a finding: the escape hatch must document
    # why the rule does not apply, or reviewers cannot audit it.
    for suppression in module.suppressions:
        if suppression.used and not suppression.reason:
            kept.append(
                Finding(
                    rule=_SUPPRESSION_RULE,
                    path=module.rel,
                    line=suppression.line,
                    col=0,
                    message=(
                        "allow[...] without a reason — state why the rule "
                        "does not apply here"
                    ),
                    snippet=module.line_text(suppression.line),
                )
            )
    return kept, silenced


def lint_source(
    text: str, rel: str, rules: Optional[Sequence[str]] = None, abspath: str = ""
) -> List[Finding]:
    """Lint one in-memory source at a given package-relative path.

    The unit-test entry point: rule scoping sees ``rel`` exactly as given,
    so fixtures can target ``"repro/store/whatever.py"`` without building a
    package tree on disk.  Suppressions apply; no baseline is consulted.
    """
    module = ModuleSource.parse(text, rel, abspath=abspath)
    kept, _ = _check_module(module, select_rules(rules))
    return sorted(kept, key=lambda finding: finding.sort_key)


def run_check(
    paths: Optional[Sequence[str]] = None,
    *,
    baseline: Optional[Union[str, "os.PathLike[str]"]] = None,
    update_baseline: bool = False,
    select: Optional[Sequence[str]] = None,
    json_path: Optional[Union[str, "os.PathLike[str]"]] = None,
) -> CheckReport:
    """Run the checker; see the module docstring for the pipeline.

    ``paths`` defaults to the installed ``repro`` package; ``baseline`` to
    the committed ``analysis/lint_baseline.json``.  ``update_baseline``
    rewrites the baseline to the current (unsuppressed) finding set and
    reports clean.  ``json_path`` additionally saves the JSON report.
    """
    rules = select_rules(select)
    baseline_path = os.fspath(baseline) if baseline else default_baseline_path()
    file_paths = _discover(paths if paths else default_check_paths())

    all_findings: List[Finding] = []
    all_suppressed: List[Finding] = []
    files: List[str] = []
    for abspath in file_paths:
        with open(abspath, "r", encoding="utf-8") as handle:
            text = handle.read()
        module = ModuleSource.parse(text, _package_relative(abspath), abspath=abspath)
        files.append(module.rel)
        kept, silenced = _check_module(module, rules)
        all_findings.extend(kept)
        all_suppressed.extend(silenced)

    if update_baseline:
        save_baseline(baseline_path, all_findings)
        active, grandfathered = [], sorted(
            all_findings, key=lambda finding: finding.sort_key
        )
        updated = True
    else:
        active, grandfathered = partition_findings(
            all_findings, load_baseline(baseline_path)
        )
        updated = False

    report = CheckReport(
        findings=active,
        baselined=grandfathered,
        suppressed=sorted(all_suppressed, key=lambda finding: finding.sort_key),
        files=sorted(files),
        rules=sorted(rule.id for rule in rules),
        baseline_path=baseline_path,
        baseline_updated=updated,
    )
    if json_path is not None:
        report.save_json(json_path)
    return report
