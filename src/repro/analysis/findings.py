"""Findings and per-line suppressions of the static-analysis subsystem.

A :class:`Finding` is one rule violation at one source location.  Its
*identity* — the triple ``(path, rule, snippet)`` — deliberately excludes the
line number: baselined findings must survive unrelated edits that shift code
up or down, and a finding only "moves" in the baseline sense when the
offending line itself changes.

Suppressions are in-source annotations::

    entry = self._index.popitem()  # repro: allow[DET-ORDER] last-write-wins replay

A suppression covers the physical line it sits on, or — when written as a
comment-only line — the first following non-comment line.  ``allow[*]``
suppresses every rule.  The reason text is not optional politeness: the
checker counts a reasonless ``allow`` as a finding of its own, so every
escape hatch in the tree documents why it is sound.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import AnalysisError

__all__ = [
    "Finding",
    "Suppression",
    "SUPPRESSION_PATTERN",
    "parse_suppressions",
    "suppression_for_line",
]

#: The in-source suppression syntax: ``# repro: allow[RULE-ID] reason``.
#: Several ids separate with commas; ``*`` allows every rule.
SUPPRESSION_PATTERN = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[A-Za-z0-9*,\- ]+)\]\s*(?P<reason>.*)$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    #: Rule identifier (``"DET-RNG"``, ``"IO-ATOMIC"``, ...).
    rule: str
    #: Path of the file, package-relative POSIX form (``"repro/store/cache.py"``).
    path: str
    #: 1-based line of the violation.
    line: int
    #: 0-based column of the violating node.
    col: int
    #: Human explanation of what is wrong and what to use instead.
    message: str
    #: The stripped text of the offending line (the baseline anchor).
    snippet: str = ""

    @property
    def identity(self) -> Tuple[str, str, str]:
        """The baseline identity: line numbers shift, line *content* is the anchor."""
        return (self.path, self.rule, self.snippet)

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        """One ``path:line:col: RULE message`` report line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "Finding":
        try:
            return cls(
                rule=str(data["rule"]),
                path=str(data["path"]),
                line=int(data["line"]),
                col=int(data["col"]),
                message=str(data["message"]),
                snippet=str(data.get("snippet", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise AnalysisError(f"malformed finding: {exc}") from exc


@dataclass
class Suppression:
    """One parsed ``# repro: allow[...]`` annotation."""

    #: Line the annotation sits on (1-based).
    line: int
    #: Rule ids it allows (``{"*"}`` = every rule).
    rules: frozenset
    #: Free-text justification after the bracket (may be empty — reported).
    reason: str
    #: Line the suppression *covers* (the annotated code line).
    covers: int
    #: Findings this suppression actually silenced (filled by the runner).
    used: List[Finding] = field(default_factory=list)

    def allows(self, rule: str) -> bool:
        return "*" in self.rules or rule in self.rules


def parse_suppressions(lines: Sequence[str]) -> List[Suppression]:
    """Extract every suppression annotation from a file's physical lines.

    A trailing annotation covers its own line; a comment-only annotation line
    covers the next non-comment, non-blank line (so long expressions can put
    the allow above them).
    """
    suppressions: List[Suppression] = []
    for number, text in enumerate(lines, start=1):
        match = SUPPRESSION_PATTERN.search(text)
        if match is None:
            continue
        rules = frozenset(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        covers = number
        if text.lstrip().startswith("#"):
            # Standalone comment: cover the first real line below it.
            for offset, following in enumerate(lines[number:], start=number + 1):
                stripped = following.strip()
                if stripped and not stripped.startswith("#"):
                    covers = offset
                    break
        suppressions.append(
            Suppression(
                line=number,
                rules=rules,
                reason=match.group("reason").strip(),
                covers=covers,
            )
        )
    return suppressions


def suppression_for_line(
    suppressions: Sequence[Suppression], line: int, rule: str
) -> Optional[Suppression]:
    """The first suppression covering ``line`` for ``rule``, if any."""
    for suppression in suppressions:
        if suppression.covers == line and suppression.allows(rule):
            return suppression
    return None
