"""Contract rules: fingerprint roles, atomic IO, float text, API surface.

Where :mod:`repro.analysis.determinism` guards *how numbers are produced*,
these rules guard the contracts *around* them: every config field must
declare whether it determines the numbers (the fingerprint boundary), writes
in the persistence layers must be atomic, float-to-text in persisted files
must be exact, the stable facade must not drift, and dispatch-path failures
must use the library's exception hierarchy.
"""

from __future__ import annotations

import ast
import json
import os
import re
from typing import Iterator, List, Optional

from ..errors import AnalysisError
from .findings import Finding
from .rules import ModuleSource, Rule, dotted_name, register

__all__ = [
    "FingerprintFieldRule",
    "AtomicIoRule",
    "FloatFormatRule",
    "ApiSurfaceRule",
    "BareExceptionRule",
    "API_SURFACE_BASELINE_NAME",
    "read_all_literal",
    "write_api_surface",
]


@register
class FingerprintFieldRule(Rule):
    """FP-FIELD — every ``ExperimentConfig`` field declares its role.

    The fingerprint include/exclude sets are *generated* from per-field
    ``number_determining`` metadata (see ``experiments/config.py``), so a
    field added without a declaration would silently fall outside the
    contract.  This rule fails any ``ExperimentConfig`` field whose default
    is not a ``config_field(number_determining=...)`` declaration with a
    literal boolean role.
    """

    id = "FP-FIELD"
    title = "ExperimentConfig fields must declare number_determining"
    rationale = (
        "The cache addresses cells by the config fingerprint; an undeclared "
        "field either fragments the cache (over-included) or aliases "
        "different numbers to one cell (under-included).  Both are silent."
    )

    #: The dataclass whose fields carry the fingerprint contract.
    config_class = "ExperimentConfig"
    #: The declarative field helper the rule requires.
    helper = "config_field"

    def applies_to(self, rel: str) -> bool:
        return rel == "repro/experiments/config.py"

    def _role_keyword(self, call: ast.Call) -> Optional[ast.expr]:
        for keyword in call.keywords:
            if keyword.arg == "number_determining":
                return keyword.value
        return None

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.ClassDef) and node.name == self.config_class):
                continue
            for statement in node.body:
                if not isinstance(statement, ast.AnnAssign):
                    continue
                if not isinstance(statement.target, ast.Name):
                    continue
                name = statement.target.id
                value = statement.value
                if not (
                    isinstance(value, ast.Call)
                    and dotted_name(value.func, module.imports) == self.helper
                ):
                    yield module.finding(
                        self.id,
                        statement,
                        f"field {name!r} does not declare its fingerprint role "
                        f"— define it with {self.helper}(number_determining=...)",
                    )
                    continue
                role = self._role_keyword(value)
                if not (isinstance(role, ast.Constant) and isinstance(role.value, bool)):
                    yield module.finding(
                        self.id,
                        statement,
                        f"field {name!r} needs a literal "
                        "number_determining=True/False (the contract must be "
                        "readable without executing the module)",
                    )


#: Write-ish mode characters of :func:`open`.
_WRITE_MODES = set("wax+")


@register
class AtomicIoRule(Rule):
    """IO-ATOMIC — persistence-layer writes go through the atomic helpers.

    In ``repro/store/`` and ``repro/results/``, a plain ``open(path, "w")``
    (or ``Path.write_text`` / ``write_bytes``) can leave a torn file behind a
    crash.  All writes must route through
    :func:`repro.store.journal.atomic_write_text` or the
    :class:`~repro.store.journal.Journal` WAL — ``journal.py`` itself, the
    home of those primitives, is the single exemption.
    """

    id = "IO-ATOMIC"
    title = "store/results writes must use the atomic temp+replace helpers"
    rationale = (
        "A torn results or stats file is indistinguishable from data "
        "corruption; temp-file + os.replace + fsync is the only crash-safe "
        "write pattern, and it lives in exactly one module."
    )

    def applies_to(self, rel: str) -> bool:
        return (
            rel.startswith(("repro/store/", "repro/results/"))
            and rel != "repro/store/journal.py"
        )

    def _open_mode(self, call: ast.Call) -> Optional[str]:
        if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant):
            if isinstance(call.args[1].value, str):
                return call.args[1].value
        for keyword in call.keywords:
            if keyword.arg == "mode" and isinstance(keyword.value, ast.Constant):
                if isinstance(keyword.value.value, str):
                    return keyword.value.value
        return "r" if len(call.args) < 2 else None

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func, module.imports)
            if name == "open":
                mode = self._open_mode(node)
                if mode is not None and _WRITE_MODES & set(mode):
                    yield module.finding(
                        self.id,
                        node,
                        f"open(..., {mode!r}) in a persistence module — "
                        "write through atomic_write_text or the Journal WAL",
                    )
            elif isinstance(node.func, ast.Attribute) and node.func.attr in (
                "write_text",
                "write_bytes",
            ):
                yield module.finding(
                    self.id,
                    node,
                    f".{node.func.attr}() is not atomic — write through "
                    "atomic_write_text or the Journal WAL",
                )


#: Lossy float presentation in a format spec: any fixed precision, or the
#: e/f/g/% presentation types.
_FLOAT_SPEC = re.compile(r"\.\d+|[efg%]$")
#: %-style float conversions.
_PERCENT_FLOAT = re.compile(r"%[#0\- +]*\d*(?:\.\d+)?[eEfFgG]")
#: str.format template with a float presentation inside a placeholder.
_TEMPLATE_FLOAT = re.compile(r"\{[^{}]*:[^{}]*(?:\.\d+|[efg%])[^{}]*\}")


@register
class FloatFormatRule(Rule):
    """FLOAT-FMT — persisted float text must be exact, never rounded.

    In the persistence paths (``repro/store/`` and the results record /
    result-set modules), floats become text via the canonical exact
    formatters — ``repr`` through ``_format_cell``, or ``json.dumps`` —
    which round-trip every IEEE double.  Fixed-precision formatting
    (``f"{x:.6f}"``, ``format(x, ".3g")``, ``"%.2f" %``, ``round``) silently
    truncates: saved files stop byte-matching recomputed ones, and reloaded
    metrics diverge from the originals.  Human-facing table renderers live
    outside these modules and are free to round.
    """

    id = "FLOAT-FMT"
    title = "exact float text (repr/json) in persistence paths"
    rationale = (
        "repr() and json round-trip doubles exactly; any fixed precision "
        "destroys the byte-identity contract saved files are diffed under."
    )

    _scopes = (
        "repro/store/",
        "repro/results/records.py",
        "repro/results/resultset.py",
    )

    def applies_to(self, rel: str) -> bool:
        return rel.startswith(self._scopes)

    def _spec_text(self, spec: Optional[ast.expr]) -> str:
        if isinstance(spec, ast.JoinedStr):
            return "".join(
                str(part.value)
                for part in spec.values
                if isinstance(part, ast.Constant)
            )
        return ""

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.FormattedValue):
                spec = self._spec_text(node.format_spec)
                if spec and _FLOAT_SPEC.search(spec):
                    yield module.finding(
                        self.id,
                        node,
                        f"f-string spec {spec!r} rounds the value — persist "
                        "exact text via repr()/_format_cell/json instead",
                    )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
                if isinstance(node.left, ast.Constant) and isinstance(
                    node.left.value, str
                ):
                    if _PERCENT_FLOAT.search(node.left.value):
                        yield module.finding(
                            self.id,
                            node,
                            "%-style float formatting rounds the value — "
                            "persist exact text via repr()/json instead",
                        )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func, module.imports)
                if name == "round":
                    yield module.finding(
                        self.id,
                        node,
                        "round() before persistence loses precision — store "
                        "the exact value, round only in human renderers",
                    )
                elif (
                    name == "format"
                    and len(node.args) == 2
                    and isinstance(node.args[1], ast.Constant)
                    and isinstance(node.args[1].value, str)
                    and _FLOAT_SPEC.search(node.args[1].value)
                ):
                    yield module.finding(
                        self.id,
                        node,
                        f"format(..., {node.args[1].value!r}) rounds the "
                        "value — persist exact text via repr()/json instead",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "format"
                    and isinstance(node.func.value, ast.Constant)
                    and isinstance(node.func.value.value, str)
                    and _TEMPLATE_FLOAT.search(node.func.value.value)
                ):
                    yield module.finding(
                        self.id,
                        node,
                        "str.format with a float precision rounds the value "
                        "— persist exact text via repr()/json instead",
                    )


#: Name of the committed facade baseline, next to this module.
API_SURFACE_BASELINE_NAME = "api_surface.json"

#: The watched modules: package-relative path → dotted module name.
_SURFACE_MODULES = {
    "repro/__init__.py": "repro",
    "repro/api.py": "repro.api",
}


def read_all_literal(tree: ast.Module) -> Optional[List[str]]:
    """The module's ``__all__`` list, read statically (``None`` if absent
    or not a plain literal of string constants)."""
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        if not any(
            isinstance(target, ast.Name) and target.id == "__all__"
            for target in targets
        ):
            continue
        value = node.value
        if isinstance(value, (ast.List, ast.Tuple)) and all(
            isinstance(element, ast.Constant) and isinstance(element.value, str)
            for element in value.elts
        ):
            return [element.value for element in value.elts]
        return None
    return None


def write_api_surface(package_dir: str) -> str:
    """(Re)generate the facade baseline from the package's current sources.

    The deliberate way to change the stable API: run this (or edit the JSON
    by hand), and the diff of the committed baseline shows reviewers exactly
    what entered or left the facade.  Returns the path written.
    """
    from ..store.journal import atomic_write_text  # deferred: import cycle

    surface = {}
    for rel, dotted in sorted(_SURFACE_MODULES.items()):
        path = os.path.join(package_dir, *rel.split("/")[1:])
        with open(path, "r", encoding="utf-8") as handle:
            names = read_all_literal(ast.parse(handle.read()))
        if names is None:
            raise AnalysisError(f"{path!r} has no literal __all__ to baseline")
        surface[dotted] = names
    target = os.path.join(
        package_dir, "analysis", API_SURFACE_BASELINE_NAME
    )
    atomic_write_text(target, json.dumps(surface, indent=2, sort_keys=True) + "\n")
    return target


@register
class ApiSurfaceRule(Rule):
    """API-SURFACE — the stable facade matches its committed baseline.

    ``repro.__all__`` and ``repro.api.__all__`` are the compatibility
    surface; this rule compares both (read statically) against the committed
    ``analysis/api_surface.json``.  Additions and removals alike are
    findings: growing the facade is as deliberate an act as shrinking it.
    Update the baseline with :func:`write_api_surface` when the change is
    intended — the JSON diff then documents it in review.
    """

    id = "API-SURFACE"
    title = "repro.__all__ / repro.api.__all__ match the committed baseline"
    rationale = (
        "The facade is a promise; a name drifting in or out of __all__ "
        "changes what downstream code may import, silently."
    )

    def applies_to(self, rel: str) -> bool:
        return rel in _SURFACE_MODULES

    def _anchor(self, module: ModuleSource) -> ast.AST:
        for node in module.tree.body:
            if isinstance(node, ast.Assign) and any(
                isinstance(target, ast.Name) and target.id == "__all__"
                for target in node.targets
            ):
                return node
        return module.tree.body[0] if module.tree.body else module.tree

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        dotted = _SURFACE_MODULES[module.rel]
        anchor = self._anchor(module)
        names = read_all_literal(module.tree)
        if names is None:
            yield module.finding(
                self.id,
                anchor,
                f"{dotted} has no literal __all__ — the facade must be "
                "statically readable",
            )
            return
        if not module.abspath:
            return  # in-memory source: no package directory to baseline against
        depth = module.rel.count("/")
        package_dir = os.path.normpath(
            os.path.join(os.path.dirname(module.abspath), *[".."] * max(depth - 1, 0))
        )
        baseline_path = os.path.join(
            package_dir, "analysis", API_SURFACE_BASELINE_NAME
        )
        try:
            with open(baseline_path, "r", encoding="utf-8") as handle:
                surface = json.load(handle)
        except FileNotFoundError:
            yield module.finding(
                self.id,
                anchor,
                f"no committed facade baseline at {baseline_path!r} — "
                "generate one with repro.analysis.write_api_surface",
            )
            return
        except (OSError, json.JSONDecodeError) as exc:
            raise AnalysisError(
                f"corrupt facade baseline {baseline_path!r}: {exc}"
            ) from exc
        expected = surface.get(dotted)
        if expected is None:
            yield module.finding(
                self.id,
                anchor,
                f"facade baseline has no entry for {dotted!r} — regenerate "
                "it with repro.analysis.write_api_surface",
            )
            return
        if names != list(expected):
            added = sorted(set(names) - set(expected))
            removed = sorted(set(expected) - set(names))
            drift = []
            if added:
                drift.append(f"added {added}")
            if removed:
                drift.append(f"removed {removed}")
            if not drift:
                drift.append("reordered")
            yield module.finding(
                self.id,
                anchor,
                f"{dotted}.__all__ drifted from the committed baseline "
                f"({'; '.join(drift)}) — update analysis/api_surface.json "
                "if the change is deliberate",
            )


#: Builtin exceptions that must not escape dispatch paths raw.
_BUILTIN_EXCEPTIONS = frozenset(
    {
        "BaseException",
        "Exception",
        "RuntimeError",
        "ValueError",
        "TypeError",
        "KeyError",
        "IndexError",
        "AttributeError",
        "AssertionError",
        "ArithmeticError",
        "ZeroDivisionError",
        "LookupError",
        "OSError",
        "IOError",
        "StopIteration",
    }
)


@register
class BareExceptionRule(Rule):
    """EXC-BARE — dispatch paths raise the library hierarchy, not builtins.

    In the heuristic and middleware dispatch modules, a raw ``assert`` or a
    builtin ``raise ValueError(...)`` is indistinguishable from a genuine
    bug to the campaign engine's error handling (the PR 2 regression class:
    a heuristic failure must surface as
    :class:`~repro.errors.SchedulingError`, not crash the run).  ``assert``
    additionally vanishes under ``python -O``.  ``NotImplementedError`` on
    abstract methods and bare ``raise`` re-raises stay legal.
    """

    id = "EXC-BARE"
    title = "dispatch paths use the repro.errors hierarchy"
    rationale = (
        "The campaign engine catches ReproError subclasses to convert "
        "heuristic/middleware failures into per-run outcomes; builtin "
        "exceptions bypass that and kill whole campaigns."
    )

    _scopes = (
        "repro/core/heuristics/",
        "repro/platform/middleware.py",
        "repro/platform/agent.py",
    )

    def applies_to(self, rel: str) -> bool:
        return rel.startswith(self._scopes)

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assert):
                yield module.finding(
                    self.id,
                    node,
                    "bare assert in a dispatch path — raise a repro.errors "
                    "class (asserts vanish under -O and read as bugs upstream)",
                )
            elif isinstance(node, ast.Raise) and node.exc is not None:
                exc = node.exc
                name = None
                if isinstance(exc, ast.Call):
                    name = dotted_name(exc.func, module.imports)
                elif isinstance(exc, (ast.Name, ast.Attribute)):
                    name = dotted_name(exc, module.imports)
                if name in _BUILTIN_EXCEPTIONS or (
                    name is not None
                    and name.startswith("builtins.")
                    and name.split(".", 1)[1] in _BUILTIN_EXCEPTIONS
                ):
                    yield module.finding(
                        self.id,
                        node,
                        f"raise {name} in a dispatch path — use the "
                        "repro.errors hierarchy so the campaign engine can "
                        "classify the failure",
                    )
