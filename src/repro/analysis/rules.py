"""Rule framework: source model, import resolution and the rule registry.

Every rule is a small class over a :class:`ModuleSource` — the parsed form of
one file: its package-relative path, raw lines, ``ast`` tree, a parent map
(``ast`` has no upward links) and an *import table* resolving local names to
dotted module paths, so rules can recognise ``np.random.default_rng()`` and
``from time import perf_counter; perf_counter()`` as the same thing without
executing anything.  Rules are registered by id in :data:`RULE_REGISTRY`
(via :func:`register`), which is what the runner iterates and what
``repro check --list-rules`` prints.

The framework is stdlib-``ast`` only, matching the house no-third-party-deps
style: the checker must be runnable in every environment the library is.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import AnalysisError
from .findings import Finding, Suppression, parse_suppressions

__all__ = [
    "ModuleSource",
    "Rule",
    "RULE_REGISTRY",
    "register",
    "rule_ids",
    "get_rule",
    "select_rules",
    "dotted_name",
]


def _build_import_table(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted module/object paths they are bound to.

    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``from numpy.random import default_rng`` →
    ``{"default_rng": "numpy.random.default_rng"}``.  Only module-level and
    function-level import statements are considered — good enough for lint
    resolution, with no execution.
    """
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                table[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return table


def dotted_name(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Resolve an expression to a dotted name through the import table.

    ``Name("np")`` → ``"numpy"``; ``Attribute(Name("np"), "random")`` →
    ``"numpy.random"``.  A name with no import binding resolves to itself
    (it may be a builtin like ``open``); anything non-name-shaped resolves to
    ``None``.
    """
    if isinstance(node, ast.Name):
        return imports.get(node.id, node.id)
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value, imports)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


@dataclass
class ModuleSource:
    """One parsed source file, ready for rules to inspect."""

    #: Package-relative POSIX path (``"repro/store/cache.py"``).
    rel: str
    #: Raw source text.
    text: str
    #: Absolute filesystem path ("" for in-memory sources in tests).
    abspath: str = ""
    lines: List[str] = dataclass_field(default_factory=list)
    tree: Optional[ast.Module] = None
    imports: Dict[str, str] = dataclass_field(default_factory=dict)
    suppressions: List[Suppression] = dataclass_field(default_factory=list)
    _parents: Optional[Dict[ast.AST, ast.AST]] = None

    @classmethod
    def parse(cls, text: str, rel: str, abspath: str = "") -> "ModuleSource":
        try:
            tree = ast.parse(text)
        except SyntaxError as exc:
            raise AnalysisError(f"cannot parse {rel!r}: {exc}") from exc
        return cls(
            rel=rel,
            text=text,
            abspath=abspath,
            lines=text.splitlines(),
            tree=tree,
            imports=_build_import_table(tree),
            suppressions=parse_suppressions(text.splitlines()),
        )

    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        """Child → parent map over the tree (built lazily, cached)."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    parents[child] = parent
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The node's ancestors, nearest first."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def line_text(self, line: int) -> str:
        """Stripped text of a 1-based line ("" when out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        return Finding(
            rule=rule,
            path=self.rel,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
            snippet=self.line_text(line),
        )


class Rule:
    """Base class of every lint rule.

    Subclasses set :attr:`id`, :attr:`title` and :attr:`rationale`, override
    :meth:`applies_to` to scope themselves to the module paths where the
    invariant holds, and yield findings from :meth:`check`.
    """

    id: str = ""
    title: str = ""
    #: Why the invariant matters (shown by ``repro check --list-rules``).
    rationale: str = ""

    def applies_to(self, rel: str) -> bool:
        """Whether this rule runs on the module at package-relative ``rel``."""
        return True

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<Rule {self.id}>"


#: Registered rules by id, in registration (= documentation) order.
RULE_REGISTRY: Dict[str, Rule] = {}


def register(rule_class: type) -> type:
    """Class decorator adding a rule to :data:`RULE_REGISTRY`."""
    rule = rule_class()
    if not rule.id:
        raise AnalysisError(f"rule {rule_class.__name__} has no id")
    if rule.id in RULE_REGISTRY:
        raise AnalysisError(f"duplicate rule id {rule.id!r}")
    RULE_REGISTRY[rule.id] = rule
    return rule_class


def rule_ids() -> Tuple[str, ...]:
    """Every registered rule id, in registration order."""
    return tuple(RULE_REGISTRY)


def get_rule(rule_id: str) -> Rule:
    try:
        return RULE_REGISTRY[rule_id]
    except KeyError:
        raise AnalysisError(
            f"unknown rule {rule_id!r}; available: {', '.join(RULE_REGISTRY)}"
        ) from None


def select_rules(select: Optional[Sequence[str]] = None) -> List[Rule]:
    """The rules to run: all of them, or an explicit id selection."""
    if not select:
        return list(RULE_REGISTRY.values())
    return [get_rule(rule_id) for rule_id in select]
