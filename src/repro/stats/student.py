"""Student-t distribution functions, dependency-free.

The reproduction must not depend on scipy (the container only ships numpy),
yet honest small-sample confidence intervals need the Student-t quantile at
``n - 1`` degrees of freedom — at ``n = 5`` repetitions the 97.5% quantile is
2.776, not the normal approximation's 1.96, so a z-based interval understates
its width by ~40%.

The implementation is the classical route: the t CDF reduces to the
regularized incomplete beta function ``I_x(a, b)`` (evaluated with the
Lentz/Thompson-Barnett continued fraction of Numerical Recipes), and the
quantile inverts the CDF by bisection.  Everything is deterministic pure
``math``; accuracy is ~1e-10 over the ranges the library uses (dof >= 1,
confidence levels up to 0.999), verified against published tables in
``tests/stats/test_student.py``.
"""

from __future__ import annotations

import math

from ..errors import StatsError

__all__ = ["regularized_incomplete_beta", "t_cdf", "t_quantile", "two_sided_t"]

#: Continued-fraction iteration cap (converges in < 100 for all sane inputs).
_MAX_ITERATIONS = 300
_TINY = 1e-300
_EPS = 1e-14


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta function (Lentz's method)."""
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < _TINY:
        d = _TINY
    d = 1.0 / d
    h = d
    for m in range(1, _MAX_ITERATIONS + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < _TINY:
            d = _TINY
        c = 1.0 + aa / c
        if abs(c) < _TINY:
            c = _TINY
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < _TINY:
            d = _TINY
        c = 1.0 + aa / c
        if abs(c) < _TINY:
            c = _TINY
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _EPS:
            return h
    raise StatsError(
        f"incomplete beta continued fraction did not converge (a={a}, b={b}, x={x})"
    )


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """``I_x(a, b)``, the regularized incomplete beta function."""
    if a <= 0 or b <= 0:
        raise StatsError(f"beta parameters must be positive (a={a}, b={b})")
    if not 0.0 <= x <= 1.0:
        raise StatsError(f"incomplete beta argument must be in [0, 1], got {x}")
    if x == 0.0 or x == 1.0:
        return x
    log_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log1p(-x)
    )
    front = math.exp(log_front)
    # Use the continued fraction on the side where it converges fastest.
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def t_cdf(x: float, dof: float) -> float:
    """CDF of the Student-t distribution with ``dof`` degrees of freedom."""
    if dof <= 0:
        raise StatsError(f"degrees of freedom must be positive, got {dof}")
    if math.isnan(x):
        return math.nan
    if math.isinf(x):
        return 1.0 if x > 0 else 0.0
    tail = 0.5 * regularized_incomplete_beta(dof / 2.0, 0.5, dof / (dof + x * x))
    return 1.0 - tail if x >= 0 else tail


def t_quantile(p: float, dof: float) -> float:
    """Inverse CDF of the Student-t distribution (bisection on :func:`t_cdf`)."""
    if dof <= 0:
        raise StatsError(f"degrees of freedom must be positive, got {dof}")
    if not 0.0 < p < 1.0:
        raise StatsError(f"quantile probability must be in (0, 1), got {p}")
    if p == 0.5:
        return 0.0
    if p < 0.5:
        return -t_quantile(1.0 - p, dof)
    # Bracket the root: grow the upper bound until the CDF passes p.  dof=1
    # (Cauchy) has very heavy tails, so the bound may need to grow far.
    lo, hi = 0.0, 2.0
    while t_cdf(hi, dof) < p:
        hi *= 2.0
        if hi > 1e18:  # pragma: no cover - p astronomically close to 1
            raise StatsError(f"t quantile bracket failed (p={p}, dof={dof})")
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if t_cdf(mid, dof) < p:
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-12 * max(1.0, hi):
            break
    return 0.5 * (lo + hi)


def two_sided_t(confidence: float, dof: float) -> float:
    """The two-sided critical value: ``t`` such that ``P(|T| <= t) = confidence``.

    This is the multiplier of a ``confidence``-level t interval —
    ``two_sided_t(0.95, 4) = 2.776...`` where the normal approximation would
    use 1.96 regardless of the sample size.
    """
    if not 0.0 < confidence < 1.0:
        raise StatsError(f"confidence must be in (0, 1), got {confidence}")
    return t_quantile(0.5 + confidence / 2.0, dof)
