"""Sequential stopping rule for campaign repetitions.

``run_campaign(reps="auto", ci_target=...)`` keeps adding repetition rounds
until the relative half-width of the confidence interval of every
``(heuristic, metatask)`` group's chosen metric drops below the target (or
the repetition budget runs out).  The rule itself lives here, decoupled from
the engine, and is deliberately a *pure function of the record data*:

* the round schedule (:meth:`StoppingRule.initial_reps` /
  :meth:`StoppingRule.next_reps`) depends only on the rule's own parameters;
* the stop decision (:meth:`StoppingRule.assess`) depends only on the metric
  values grouped per cell coordinate.

Cell seeds already derive from coordinates, so the records of repetition
``r`` are identical however the campaign was parallelised — which makes the
decision, hence the number of repetitions run, hence the full record stream,
byte-identical at ``jobs=1`` and ``jobs=N``.  ``ci_target`` is therefore a
*number-determining* knob and participates in the configuration fingerprint
(see :func:`repro.results.records.config_fingerprint`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import StatsError
from .intervals import ConfidenceInterval, t_interval

__all__ = ["StoppingRule", "GroupStatus", "StoppingDecision"]

#: A sequential group is one (heuristic, metatask_index) coordinate.
GroupKey = Tuple[str, int]


@dataclass(frozen=True)
class GroupStatus:
    """Convergence state of one (heuristic, metatask) group."""

    key: GroupKey
    n: int
    interval: Optional[ConfidenceInterval]
    relative_half_width: float
    satisfied: bool


@dataclass(frozen=True)
class StoppingDecision:
    """Outcome of one :meth:`StoppingRule.assess` call."""

    satisfied: bool
    groups: Tuple[GroupStatus, ...]

    @property
    def worst(self) -> Optional[GroupStatus]:
        """The group farthest from the target (``None`` with no groups)."""
        if not self.groups:
            return None
        return max(self.groups, key=lambda g: g.relative_half_width)

    def summary(self) -> str:
        """One human line: how close the campaign is to stopping."""
        worst = self.worst
        if worst is None:
            return "no groups"
        rel = worst.relative_half_width
        rel_text = "inf" if math.isinf(rel) else f"{rel:.4f}"
        return (
            f"{sum(g.satisfied for g in self.groups)}/{len(self.groups)} group(s) "
            f"converged; worst {worst.key[0]}/m{worst.key[1]} at relative "
            f"half-width {rel_text} over n={worst.n}"
        )


@dataclass(frozen=True)
class StoppingRule:
    """When to stop adding repetitions to a campaign.

    The campaign stops once *every* ``(heuristic, metatask)`` group has at
    least ``min_reps`` observations of ``metric`` and a ``confidence``-level
    Student-t interval whose half-width is at most ``ci_target`` times the
    absolute group mean.  ``max_reps`` caps the budget: a campaign that
    cannot converge (e.g. a bimodal metric) stops there and the caller is
    told via :attr:`StoppingDecision.satisfied`.
    """

    ci_target: float
    metric: str = "sum_flow"
    confidence: float = 0.95
    min_reps: int = 3
    max_reps: int = 32

    def __post_init__(self) -> None:
        if not 0.0 < self.ci_target:
            raise StatsError(f"ci_target must be > 0, got {self.ci_target}")
        if not 0.0 < self.confidence < 1.0:
            raise StatsError(f"confidence must be in (0, 1), got {self.confidence}")
        if self.min_reps < 2:
            raise StatsError(f"min_reps must be >= 2, got {self.min_reps}")
        if self.max_reps < self.min_reps:
            raise StatsError(
                f"max_reps ({self.max_reps}) must be >= min_reps ({self.min_reps})"
            )

    # ------------------------------------------------------------------ #
    # round schedule (deterministic, data-independent)
    # ------------------------------------------------------------------ #
    def initial_reps(self, configured_reps: int = 1) -> int:
        """Repetitions of the first round (never below ``min_reps``)."""
        return min(self.max_reps, max(self.min_reps, configured_reps))

    def next_reps(self, current: int) -> int:
        """Total repetitions after growing the campaign by one round.

        Doubles (capped at ``max_reps``): half-widths shrink like
        ``1/sqrt(n)``, so linear growth would converge painfully slowly when
        the first round is far from the target.
        """
        if current >= self.max_reps:
            return current
        return min(self.max_reps, max(current + 1, current * 2))

    # ------------------------------------------------------------------ #
    # stop decision (a pure function of the grouped metric values)
    # ------------------------------------------------------------------ #
    def assess(self, groups: Mapping[GroupKey, Sequence[float]]) -> StoppingDecision:
        """Evaluate the rule over ``{(heuristic, metatask): metric values}``.

        A group satisfies the rule when it has ``min_reps`` values and its
        relative half-width is at or below ``ci_target``.  Zero-variance
        groups satisfy it trivially; a group whose mean is 0 with non-zero
        spread has an infinite relative width and can never satisfy it (the
        campaign then runs to ``max_reps`` — an honest answer, since a
        relative target is meaningless around a zero mean).
        """
        statuses: List[GroupStatus] = []
        for key in sorted(groups):
            values = [float(v) for v in groups[key]]
            n = len(values)
            if n < 2:
                statuses.append(GroupStatus(key, n, None, math.inf, False))
                continue
            interval = t_interval(values, confidence=self.confidence)
            rel = interval.relative_half_width
            satisfied = n >= self.min_reps and rel <= self.ci_target
            statuses.append(GroupStatus(key, n, interval, rel, satisfied))
        return StoppingDecision(
            satisfied=bool(statuses) and all(s.satisfied for s in statuses),
            groups=tuple(statuses),
        )
