"""Analytical queueing baselines and the ``repro validate`` suite.

The fluid processor-sharing core (:mod:`repro.simulation.fluid`) is the
ground truth every simulated number rests on, so it must be checked against
something *it cannot influence*: closed-form queueing theory.

A :class:`~repro.simulation.fluid.ProcessorSharingQueue` with ``capacity=c``
and ``per_job_cap=1`` serving exponential job sizes under Poisson arrivals
is *exactly* an M/M/c system — every active job progresses at rate
``min(1, c/n)``, so the total departure rate with ``n`` jobs in system is
``min(n, c)·μ``, the M/M/c birth–death chain.  The egalitarian discipline
does not change the distribution of the number in system, hence (Little's
law) not the mean response time either.  The closed forms implemented here —
``1/(μ−λ)`` for M/M/1 and the Erlang-C formula for M/M/c — are therefore
exact targets, not approximations: the simulated mean must fall within its
own confidence interval of them, or the fluid core is wrong.

:func:`run_validation` bundles those checks (plus the sequential-stopping
byte-identity contract of the campaign layer) into the report behind the
``repro validate`` CLI command; determinism of the simulator makes the suite
reproducible — a seed that passes today passes forever.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import StatsError
from ..simulation.fluid import ProcessorSharingQueue
from .intervals import ConfidenceInterval, t_interval
from .warmup import mser5_truncation

__all__ = [
    "mm1_mean_response",
    "erlang_c",
    "mmc_mean_response",
    "simulate_mmc_mean_response",
    "ValidationCheck",
    "ValidationReport",
    "run_validation",
]


# --------------------------------------------------------------------------- #
# closed forms
# --------------------------------------------------------------------------- #
def mm1_mean_response(arrival_rate: float, service_rate: float) -> float:
    """Mean response (sojourn) time of a stable M/M/1 queue: ``1/(μ−λ)``.

    Valid for FCFS and for egalitarian processor sharing alike — M/M/1-PS
    has the same mean response time as M/M/1-FCFS.
    """
    if arrival_rate <= 0 or service_rate <= 0:
        raise StatsError("arrival and service rates must be positive")
    if arrival_rate >= service_rate:
        raise StatsError(
            f"unstable queue: arrival rate {arrival_rate} >= service rate {service_rate}"
        )
    return 1.0 / (service_rate - arrival_rate)


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang-C: probability an arriving job must queue in M/M/c.

    ``offered_load`` is ``a = λ/μ`` (in Erlangs); stability requires
    ``a < servers``.  Computed with the usual recurrence on the Erlang-B
    blocking probability, which is numerically stable for any load.
    """
    if servers < 1:
        raise StatsError(f"servers must be >= 1, got {servers}")
    if offered_load <= 0:
        raise StatsError(f"offered load must be positive, got {offered_load}")
    if offered_load >= servers:
        raise StatsError(
            f"unstable system: offered load {offered_load} >= servers {servers}"
        )
    # Erlang-B via the recurrence B(0) = 1, B(k) = aB/(k + aB).
    blocking = 1.0
    for k in range(1, servers + 1):
        blocking = offered_load * blocking / (k + offered_load * blocking)
    rho = offered_load / servers
    return blocking / (1.0 - rho + rho * blocking)


def mmc_mean_response(arrival_rate: float, service_rate: float, servers: int) -> float:
    """Mean response time of a stable M/M/c queue.

    ``E[T] = 1/μ + C(c, λ/μ) / (cμ − λ)`` where ``C`` is Erlang-C.  For
    ``servers=1`` this reduces to :func:`mm1_mean_response` exactly.
    """
    if arrival_rate <= 0 or service_rate <= 0:
        raise StatsError("arrival and service rates must be positive")
    offered = arrival_rate / service_rate
    waiting_probability = erlang_c(servers, offered)
    return 1.0 / service_rate + waiting_probability / (
        servers * service_rate - arrival_rate
    )


# --------------------------------------------------------------------------- #
# simulation of the same system on the fluid core
# --------------------------------------------------------------------------- #
def _one_replication(
    arrival_rate: float,
    service_rate: float,
    servers: int,
    job_count: int,
    rng: random.Random,
) -> List[float]:
    """Response times of one M/M/c replication on a ProcessorSharingQueue.

    ``capacity=servers`` with ``per_job_cap=1`` is the c-CPU model of the
    fluid module's docstring; the queue starts empty (the warm-up the MSER
    rule later truncates).  Response times are returned in *arrival order* —
    the order the warm-up transient lives in.
    """
    queue = ProcessorSharingQueue(capacity=float(servers), per_job_cap=1.0)
    arrivals: List[float] = []
    completions: Dict[int, float] = {}
    now = 0.0
    for index in range(job_count):
        now += rng.expovariate(arrival_rate)
        # ``add`` would advance the queue itself but swallow the completion
        # events; advance explicitly first so every completion is captured.
        for done_at, key in queue.advance_to(now):
            completions[key] = done_at
        arrivals.append(now)
        queue.add(index, rng.expovariate(service_rate), now)
    while len(queue):
        for done_at, key in queue.advance_to(queue.next_completion_time()):
            completions[key] = done_at
    return [completions[i] - arrivals[i] for i in range(job_count)]


def simulate_mmc_mean_response(
    arrival_rate: float,
    service_rate: float,
    servers: int,
    job_count: int = 4000,
    replications: int = 5,
    seed: int = 2003,
    confidence: float = 0.95,
) -> ConfidenceInterval:
    """Simulated M/M/c mean response time with a replication t interval.

    Each replication seeds its own generator from ``(seed, replication)``,
    simulates ``job_count`` jobs on the fluid core, truncates its MSER-5
    warm-up prefix, and contributes the mean of the surviving response
    times; the interval is the Student-t CI over the replication means.
    Fully deterministic in ``seed``.
    """
    if replications < 2:
        raise StatsError(f"need at least 2 replications, got {replications}")
    rep_means: List[float] = []
    for replication in range(replications):
        # Integer-only seed derivation: seeding Random with a tuple would go
        # through hash(), which PYTHONHASHSEED randomises across processes.
        # repro: allow[DET-RNG] deliberate stdlib Random: the M/M/c validator
        # must be independent of the simulator's RandomStreams to count as an
        # external check, and the integer seed above is PYTHONHASHSEED-proof
        rng = random.Random(seed * 1_000_003 + replication)
        responses = _one_replication(
            arrival_rate, service_rate, servers, job_count, rng
        )
        cut = mser5_truncation(responses)
        kept = responses[cut:]
        rep_means.append(sum(kept) / len(kept))
    return t_interval(rep_means, confidence=confidence)


# --------------------------------------------------------------------------- #
# the validation suite
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ValidationCheck:
    """Outcome of one validation check."""

    name: str
    description: str
    passed: bool
    expected: Optional[float] = None
    observed: Optional[float] = None
    half_width: Optional[float] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """One aligned report line."""
        status = "PASS" if self.passed else "FAIL"
        if self.expected is None:
            return f"  [{status}] {self.name:<28} {self.description}"
        return (
            f"  [{status}] {self.name:<28} expected {self.expected:.4f}, "
            f"observed {self.observed:.4f} ± {self.half_width:.4f}"
        )

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (for ``validation-report.json``)."""
        return {
            "name": self.name,
            "description": self.description,
            "passed": self.passed,
            "expected": self.expected,
            "observed": self.observed,
            "half_width": self.half_width,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class ValidationReport:
    """The full ``repro validate`` outcome."""

    checks: tuple
    seed: int
    quick: bool

    @property
    def passed(self) -> bool:
        """Whether every check passed."""
        return all(check.passed for check in self.checks)

    def render(self) -> str:
        """The report as printed by ``repro validate``."""
        mode = "quick" if self.quick else "full"
        lines = [f"Analytical validation ({mode}, seed {self.seed})"]
        lines.extend(check.render() for check in self.checks)
        failed = sum(not check.passed for check in self.checks)
        verdict = "OK" if failed == 0 else f"FAILED ({failed} check(s))"
        lines.append(f"validation: {verdict} — {len(self.checks)} check(s)")
        return "\n".join(lines)

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (for ``validation-report.json``)."""
        return {
            "passed": self.passed,
            "seed": self.seed,
            "quick": self.quick,
            "checks": [check.to_json_dict() for check in self.checks],
        }

    def save_json(self, path: str) -> str:
        """Write the report as pretty-printed JSON; returns the path."""
        from ..store.journal import atomic_write_text  # deferred: import cycle

        return atomic_write_text(
            path, json.dumps(self.to_json_dict(), indent=2, sort_keys=True) + "\n"
        )


def _queueing_check(
    name: str,
    arrival_rate: float,
    service_rate: float,
    servers: int,
    seed: int,
    quick: bool,
) -> ValidationCheck:
    """Simulate one M/M/c regime and compare to its closed form within CI."""
    expected = mmc_mean_response(arrival_rate, service_rate, servers)
    # Mean response is heavily autocorrelated, so replication means converge
    # slowly: these sizes keep the CI honest (and the suite passing) at
    # ~1 s quick / ~7 s full on the canonical seed.
    job_count = 4000 if quick else 20000
    replications = 5 if quick else 10
    interval = simulate_mmc_mean_response(
        arrival_rate,
        service_rate,
        servers,
        job_count=job_count,
        replications=replications,
        seed=seed,
    )
    return ValidationCheck(
        name=name,
        description=(
            f"fluid M/M/{servers} (λ={arrival_rate:g}, μ={service_rate:g}) vs "
            f"Erlang-C closed form"
        ),
        passed=interval.contains(expected),
        expected=expected,
        observed=interval.mean,
        half_width=interval.half_width,
        detail={
            "arrival_rate": arrival_rate,
            "service_rate": service_rate,
            "servers": servers,
            "job_count": job_count,
            "replications": replications,
            "confidence": interval.confidence,
        },
    )


def _sequential_identity_check(seed: int, quick: bool) -> ValidationCheck:
    """Byte-identity of a sequential-stopping campaign at jobs=1 vs jobs=2."""
    # Deferred imports: this module is part of repro.stats, which the
    # experiment layer itself imports — a top-level import would be a cycle.
    import numpy as np

    from ..experiments.campaign import run_campaign
    from ..experiments.config import ExperimentConfig, ExperimentScale
    from ..workload.testbed import first_set_platform, matmul_metatask

    task_count = 12 if quick else 20
    scale = ExperimentScale(
        name="validate", task_count=task_count, metatask_count=1, repetitions=1
    )
    config = ExperimentConfig(
        scale=scale,
        seed=seed,
        heuristics=("mct", "msf"),
        ci_target=0.5,
        ci_min_reps=3,
        ci_max_reps=4,
    )
    metatask = matmul_metatask(
        task_count, 20.0, rng=np.random.default_rng(seed), name="validate-seq"
    )
    platform = first_set_platform()
    serial = run_campaign(
        "validate-seq", "sequential identity", platform, [metatask],
        config, reps="auto", jobs=1,
    )
    parallel = run_campaign(
        "validate-seq", "sequential identity", platform, [metatask],
        config, reps="auto", jobs=2,
    )
    serial_bytes = serial.result_set.to_jsonl()
    parallel_bytes = parallel.result_set.to_jsonl()
    return ValidationCheck(
        name="sequential-byte-identity",
        description=(
            "run_campaign(reps='auto', ci_target=0.5) produces byte-identical "
            "records at jobs=1 and jobs=2"
        ),
        passed=serial_bytes == parallel_bytes,
        detail={
            "records": len(serial.result_set),
            "records_parallel": len(parallel.result_set),
            "task_count": task_count,
        },
    )


def run_validation(
    seed: int = 2003,
    quick: bool = False,
    include_sequential: bool = True,
) -> ValidationReport:
    """Run the analytical validation suite and return its report.

    Checks, in order: M/M/1 at moderate load, M/M/1 at high load, M/M/2 and
    M/M/4 homogeneous farms — each comparing the fluid simulator's mean
    response time against the exact closed form within the simulation's own
    95% CI — plus the sequential-stopping byte-identity contract (skippable
    with ``include_sequential=False`` for pure-queueing uses).  ``quick``
    shrinks job counts and replications for CI smoke runs.
    """
    checks: List[ValidationCheck] = [
        _queueing_check("mm1-moderate-load", 0.6, 1.0, 1, seed, quick),
        _queueing_check("mm1-high-load", 0.85, 1.0, 1, seed, quick),
        _queueing_check("mm2-farm", 1.4, 1.0, 2, seed, quick),
        _queueing_check("mm4-farm", 3.0, 1.0, 4, seed, quick),
    ]
    if include_sequential:
        checks.append(_sequential_identity_check(seed, quick))
    return ValidationReport(checks=tuple(checks), seed=seed, quick=quick)
