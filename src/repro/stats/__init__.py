"""Statistics subsystem: honest intervals, warm-up, stopping, validation.

The reproduction's tables are means over repeated stochastic runs, so every
claim they support is a statistical one.  This package holds the machinery
that keeps those claims honest:

* :mod:`repro.stats.student` — dependency-free Student-t CDF/quantile (the
  correct small-sample multiplier where a normal z would understate interval
  widths by ~40% at n=5);
* :mod:`repro.stats.intervals` — Student-t intervals over replications and
  batch-means intervals over autocorrelated series;
* :mod:`repro.stats.warmup` — MSER-5 initial-transient truncation;
* :mod:`repro.stats.sequential` — the stopping rule behind
  ``run_campaign(reps="auto", ci_target=...)``;
* :mod:`repro.stats.analytical` — closed-form M/M/1 / M/M/c baselines and
  the ``repro validate`` suite that pins the fluid simulator to them.
"""

from .intervals import ConfidenceInterval, batch_means_interval, t_interval
from .sequential import GroupStatus, StoppingDecision, StoppingRule
from .student import regularized_incomplete_beta, t_cdf, t_quantile, two_sided_t
from .warmup import mser5_truncation, truncate_warmup
from .analytical import (
    ValidationCheck,
    ValidationReport,
    erlang_c,
    mm1_mean_response,
    mmc_mean_response,
    run_validation,
    simulate_mmc_mean_response,
)

__all__ = [
    # student
    "regularized_incomplete_beta",
    "t_cdf",
    "t_quantile",
    "two_sided_t",
    # intervals
    "ConfidenceInterval",
    "t_interval",
    "batch_means_interval",
    # warmup
    "mser5_truncation",
    "truncate_warmup",
    # sequential
    "StoppingRule",
    "StoppingDecision",
    "GroupStatus",
    # analytical
    "mm1_mean_response",
    "erlang_c",
    "mmc_mean_response",
    "simulate_mmc_mean_response",
    "ValidationCheck",
    "ValidationReport",
    "run_validation",
]
