"""Warm-up (initial transient) detection via MSER-5.

Long-horizon scenarios start from an empty platform, so the first stretch of
observations is biased low (an empty system serves its first tasks faster
than the steady state will).  MSER — Marginal Standard Error Rule, White
(1997) — picks the truncation point that minimises the standard error of the
*remaining* mean, i.e. the point where deleting more data stops paying for
itself.  MSER-5 is the standard variant that first averages the raw series
into batches of 5 to damp noise.

The rule is fully deterministic: same series in, same truncation out — a
property the tests pin, because a warm-up policy that wobbles between runs
would break the byte-identity contract of the campaign layer.
"""

from __future__ import annotations

import math
from typing import List, Sequence

__all__ = ["mser5_truncation", "truncate_warmup"]

#: Batch size of the MSER-5 variant.
MSER_BATCH = 5


def mser5_truncation(series: Sequence[float], batch_size: int = MSER_BATCH) -> int:
    """Return the MSER-5 truncation point, in *raw observations*.

    The series is averaged into non-overlapping batches of ``batch_size``
    (a trailing partial batch is dropped); for each candidate truncation
    ``d`` (in batches) the MSER statistic

    ``z(d) = sum((Y_j - mean(Y_d..))^2 for j >= d) / (k - d)^2``

    is evaluated over the ``k`` batch means, and the minimising ``d`` is
    returned scaled back to observations.  Following standard practice,
    truncations beyond half the series are ignored — if the minimum wants to
    delete more than half the data the run is simply too short for its
    transient, and keeping everything is the less-wrong answer (callers can
    detect this: the return value is then 0).
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    k = len(series) // batch_size
    if k < 2:
        return 0
    means: List[float] = []
    for b in range(k):
        chunk = series[b * batch_size : (b + 1) * batch_size]
        means.append(sum(float(v) for v in chunk) / batch_size)

    # Suffix sums let each candidate truncation be evaluated in O(1).
    suffix_sum = [0.0] * (k + 1)
    suffix_sq = [0.0] * (k + 1)
    for j in range(k - 1, -1, -1):
        suffix_sum[j] = suffix_sum[j + 1] + means[j]
        suffix_sq[j] = suffix_sq[j + 1] + means[j] * means[j]

    best_d = 0
    best_z = math.inf
    half = k // 2
    for d in range(0, half + 1):
        remaining = k - d
        if remaining < 2:
            break
        mean = suffix_sum[d] / remaining
        sum_sq_dev = suffix_sq[d] - remaining * mean * mean
        z = max(sum_sq_dev, 0.0) / (remaining * remaining)
        if z < best_z - 1e-15:
            best_z = z
            best_d = d
    return best_d * batch_size


def truncate_warmup(series: Sequence[float], batch_size: int = MSER_BATCH) -> List[float]:
    """Return the series with its MSER-5 warm-up prefix removed."""
    cut = mser5_truncation(series, batch_size=batch_size)
    return [float(v) for v in series[cut:]]
