"""Confidence intervals on scalar metrics.

Two constructions are provided:

* :func:`t_interval` — the classical Student-t interval over independent
  replications (the right tool for Tables 7-8 style "mean over N runs"
  aggregates, where each run is an independent sample);
* :func:`batch_means_interval` — the method of non-overlapping batch means
  for a single *autocorrelated* series (e.g. per-task flow times inside one
  long-horizon run), which restores approximate independence by averaging
  consecutive observations into batches before applying the t interval.

Both return a :class:`ConfidenceInterval`, the value object the ranking and
sequential-stopping layers consume: it knows its bounds, its relative
half-width, and whether it overlaps another interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from ..errors import StatsError
from .student import two_sided_t

__all__ = ["ConfidenceInterval", "t_interval", "batch_means_interval"]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided confidence interval ``mean ± half_width``."""

    mean: float
    half_width: float
    confidence: float
    n: int
    method: str = "t"

    @property
    def lower(self) -> float:
        """Lower bound of the interval."""
        return self.mean - self.half_width

    @property
    def upper(self) -> float:
        """Upper bound of the interval."""
        return self.mean + self.half_width

    @property
    def relative_half_width(self) -> float:
        """Half-width relative to ``|mean|`` (``inf`` when the mean is 0)."""
        if self.half_width == 0.0:
            return 0.0
        if self.mean == 0.0:
            return math.inf
        return self.half_width / abs(self.mean)

    def contains(self, value: float) -> bool:
        """Whether ``value`` falls inside the interval (bounds included)."""
        return self.lower - 1e-12 <= value <= self.upper + 1e-12

    def overlaps(self, other: "ConfidenceInterval") -> bool:
        """Whether this interval and ``other`` share at least one point."""
        return self.lower <= other.upper + 1e-12 and other.lower <= self.upper + 1e-12

    def as_dict(self) -> dict:
        """Plain dictionary view (JSON-friendly)."""
        return {
            "mean": self.mean,
            "half_width": self.half_width,
            "confidence": self.confidence,
            "n": self.n,
            "method": self.method,
        }


def t_interval(values: Iterable[float], confidence: float = 0.95) -> ConfidenceInterval:
    """Student-t confidence interval over independent replications.

    Requires at least two values; with one value the spread is unknowable and
    this raises :class:`StatsError` rather than pretending a zero-width
    interval is an honest statement.
    """
    data = [float(v) for v in values]
    n = len(data)
    if n < 2:
        raise StatsError(f"a t interval needs at least 2 values, got {n}")
    mean = sum(data) / n
    variance = sum((v - mean) ** 2 for v in data) / (n - 1)
    half = two_sided_t(confidence, n - 1) * math.sqrt(variance / n)
    return ConfidenceInterval(mean=mean, half_width=half, confidence=confidence, n=n)


def batch_means_interval(
    series: Sequence[float],
    batch_count: Optional[int] = None,
    confidence: float = 0.95,
) -> ConfidenceInterval:
    """Batch-means confidence interval for one autocorrelated series.

    The series is split into ``batch_count`` non-overlapping, equal-size
    batches (a trailing remainder shorter than a batch is dropped); the t
    interval is computed over the batch means.  The default batch count is
    ``min(30, floor(sqrt(len(series))))`` — the classical compromise between
    enough batches for a stable variance estimate and batches long enough to
    wash out autocorrelation.
    """
    data = [float(v) for v in series]
    if batch_count is None:
        batch_count = min(30, int(math.isqrt(len(data)))) if data else 0
    if batch_count < 2:
        raise StatsError(
            f"batch means needs at least 2 batches, got batch_count={batch_count} "
            f"for a series of {len(data)} observations"
        )
    batch_size = len(data) // batch_count
    if batch_size < 1:
        raise StatsError(
            f"series of {len(data)} observations cannot fill {batch_count} batches"
        )
    means: List[float] = []
    for b in range(batch_count):
        chunk = data[b * batch_size : (b + 1) * batch_size]
        means.append(sum(chunk) / batch_size)
    interval = t_interval(means, confidence=confidence)
    return ConfidenceInterval(
        mean=interval.mean,
        half_width=interval.half_width,
        confidence=confidence,
        n=len(data),
        method=f"batch-means({batch_count})",
    )
