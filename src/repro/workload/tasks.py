"""Tasks and their lifecycle records.

A :class:`Task` is one client request: an instance of a problem from the
catalogue, submitted to the agent at a given date.  The middleware fills in
its lifecycle fields as the simulation progresses (mapping, phase completion
dates, final status).  The metric layer (:mod:`repro.metrics`) only ever needs
the completed :class:`Task` objects.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from .problems import PhaseCosts, ProblemSpec

__all__ = ["TaskStatus", "TaskAttempt", "Task", "task_id_factory"]


class TaskStatus(enum.Enum):
    """Lifecycle status of a task."""

    #: Created but not yet submitted to the agent.
    PENDING = "pending"
    #: Submitted to the agent, waiting for or undergoing execution.
    SUBMITTED = "submitted"
    #: Mapped to a server and currently executing (any of the three phases).
    RUNNING = "running"
    #: Completed successfully; ``completion_time`` is set.
    COMPLETED = "completed"
    #: Definitively failed (collapsed server / rejection, retries exhausted).
    FAILED = "failed"


@dataclass
class TaskAttempt:
    """One execution attempt of a task on one server."""

    server: str
    mapped_at: float
    started_at: Optional[float] = None
    input_done_at: Optional[float] = None
    compute_done_at: Optional[float] = None
    finished_at: Optional[float] = None
    failed_at: Optional[float] = None
    failure_reason: Optional[str] = None
    #: Unloaded phase costs on the attempt's server, recorded by the server at
    #: submission time (lets the stretch metric work on custom platforms whose
    #: costs are not in the static catalogue).
    unloaded_costs: Optional[PhaseCosts] = None

    @property
    def succeeded(self) -> bool:
        """Whether this attempt ran to completion."""
        return self.finished_at is not None


@dataclass
class Task:
    """A client request for one problem.

    Parameters
    ----------
    task_id:
        Unique identifier within a run (also used to pair tasks between runs
        when counting "tasks that finish sooner").
    problem:
        The static problem description.
    arrival:
        Date at which the client submits the request to the agent
        (``a_i`` in the paper's notation).
    client:
        Name of the submitting client.
    """

    task_id: str
    problem: ProblemSpec
    arrival: float
    client: str = "client"
    status: TaskStatus = TaskStatus.PENDING
    attempts: List[TaskAttempt] = field(default_factory=list)
    completion_time: Optional[float] = None

    # ------------------------------------------------------------------ #
    # lifecycle helpers (used by the middleware)
    # ------------------------------------------------------------------ #
    def new_attempt(self, server: str, mapped_at: float) -> TaskAttempt:
        """Record the mapping of the task on ``server`` at ``mapped_at``."""
        attempt = TaskAttempt(server=server, mapped_at=mapped_at)
        self.attempts.append(attempt)
        self.status = TaskStatus.RUNNING
        return attempt

    def mark_completed(self, at: float) -> None:
        """Record successful completion at date ``at``."""
        self.status = TaskStatus.COMPLETED
        self.completion_time = at
        if self.attempts:
            self.attempts[-1].finished_at = at

    def mark_failed(self, at: float, reason: str) -> None:
        """Record the failure of the current attempt (the task may be retried)."""
        if self.attempts:
            self.attempts[-1].failed_at = at
            self.attempts[-1].failure_reason = reason
        self.status = TaskStatus.FAILED

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    @property
    def completed(self) -> bool:
        """Whether the task ran to successful completion."""
        return self.status is TaskStatus.COMPLETED and self.completion_time is not None

    @property
    def server(self) -> Optional[str]:
        """Server of the last (or only) attempt, if any."""
        return self.attempts[-1].server if self.attempts else None

    @property
    def n_attempts(self) -> int:
        """Number of execution attempts (> 1 only with fault tolerance)."""
        return len(self.attempts)

    @property
    def flow(self) -> Optional[float]:
        """Time spent in the system, ``C_i - a_i`` (``None`` if not completed)."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.arrival

    def unloaded_duration(self, server: Optional[str] = None) -> float:
        """Duration the task would take alone on ``server`` (default: its own).

        This is the ``rho_i`` of the max-stretch metric: the time the task
        takes on the same but unloaded server (Section 3).
        """
        if server is None and self.attempts and self.attempts[-1].unloaded_costs is not None:
            return self.attempts[-1].unloaded_costs.total
        target = server or self.server
        if target is None:
            raise ValueError(f"task {self.task_id} has not been mapped to any server")
        return self.costs_on(target).total

    def costs_on(self, server: str) -> PhaseCosts:
        """Unloaded phase costs of this task's problem on ``server``."""
        return self.problem.costs_on(server)

    @property
    def stretch(self) -> Optional[float]:
        """Slowdown factor ``flow / unloaded_duration`` (``None`` if not completed)."""
        if self.flow is None:
            return None
        rho = self.unloaded_duration()
        return self.flow / rho if rho > 0 else float("inf")

    def __repr__(self) -> str:
        return (
            f"<Task {self.task_id} problem={self.problem.name} arrival={self.arrival:.2f} "
            f"status={self.status.value}>"
        )


def task_id_factory(prefix: str = "task"):
    """Return a callable producing ``prefix-000001`` style unique task ids."""
    counter = itertools.count(1)

    def make() -> str:
        return f"{prefix}-{next(counter):06d}"

    return make
