"""Problem catalogue.

A *problem* is what a NetSolve client asks the agent to solve (Section 2.1):
its static description gives the size of the input and output data and the
task cost.  The paper uses two families of problems:

* dense matrix multiplications of sizes 1200, 1500 and 1800 (Table 3), whose
  costs were measured on each unloaded server of the testbed, and whose
  memory footprint (input + output matrices) is what triggers the server
  collapses of Table 6;
* ``waste-cpu`` tasks with parameters 200, 400 and 600 (Table 4), designed to
  have similar compute costs but a negligible memory footprint.

The catalogue below hard-codes the measured costs of Tables 3 and 4, so the
reproduced workload is exactly the paper's.  For machines that are not part
of the original testbed, costs fall back to a simple speed/bandwidth model so
the library remains usable on arbitrary synthetic platforms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..errors import UnknownProblem

__all__ = [
    "PhaseCosts",
    "ProblemSpec",
    "ProblemCatalogue",
    "MATMUL_PROBLEMS",
    "WASTECPU_PROBLEMS",
    "PAPER_CATALOGUE",
    "matmul_problem",
    "wastecpu_problem",
]


@dataclass(frozen=True)
class PhaseCosts:
    """Unloaded-server costs (in seconds) of the three phases of a task."""

    input_s: float
    compute_s: float
    output_s: float

    @property
    def total(self) -> float:
        """Total unloaded duration of the task on that server."""
        return self.input_s + self.compute_s + self.output_s

    def scaled(self, factor: float) -> "PhaseCosts":
        """Return the costs multiplied by ``factor`` (used for what-if models)."""
        return PhaseCosts(self.input_s * factor, self.compute_s * factor, self.output_s * factor)


@dataclass(frozen=True)
class ProblemSpec:
    """Static description of a problem, as known to the agent.

    Parameters
    ----------
    name:
        Unique identifier, e.g. ``"matmul-1500"``.
    family:
        Problem family (``"matmul"`` or ``"wastecpu"`` for the paper's two
        workloads).
    parameter:
        The family parameter (matrix size, or waste-cpu duration parameter).
    input_mb / output_mb:
        Size of the input and output data in MB.  For matrix products this is
        also the memory the task needs while resident on a server (Table 3).
    compute_mflop:
        Abstract amount of computation, used only for machines without an
        entry in :attr:`server_costs` (cost = ``compute_mflop / speed_mflops``).
    server_costs:
        Measured unloaded costs per server name (Tables 3 and 4).
    """

    name: str
    family: str
    parameter: int
    input_mb: float
    output_mb: float
    compute_mflop: float
    server_costs: Mapping[str, PhaseCosts] = field(default_factory=dict)

    @property
    def memory_mb(self) -> float:
        """Resident memory the task needs on a server (input + output data)."""
        return self.input_mb + self.output_mb

    def known_servers(self) -> Tuple[str, ...]:
        """Server names that have a measured cost entry."""
        return tuple(self.server_costs)

    def costs_on(
        self,
        server_name: str,
        *,
        speed_mflops: Optional[float] = None,
        bandwidth_mb_s: float = 10.0,
        latency_s: float = 0.01,
    ) -> PhaseCosts:
        """Unloaded costs of this problem on ``server_name``.

        If the server has a measured entry (paper testbed), it is returned
        directly.  Otherwise costs are derived from ``speed_mflops`` and the
        link characteristics — the NetSolve estimate of Section 2.2
        (``size / bandwidth + latency`` for transfers, ``cost / speed`` for the
        computation).
        """
        costs = self.server_costs.get(server_name)
        if costs is not None:
            return costs
        if speed_mflops is None or speed_mflops <= 0:
            raise UnknownProblem(
                f"{self.name} has no measured cost on server {server_name!r} and no "
                f"speed was provided to derive one"
            )
        return PhaseCosts(
            input_s=self.input_mb / bandwidth_mb_s + latency_s,
            compute_s=self.compute_mflop / speed_mflops,
            output_s=self.output_mb / bandwidth_mb_s + latency_s,
        )


class ProblemCatalogue:
    """A named collection of :class:`ProblemSpec` (what servers can "solve")."""

    def __init__(self, problems: Optional[Mapping[str, ProblemSpec]] = None):
        self._problems: Dict[str, ProblemSpec] = dict(problems or {})

    def add(self, problem: ProblemSpec) -> None:
        """Register (or replace) a problem."""
        self._problems[problem.name] = problem

    def get(self, name: str) -> ProblemSpec:
        """Return the problem called ``name`` or raise :class:`UnknownProblem`."""
        try:
            return self._problems[name]
        except KeyError:
            raise UnknownProblem(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._problems

    def __iter__(self):
        return iter(self._problems.values())

    def __len__(self) -> int:
        return len(self._problems)

    def names(self) -> Tuple[str, ...]:
        """All problem names in insertion order."""
        return tuple(self._problems)

    def family(self, family: str) -> Tuple[ProblemSpec, ...]:
        """All problems of a given family, in insertion order."""
        return tuple(p for p in self._problems.values() if p.family == family)

    def __repr__(self) -> str:
        return f"<ProblemCatalogue {list(self._problems)}>"


# --------------------------------------------------------------------------- #
# Table 3 — matrix multiplication tasks
# --------------------------------------------------------------------------- #
def _matmul(size: int, input_mb: float, output_mb: float, costs: Dict[str, Tuple[float, float, float]]) -> ProblemSpec:
    # 2 n^3 floating point operations, in MFlop.
    mflop = 2.0 * size**3 / 1e6
    return ProblemSpec(
        name=f"matmul-{size}",
        family="matmul",
        parameter=size,
        input_mb=input_mb,
        output_mb=output_mb,
        compute_mflop=mflop,
        server_costs={name: PhaseCosts(*c) for name, c in costs.items()},
    )


#: Matrix-multiplication problems with the measured costs of Table 3
#: (seconds on the unloaded servers chamagne, cabestan, artimon, pulney).
MATMUL_PROBLEMS: Dict[str, ProblemSpec] = {
    "matmul-1200": _matmul(
        1200,
        input_mb=21.97,
        output_mb=10.98,
        costs={
            "chamagne": (4.0, 149.0, 1.0),
            "cabestan": (4.0, 70.0, 1.0),
            "artimon": (3.0, 18.0, 1.0),
            "pulney": (3.0, 14.0, 1.0),
        },
    ),
    "matmul-1500": _matmul(
        1500,
        input_mb=34.33,
        output_mb=17.16,
        costs={
            "chamagne": (6.0, 292.0, 2.0),
            "cabestan": (5.0, 136.0, 2.0),
            "artimon": (5.0, 33.0, 1.0),
            "pulney": (5.0, 25.0, 1.0),
        },
    ),
    "matmul-1800": _matmul(
        1800,
        input_mb=49.43,
        output_mb=24.72,
        costs={
            "chamagne": (8.0, 504.0, 3.0),
            "cabestan": (8.0, 231.0, 3.0),
            "artimon": (8.0, 53.0, 2.0),
            "pulney": (7.0, 40.0, 2.0),
        },
    ),
}


# --------------------------------------------------------------------------- #
# Table 4 — waste-cpu tasks
# --------------------------------------------------------------------------- #
def _wastecpu(param: int, costs: Dict[str, Tuple[float, float, float]]) -> ProblemSpec:
    # waste-cpu computes without allocating memory; its abstract cost is taken
    # proportional to the parameter so the generic model stays meaningful.
    return ProblemSpec(
        name=f"wastecpu-{param}",
        family="wastecpu",
        parameter=param,
        input_mb=0.01,
        output_mb=0.01,
        compute_mflop=float(param) * 50.0,
        server_costs={name: PhaseCosts(*c) for name, c in costs.items()},
    )


#: waste-cpu problems with the measured costs of Table 4
#: (seconds on the unloaded servers valette, spinnaker, cabestan, artimon).
WASTECPU_PROBLEMS: Dict[str, ProblemSpec] = {
    "wastecpu-200": _wastecpu(
        200,
        costs={
            "valette": (0.08, 91.81, 0.03),
            "spinnaker": (0.09, 16.0, 0.05),
            "cabestan": (0.10, 74.86, 0.03),
            "artimon": (0.12, 17.1, 0.03),
        },
    ),
    "wastecpu-400": _wastecpu(
        400,
        costs={
            "valette": (0.08, 182.52, 0.03),
            "spinnaker": (0.14, 30.6, 0.06),
            "cabestan": (0.09, 148.48, 0.03),
            "artimon": (0.13, 33.2, 0.03),
        },
    ),
    "wastecpu-600": _wastecpu(
        600,
        costs={
            "valette": (0.13, 273.28, 0.03),
            "spinnaker": (0.09, 45.6, 0.05),
            "cabestan": (0.08, 222.26, 0.03),
            "artimon": (0.14, 49.4, 0.03),
        },
    ),
}


#: The complete catalogue of the paper (Tables 3 and 4 together).
PAPER_CATALOGUE = ProblemCatalogue({**MATMUL_PROBLEMS, **WASTECPU_PROBLEMS})


def matmul_problem(size: int) -> ProblemSpec:
    """Return the matrix-multiplication problem of the given ``size``."""
    name = f"matmul-{size}"
    if name not in MATMUL_PROBLEMS:
        raise UnknownProblem(name)
    return MATMUL_PROBLEMS[name]


def wastecpu_problem(parameter: int) -> ProblemSpec:
    """Return the waste-cpu problem with the given ``parameter``."""
    name = f"wastecpu-{parameter}"
    if name not in WASTECPU_PROBLEMS:
        raise UnknownProblem(name)
    return WASTECPU_PROBLEMS[name]
