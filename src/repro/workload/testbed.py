"""Factories for the paper's experimental testbeds.

The two experiment sets of Section 5 use the same client (zanzibar) and agent
(xrousse) but different server quadruplets:

* first set (matrix multiplications, Tables 5 and 6):
  chamagne, pulney, cabestan, artimon;
* second set (waste-cpu tasks, Tables 7 and 8):
  valette, spinnaker, cabestan, artimon.

These helpers build the corresponding :class:`~repro.platform.spec.PlatformSpec`
instances from the Table 2 machine descriptions, along with the metatask
generators matching each set's workload.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from dataclasses import replace

from ..platform.spec import MachineRole, MachineSpec, PAPER_MACHINES, PlatformSpec
from .arrivals import PoissonArrivals
from .metatask import Metatask, generate_metatask
from .problems import MATMUL_PROBLEMS, WASTECPU_PROBLEMS

__all__ = [
    "FIRST_SET_SERVERS",
    "SECOND_SET_SERVERS",
    "paper_platform",
    "first_set_platform",
    "second_set_platform",
    "synthetic_platform",
    "synthetic_agent_and_client",
    "matmul_metatask",
    "wastecpu_metatask",
]


def synthetic_agent_and_client() -> Dict[str, MachineSpec]:
    """The stock synthetic agent/client pair (``agent-0`` / ``client-0``).

    Shared by :func:`synthetic_platform` and the scenario platform generators
    (:mod:`repro.scenarios.platforms`), so every generated platform carries
    the same middleware-side hardware.
    """
    return {
        "agent-0": MachineSpec(
            name="agent-0", processor="synthetic", speed_mhz=1000.0,
            memory_mb=1024.0, swap_mb=1024.0, role=MachineRole.AGENT,
        ),
        "client-0": MachineSpec(
            name="client-0", processor="synthetic", speed_mhz=1000.0,
            memory_mb=1024.0, swap_mb=1024.0, role=MachineRole.CLIENT,
        ),
    }

#: Servers of the first experiment set (matrix multiplications).
FIRST_SET_SERVERS: Tuple[str, ...] = ("chamagne", "pulney", "cabestan", "artimon")

#: Servers of the second experiment set (waste-cpu tasks).
SECOND_SET_SERVERS: Tuple[str, ...] = ("valette", "spinnaker", "cabestan", "artimon")

#: The Xeon servers of Table 2 (candidates for the dual-CPU hypothesis).
XEON_SERVERS: Tuple[str, ...] = ("pulney", "spinnaker")


def paper_platform(server_names: Sequence[str], dual_cpu_xeons: bool = False) -> PlatformSpec:
    """Platform with the given Table 2 servers, xrousse agent, zanzibar client.

    ``dual_cpu_xeons`` gives the Xeon servers (pulney, spinnaker) two
    processors.  Table 2 does not state their processor count; the dual-CPU
    hypothesis is explored by the ``ablation-dual-cpu`` benchmark because it
    lowers the effective contention towards the levels of the published
    tables (see EXPERIMENTS.md).  The default keeps the literal single-CPU
    reading of Table 2.
    """
    machines: Dict[str, MachineSpec] = {}
    for name in server_names:
        spec = PAPER_MACHINES[name]
        if dual_cpu_xeons and name in XEON_SERVERS:
            spec = replace(spec, cpu_count=2)
        machines[name] = spec
    machines["xrousse"] = PAPER_MACHINES["xrousse"]
    machines["zanzibar"] = PAPER_MACHINES["zanzibar"]
    return PlatformSpec(machines=machines)


def first_set_platform(dual_cpu_xeons: bool = False) -> PlatformSpec:
    """The testbed of the first experiment set (Tables 5 and 6)."""
    return paper_platform(FIRST_SET_SERVERS, dual_cpu_xeons=dual_cpu_xeons)


def second_set_platform(dual_cpu_xeons: bool = False) -> PlatformSpec:
    """The testbed of the second experiment set (Tables 7 and 8)."""
    return paper_platform(SECOND_SET_SERVERS, dual_cpu_xeons=dual_cpu_xeons)


def synthetic_platform(
    n_servers: int = 4,
    speed_mhz: Sequence[float] = (400.0, 800.0, 1600.0, 2400.0),
    memory_mb: float = 512.0,
    swap_mb: float = 512.0,
) -> PlatformSpec:
    """A synthetic heterogeneous platform for examples and property tests.

    Servers are named ``server-0`` ... ``server-N`` and cycle through the
    given clock speeds; the catalogue's generic cost model is used for them.
    """
    if n_servers < 1:
        raise ValueError("n_servers must be at least 1")
    machines: Dict[str, MachineSpec] = {}
    for i in range(n_servers):
        mhz = float(speed_mhz[i % len(speed_mhz)])
        machines[f"server-{i}"] = MachineSpec(
            name=f"server-{i}",
            processor="synthetic",
            speed_mhz=mhz,
            memory_mb=memory_mb,
            swap_mb=swap_mb,
            role=MachineRole.SERVER,
        )
    machines.update(synthetic_agent_and_client())
    return PlatformSpec(machines=machines)


def matmul_metatask(
    count: int = 500,
    mean_interarrival: float = 20.0,
    rng: Optional[np.random.Generator] = None,
    name: Optional[str] = None,
) -> Metatask:
    """A metatask of matrix multiplications (first experiment set).

    Each task is a multiplication of square matrices of size 1200, 1500 or
    1800 with uniform probability; arrivals follow a Poisson process with the
    given mean inter-arrival time (the paper's two rates are 20 s and 15 s,
    see EXPERIMENTS.md).
    """
    problems = [MATMUL_PROBLEMS[k] for k in sorted(MATMUL_PROBLEMS)]
    return generate_metatask(
        name=name or f"matmul-x{count}-rate{mean_interarrival:g}",
        problems=problems,
        count=count,
        arrivals=PoissonArrivals(mean_interarrival),
        rng=rng,
    )


def wastecpu_metatask(
    count: int = 500,
    mean_interarrival: float = 20.0,
    rng: Optional[np.random.Generator] = None,
    name: Optional[str] = None,
) -> Metatask:
    """A metatask of waste-cpu tasks (second experiment set).

    Each task has parameter 200, 400 or 600 with uniform probability.
    """
    problems = [WASTECPU_PROBLEMS[k] for k in sorted(WASTECPU_PROBLEMS)]
    return generate_metatask(
        name=name or f"wastecpu-x{count}-rate{mean_interarrival:g}",
        problems=problems,
        count=count,
        arrivals=PoissonArrivals(mean_interarrival),
        rng=rng,
    )
