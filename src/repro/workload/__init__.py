"""Workload generation: problems, tasks, arrival processes and metatasks.

The factories that assemble the paper's testbeds (Table 2 machines + Tables 3
and 4 problems) live in :mod:`repro.workload.testbed`; that module is not
imported eagerly here because it depends on :mod:`repro.platform`.
"""

from .arrivals import (
    ArrivalProcess,
    ConstantRate,
    DiurnalArrivals,
    FixedIntervalArrivals,
    InhomogeneousPoissonArrivals,
    MarkovModulatedArrivals,
    MergedArrivals,
    PoissonArrivals,
    RampArrivals,
    RampRate,
    RateFunction,
    SinusoidRate,
    TraceArrivals,
    UniformArrivals,
)
from .metatask import Metatask, MetataskItem, generate_metatask
from .problems import (
    MATMUL_PROBLEMS,
    PAPER_CATALOGUE,
    WASTECPU_PROBLEMS,
    PhaseCosts,
    ProblemCatalogue,
    ProblemSpec,
    matmul_problem,
    wastecpu_problem,
)
from .tasks import Task, TaskAttempt, TaskStatus, task_id_factory

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "UniformArrivals",
    "FixedIntervalArrivals",
    "TraceArrivals",
    "RateFunction",
    "ConstantRate",
    "SinusoidRate",
    "RampRate",
    "InhomogeneousPoissonArrivals",
    "DiurnalArrivals",
    "RampArrivals",
    "MarkovModulatedArrivals",
    "MergedArrivals",
    "Metatask",
    "MetataskItem",
    "generate_metatask",
    "PhaseCosts",
    "ProblemSpec",
    "ProblemCatalogue",
    "MATMUL_PROBLEMS",
    "WASTECPU_PROBLEMS",
    "PAPER_CATALOGUE",
    "matmul_problem",
    "wastecpu_problem",
    "Task",
    "TaskAttempt",
    "TaskStatus",
    "task_id_factory",
]
