"""Arrival processes for metatasks.

The paper submits the *same metatask* (same set of tasks) with different
arrival dates; "the difference between two arrivals is drawn from a Poisson
distribution" with a given mean (Section 5).  In queueing terms this is a
Poisson process: exponentially distributed inter-arrival times.  We keep the
paper's phrasing in :class:`PoissonArrivals` and also provide deterministic
and trace-driven processes for tests, examples and ablations.

Beyond the paper's homogeneous Poisson protocol, the scenario subsystem
(:mod:`repro.scenarios`) needs *non-homogeneous* load: bursty, diurnal and
ramping arrival patterns.  These are provided by

* :class:`InhomogeneousPoissonArrivals` — an inhomogeneous Poisson process
  with an arbitrary rate function λ(t), simulated by Lewis-Shedler thinning
  (candidates from a homogeneous process at the majorant rate, accepted with
  probability λ(t)/λ_max);
* :class:`DiurnalArrivals` / :class:`RampArrivals` — thin wrappers around the
  sinusoid and linear-ramp rate functions;
* :class:`MarkovModulatedArrivals` — a two-state on-off modulated Poisson
  process (bursts at a high rate, quiet periods at a low one);
* :class:`MergedArrivals` — superposition of independent component
  processes.

Rate functions are small frozen dataclasses (:class:`ConstantRate`,
:class:`SinusoidRate`, :class:`RampRate`) so processes stay picklable and
their reprs readable in scenario listings.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "UniformArrivals",
    "FixedIntervalArrivals",
    "TraceArrivals",
    "RateFunction",
    "ConstantRate",
    "SinusoidRate",
    "RampRate",
    "InhomogeneousPoissonArrivals",
    "DiurnalArrivals",
    "RampArrivals",
    "MarkovModulatedArrivals",
    "MergedArrivals",
]


class ArrivalProcess(abc.ABC):
    """Generates the submission dates of the tasks of a metatask."""

    @abc.abstractmethod
    def dates(self, count: int, rng: Optional[np.random.Generator] = None) -> List[float]:
        """Return ``count`` non-decreasing arrival dates starting at or after 0."""

    def __call__(self, count: int, rng: Optional[np.random.Generator] = None) -> List[float]:
        return self.dates(count, rng)


class PoissonArrivals(ArrivalProcess):
    """Poisson arrivals: exponential inter-arrival times with a given mean.

    Parameters
    ----------
    mean_interarrival:
        Mean time (seconds) between two consecutive task submissions.  The
        paper uses two rates per experiment set; see
        :mod:`repro.experiments.config` for the values adopted here.
    first_at:
        Date of the first arrival draw offset (defaults to one inter-arrival
        draw after 0, like every other gap).
    """

    def __init__(self, mean_interarrival: float, first_at: Optional[float] = None):
        if mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be strictly positive")
        self.mean_interarrival = float(mean_interarrival)
        self.first_at = first_at

    def dates(self, count: int, rng: Optional[np.random.Generator] = None) -> List[float]:
        if count < 0:
            raise ValueError("count must be non-negative")
        # repro: allow[DET-RNG] interactive convenience fallback only — every
        # campaign/experiment path passes a generator seeded from the root seed
        rng = rng if rng is not None else np.random.default_rng()
        gaps = rng.exponential(self.mean_interarrival, size=count)
        dates = np.cumsum(gaps)
        if self.first_at is not None and count:
            dates = dates - dates[0] + self.first_at
        return [float(d) for d in dates]

    def __repr__(self) -> str:
        return f"PoissonArrivals(mean_interarrival={self.mean_interarrival})"


class UniformArrivals(ArrivalProcess):
    """Inter-arrival times drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float, high: float):
        if low < 0 or high < low:
            raise ValueError("need 0 <= low <= high")
        self.low = float(low)
        self.high = float(high)

    def dates(self, count: int, rng: Optional[np.random.Generator] = None) -> List[float]:
        if count < 0:
            raise ValueError("count must be non-negative")
        # repro: allow[DET-RNG] interactive convenience fallback only — every
        # campaign/experiment path passes a generator seeded from the root seed
        rng = rng if rng is not None else np.random.default_rng()
        gaps = rng.uniform(self.low, self.high, size=count)
        return [float(d) for d in np.cumsum(gaps)]

    def __repr__(self) -> str:
        return f"UniformArrivals(low={self.low}, high={self.high})"


class FixedIntervalArrivals(ArrivalProcess):
    """Deterministic arrivals every ``interval`` seconds (for tests/examples)."""

    def __init__(self, interval: float, first_at: float = 0.0):
        if interval < 0:
            raise ValueError("interval must be non-negative")
        self.interval = float(interval)
        self.first_at = float(first_at)

    def dates(self, count: int, rng: Optional[np.random.Generator] = None) -> List[float]:
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.first_at + i * self.interval for i in range(count)]

    def __repr__(self) -> str:
        return f"FixedIntervalArrivals(interval={self.interval}, first_at={self.first_at})"


class TraceArrivals(ArrivalProcess):
    """Arrivals replayed from an explicit list of dates.

    The trace must already be a valid arrival sequence: non-negative and
    non-decreasing.  Silently re-sorting would hide recording bugs in the
    trace (an out-of-order timestamp usually means the trace was assembled
    wrong), so construction validates and reports the first offending index
    instead.
    """

    def __init__(self, dates: Iterable[float]):
        self._dates = [float(d) for d in dates]
        for i, date in enumerate(self._dates):
            if not np.isfinite(date):
                raise ValueError(f"trace date #{i} is not finite: {date!r}")
            if date < 0:
                raise ValueError(
                    f"arrival dates must be non-negative; trace date #{i} is {date!r}"
                )
            if i and date < self._dates[i - 1]:
                raise ValueError(
                    f"trace dates must be non-decreasing; date #{i} ({date!r}) comes "
                    f"after #{i - 1} ({self._dates[i - 1]!r}) — sort or fix the trace"
                )

    def dates(self, count: int, rng: Optional[np.random.Generator] = None) -> List[float]:
        if count < 0:
            raise ValueError("count must be non-negative")
        if count > len(self._dates):
            raise ValueError(
                f"trace holds {len(self._dates)} dates but {count} were requested; "
                f"replaying a trace never invents arrivals — pass count <= {len(self._dates)}"
            )
        return list(self._dates[:count])

    def __len__(self) -> int:
        return len(self._dates)

    def __iter__(self) -> Iterator[float]:
        return iter(self._dates)

    def __repr__(self) -> str:
        return f"TraceArrivals(n={len(self._dates)})"


# --------------------------------------------------------------------------- #
# rate functions (for inhomogeneous Poisson processes)
# --------------------------------------------------------------------------- #
class RateFunction(abc.ABC):
    """Instantaneous arrival rate λ(t) of an inhomogeneous Poisson process.

    Implementations are frozen dataclasses: picklable, hashable, and with a
    repr that reads well in scenario listings.  :attr:`max_rate` must bound
    λ(t) from above for every t ≥ 0 — it is the majorant rate the thinning
    algorithm generates candidates at.
    """

    @abc.abstractmethod
    def rate(self, t: float) -> float:
        """Arrival rate (arrivals per second) at time ``t``."""

    @property
    @abc.abstractmethod
    def max_rate(self) -> float:
        """An upper bound of :meth:`rate` over t ≥ 0 (thinning majorant)."""

    def __call__(self, t: float) -> float:
        return self.rate(t)


@dataclass(frozen=True)
class ConstantRate(RateFunction):
    """λ(t) = rate_per_s: the homogeneous special case (thinning accepts all)."""

    rate_per_s: float

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be strictly positive")

    def rate(self, t: float) -> float:
        return self.rate_per_s

    @property
    def max_rate(self) -> float:
        return self.rate_per_s


@dataclass(frozen=True)
class SinusoidRate(RateFunction):
    """A diurnal-style sinusoid: λ(t) = base · (1 + amplitude · sin(2πt/period + phase)).

    ``amplitude`` must stay in [0, 1) so the rate never becomes negative (an
    amplitude of exactly 1 would create zero-rate instants, which the thinning
    loop handles, but hour-long dead zones make experiments needlessly slow).
    """

    base_rate_per_s: float
    amplitude: float
    period_s: float
    phase_rad: float = 0.0

    def __post_init__(self) -> None:
        if self.base_rate_per_s <= 0:
            raise ValueError("base_rate_per_s must be strictly positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if self.period_s <= 0:
            raise ValueError("period_s must be strictly positive")

    def rate(self, t: float) -> float:
        return self.base_rate_per_s * (
            1.0 + self.amplitude * np.sin(2.0 * np.pi * t / self.period_s + self.phase_rad)
        )

    @property
    def max_rate(self) -> float:
        return self.base_rate_per_s * (1.0 + self.amplitude)


@dataclass(frozen=True)
class RampRate(RateFunction):
    """Linear ramp from ``start`` to ``end`` over ``duration_s``, then flat."""

    start_rate_per_s: float
    end_rate_per_s: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.start_rate_per_s <= 0 or self.end_rate_per_s <= 0:
            raise ValueError("ramp rates must be strictly positive")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be strictly positive")

    def rate(self, t: float) -> float:
        if t >= self.duration_s:
            return self.end_rate_per_s
        fraction = t / self.duration_s
        return self.start_rate_per_s + fraction * (self.end_rate_per_s - self.start_rate_per_s)

    @property
    def max_rate(self) -> float:
        return max(self.start_rate_per_s, self.end_rate_per_s)


# --------------------------------------------------------------------------- #
# non-homogeneous processes
# --------------------------------------------------------------------------- #
class InhomogeneousPoissonArrivals(ArrivalProcess):
    """Inhomogeneous Poisson process with rate λ(t), simulated by thinning.

    Lewis-Shedler thinning: candidate points are drawn from a homogeneous
    Poisson process at the majorant rate λ_max and each candidate at time t is
    accepted with probability λ(t)/λ_max.  The accepted points form an exact
    inhomogeneous Poisson process with intensity λ — no discretisation of the
    rate function is involved, so arbitrarily sharp profiles are simulated
    faithfully at O(λ_max/λ̄) candidates per arrival.

    Parameters
    ----------
    rate_fn:
        The intensity λ(t) (a :class:`RateFunction`).
    max_rate:
        Optional explicit majorant; defaults to ``rate_fn.max_rate``.  A
        candidate whose λ(t) exceeds the majorant is a programming error in
        the rate function and raises immediately (silently clamping would
        distort the distribution).
    """

    #: Upper bound of thinning candidates per requested arrival before the
    #: generator gives up (guards against near-zero-rate dead zones).
    MAX_CANDIDATES_PER_ARRIVAL = 10_000

    def __init__(self, rate_fn: RateFunction, max_rate: Optional[float] = None):
        self.rate_fn = rate_fn
        self.max_rate = float(max_rate) if max_rate is not None else float(rate_fn.max_rate)
        if self.max_rate <= 0:
            raise ValueError("max_rate must be strictly positive")

    def dates(self, count: int, rng: Optional[np.random.Generator] = None) -> List[float]:
        if count < 0:
            raise ValueError("count must be non-negative")
        # repro: allow[DET-RNG] interactive convenience fallback only — every
        # campaign/experiment path passes a generator seeded from the root seed
        rng = rng if rng is not None else np.random.default_rng()
        dates: List[float] = []
        t = 0.0
        candidates = 0
        budget = self.MAX_CANDIDATES_PER_ARRIVAL * max(count, 1)
        while len(dates) < count:
            t += rng.exponential(1.0 / self.max_rate)
            rate = float(self.rate_fn.rate(t))
            if rate > self.max_rate * (1.0 + 1e-9):
                raise ValueError(
                    f"rate function returned {rate!r} at t={t!r}, above the thinning "
                    f"majorant {self.max_rate!r}; fix the rate function's max_rate"
                )
            if rate < 0:
                raise ValueError(f"rate function returned a negative rate at t={t!r}")
            if rng.uniform() * self.max_rate <= rate:
                dates.append(t)
            candidates += 1
            if candidates > budget:
                raise ValueError(
                    f"thinning generated {candidates} candidates for only "
                    f"{len(dates)}/{count} accepted arrivals; the rate function is "
                    "nearly zero over a long stretch — raise its floor or lower max_rate"
                )
        return dates

    def __repr__(self) -> str:
        return f"InhomogeneousPoissonArrivals(rate_fn={self.rate_fn!r}, max_rate={self.max_rate:g})"


class DiurnalArrivals(InhomogeneousPoissonArrivals):
    """Sinusoidal day/night load: a convenience wrapper over :class:`SinusoidRate`.

    ``mean_interarrival`` is the *average* gap (as in :class:`PoissonArrivals`);
    the instantaneous rate swings by ±``amplitude`` around 1/mean with the
    given period (86 400 s for a literal day).
    """

    def __init__(
        self,
        mean_interarrival: float,
        amplitude: float = 0.8,
        period_s: float = 86_400.0,
        phase_rad: float = 0.0,
    ):
        if mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be strictly positive")
        self.mean_interarrival = float(mean_interarrival)
        super().__init__(
            SinusoidRate(
                base_rate_per_s=1.0 / mean_interarrival,
                amplitude=amplitude,
                period_s=period_s,
                phase_rad=phase_rad,
            )
        )

    def __repr__(self) -> str:
        return (
            f"DiurnalArrivals(mean_interarrival={self.mean_interarrival:g}, "
            f"amplitude={self.rate_fn.amplitude:g}, period_s={self.rate_fn.period_s:g})"
        )


class RampArrivals(InhomogeneousPoissonArrivals):
    """Load ramping from one mean inter-arrival gap to another over a window."""

    def __init__(self, start_interarrival: float, end_interarrival: float, duration_s: float):
        if start_interarrival <= 0 or end_interarrival <= 0:
            raise ValueError("inter-arrival means must be strictly positive")
        self.start_interarrival = float(start_interarrival)
        self.end_interarrival = float(end_interarrival)
        super().__init__(
            RampRate(
                start_rate_per_s=1.0 / start_interarrival,
                end_rate_per_s=1.0 / end_interarrival,
                duration_s=duration_s,
            )
        )

    def __repr__(self) -> str:
        return (
            f"RampArrivals(start_interarrival={self.start_interarrival:g}, "
            f"end_interarrival={self.end_interarrival:g}, "
            f"duration_s={self.rate_fn.duration_s:g})"
        )


class MarkovModulatedArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (bursty on-off load).

    The modulating chain alternates between a *burst* state (arrivals at
    ``1/burst_interarrival``) and a *quiet* state (``1/quiet_interarrival``);
    sojourn times in each state are exponential with the given means.  This is
    the classic MMPP(2) traffic model: overdispersed, strongly autocorrelated
    arrivals that stress schedulers far harder than a homogeneous stream of
    the same average rate.

    A ``quiet_interarrival`` of ``math.inf`` is allowed (silent quiet
    periods): arrivals then only occur during bursts.
    """

    def __init__(
        self,
        burst_interarrival: float,
        quiet_interarrival: float,
        mean_burst_s: float,
        mean_quiet_s: float,
        start_in_burst: bool = True,
    ):
        if burst_interarrival <= 0:
            raise ValueError("burst_interarrival must be strictly positive")
        if quiet_interarrival <= 0:
            raise ValueError("quiet_interarrival must be strictly positive (inf allowed)")
        if mean_burst_s <= 0 or mean_quiet_s <= 0:
            raise ValueError("state sojourn means must be strictly positive")
        self.burst_interarrival = float(burst_interarrival)
        self.quiet_interarrival = float(quiet_interarrival)
        self.mean_burst_s = float(mean_burst_s)
        self.mean_quiet_s = float(mean_quiet_s)
        self.start_in_burst = bool(start_in_burst)

    def dates(self, count: int, rng: Optional[np.random.Generator] = None) -> List[float]:
        if count < 0:
            raise ValueError("count must be non-negative")
        # repro: allow[DET-RNG] interactive convenience fallback only — every
        # campaign/experiment path passes a generator seeded from the root seed
        rng = rng if rng is not None else np.random.default_rng()
        dates: List[float] = []
        t = 0.0
        in_burst = self.start_in_burst
        while len(dates) < count:
            sojourn = rng.exponential(self.mean_burst_s if in_burst else self.mean_quiet_s)
            state_end = t + sojourn
            interarrival = self.burst_interarrival if in_burst else self.quiet_interarrival
            if np.isfinite(interarrival):
                while len(dates) < count:
                    gap = rng.exponential(interarrival)
                    if t + gap >= state_end:
                        break
                    t += gap
                    dates.append(t)
            t = state_end
            in_burst = not in_burst
        return dates

    def __repr__(self) -> str:
        return (
            f"MarkovModulatedArrivals(burst={self.burst_interarrival:g}, "
            f"quiet={self.quiet_interarrival:g}, mean_burst_s={self.mean_burst_s:g}, "
            f"mean_quiet_s={self.mean_quiet_s:g})"
        )


class MergedArrivals(ArrivalProcess):
    """Superposition of independent component arrival processes.

    The first ``count`` arrivals of the merged stream are a subset of the
    union of the first ``count`` arrivals of every component (each component
    contributes at most ``count`` of the earliest merged points), so drawing
    ``count`` dates from each component, merging and truncating is exact.

    Components draw from the same generator in declaration order, so a seeded
    run is reproducible.
    """

    def __init__(self, processes: Sequence[ArrivalProcess]):
        if not processes:
            raise ValueError("MergedArrivals needs at least one component process")
        self.processes = tuple(processes)

    def dates(self, count: int, rng: Optional[np.random.Generator] = None) -> List[float]:
        if count < 0:
            raise ValueError("count must be non-negative")
        # repro: allow[DET-RNG] interactive convenience fallback only — every
        # campaign/experiment path passes a generator seeded from the root seed
        rng = rng if rng is not None else np.random.default_rng()
        merged: List[float] = []
        for process in self.processes:
            merged.extend(process.dates(count, rng))
        merged.sort()
        return merged[:count]

    def __repr__(self) -> str:
        return f"MergedArrivals(components={list(self.processes)!r})"
