"""Arrival processes for metatasks.

The paper submits the *same metatask* (same set of tasks) with different
arrival dates; "the difference between two arrivals is drawn from a Poisson
distribution" with a given mean (Section 5).  In queueing terms this is a
Poisson process: exponentially distributed inter-arrival times.  We keep the
paper's phrasing in :class:`PoissonArrivals` and also provide deterministic
and trace-driven processes for tests, examples and ablations.
"""

from __future__ import annotations

import abc
from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "UniformArrivals",
    "FixedIntervalArrivals",
    "TraceArrivals",
]


class ArrivalProcess(abc.ABC):
    """Generates the submission dates of the tasks of a metatask."""

    @abc.abstractmethod
    def dates(self, count: int, rng: Optional[np.random.Generator] = None) -> List[float]:
        """Return ``count`` non-decreasing arrival dates starting at or after 0."""

    def __call__(self, count: int, rng: Optional[np.random.Generator] = None) -> List[float]:
        return self.dates(count, rng)


class PoissonArrivals(ArrivalProcess):
    """Poisson arrivals: exponential inter-arrival times with a given mean.

    Parameters
    ----------
    mean_interarrival:
        Mean time (seconds) between two consecutive task submissions.  The
        paper uses two rates per experiment set; see
        :mod:`repro.experiments.config` for the values adopted here.
    first_at:
        Date of the first arrival draw offset (defaults to one inter-arrival
        draw after 0, like every other gap).
    """

    def __init__(self, mean_interarrival: float, first_at: Optional[float] = None):
        if mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be strictly positive")
        self.mean_interarrival = float(mean_interarrival)
        self.first_at = first_at

    def dates(self, count: int, rng: Optional[np.random.Generator] = None) -> List[float]:
        if count < 0:
            raise ValueError("count must be non-negative")
        rng = rng if rng is not None else np.random.default_rng()
        gaps = rng.exponential(self.mean_interarrival, size=count)
        dates = np.cumsum(gaps)
        if self.first_at is not None and count:
            dates = dates - dates[0] + self.first_at
        return [float(d) for d in dates]

    def __repr__(self) -> str:
        return f"PoissonArrivals(mean_interarrival={self.mean_interarrival})"


class UniformArrivals(ArrivalProcess):
    """Inter-arrival times drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float, high: float):
        if low < 0 or high < low:
            raise ValueError("need 0 <= low <= high")
        self.low = float(low)
        self.high = float(high)

    def dates(self, count: int, rng: Optional[np.random.Generator] = None) -> List[float]:
        if count < 0:
            raise ValueError("count must be non-negative")
        rng = rng if rng is not None else np.random.default_rng()
        gaps = rng.uniform(self.low, self.high, size=count)
        return [float(d) for d in np.cumsum(gaps)]

    def __repr__(self) -> str:
        return f"UniformArrivals(low={self.low}, high={self.high})"


class FixedIntervalArrivals(ArrivalProcess):
    """Deterministic arrivals every ``interval`` seconds (for tests/examples)."""

    def __init__(self, interval: float, first_at: float = 0.0):
        if interval < 0:
            raise ValueError("interval must be non-negative")
        self.interval = float(interval)
        self.first_at = float(first_at)

    def dates(self, count: int, rng: Optional[np.random.Generator] = None) -> List[float]:
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.first_at + i * self.interval for i in range(count)]

    def __repr__(self) -> str:
        return f"FixedIntervalArrivals(interval={self.interval}, first_at={self.first_at})"


class TraceArrivals(ArrivalProcess):
    """Arrivals replayed from an explicit list of dates."""

    def __init__(self, dates: Iterable[float]):
        self._dates = sorted(float(d) for d in dates)
        if any(d < 0 for d in self._dates):
            raise ValueError("arrival dates must be non-negative")

    def dates(self, count: int, rng: Optional[np.random.Generator] = None) -> List[float]:
        if count > len(self._dates):
            raise ValueError(
                f"trace holds {len(self._dates)} dates but {count} were requested"
            )
        return list(self._dates[:count])

    def __len__(self) -> int:
        return len(self._dates)

    def __iter__(self) -> Iterator[float]:
        return iter(self._dates)

    def __repr__(self) -> str:
        return f"TraceArrivals(n={len(self._dates)})"
