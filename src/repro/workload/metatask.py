"""Metatask generation.

A *metatask* is a set of independent tasks submitted to the agent
(Section 5: "We call an experiment the submission of a metatask composed of
N independent tasks to the agent").  The tasks of a metatask are all of the
same family; each task draws its parameter (matrix size / waste-cpu
parameter) uniformly among the family's three values, and its arrival date
from the arrival process.

Crucially, the paper compares heuristics on the *same* metatask: the tasks
and their arrival dates are drawn once, then replayed under every heuristic.
:class:`Metatask` is therefore an immutable value object; the middleware
works on fresh :class:`~repro.workload.tasks.Task` copies produced by
:meth:`Metatask.instantiate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import WorkloadError
from .arrivals import ArrivalProcess, PoissonArrivals
from .problems import ProblemSpec
from .tasks import Task

__all__ = ["MetataskItem", "Metatask", "generate_metatask"]


@dataclass(frozen=True)
class MetataskItem:
    """One entry of a metatask: a problem and its submission date."""

    index: int
    problem: ProblemSpec
    arrival: float


@dataclass(frozen=True)
class Metatask:
    """An immutable set of independent tasks with fixed arrival dates."""

    name: str
    items: Tuple[MetataskItem, ...]

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    @property
    def makespan_lower_bound(self) -> float:
        """Date of the last arrival (no schedule can finish before that)."""
        return max((item.arrival for item in self.items), default=0.0)

    def problem_mix(self) -> dict:
        """Histogram of problem names in the metatask."""
        mix: dict = {}
        for item in self.items:
            mix[item.problem.name] = mix.get(item.problem.name, 0) + 1
        return mix

    def instantiate(self, client: str = "client") -> List[Task]:
        """Create fresh :class:`Task` objects for one simulation run."""
        return [
            Task(
                task_id=f"{self.name}/{item.index:06d}",
                problem=item.problem,
                arrival=item.arrival,
                client=client,
            )
            for item in self.items
        ]

    def with_arrivals(self, dates: Sequence[float], name: Optional[str] = None) -> "Metatask":
        """Return a copy of the metatask with new arrival dates (same tasks).

        This mirrors the paper's protocol of considering "the same set of
        tasks ... with different arrival dates".
        """
        if len(dates) != len(self.items):
            raise WorkloadError(
                f"{len(dates)} arrival dates provided for {len(self.items)} tasks"
            )
        items = tuple(
            MetataskItem(index=item.index, problem=item.problem, arrival=float(date))
            for item, date in zip(self.items, sorted(dates))
        )
        return Metatask(name=name or f"{self.name}-rearrived", items=items)


def generate_metatask(
    name: str,
    problems: Sequence[ProblemSpec],
    count: int,
    arrivals: ArrivalProcess,
    rng: Optional[np.random.Generator] = None,
    problem_weights: Optional[Sequence[float]] = None,
) -> Metatask:
    """Draw a metatask.

    Parameters
    ----------
    name:
        Identifier of the metatask (becomes the prefix of its task ids).
    problems:
        The candidate problems; "a task has a uniform probability to be of
        each duration" (Section 5) unless ``problem_weights`` is given.
    count:
        Number of tasks (the paper uses 500).
    arrivals:
        The arrival process (typically :class:`PoissonArrivals`).
    rng:
        NumPy generator; a default one is created when omitted (not
        recommended for experiments — use :class:`repro.simulation.RandomStreams`).
    problem_weights:
        Optional non-uniform mix of the problems.
    """
    if count <= 0:
        raise WorkloadError("a metatask needs at least one task")
    if not problems:
        raise WorkloadError("at least one problem spec is required")
    # repro: allow[DET-RNG] interactive convenience fallback only — every
    # campaign/experiment path passes a generator seeded from the root seed
    rng = rng if rng is not None else np.random.default_rng()

    if problem_weights is not None:
        if len(problem_weights) != len(problems):
            raise WorkloadError("problem_weights must match the number of problems")
        weights = np.asarray(problem_weights, dtype=float)
        if np.any(weights < 0) or weights.sum() <= 0:
            raise WorkloadError("problem_weights must be non-negative and sum to > 0")
        weights = weights / weights.sum()
    else:
        weights = np.full(len(problems), 1.0 / len(problems))

    indices = rng.choice(len(problems), size=count, p=weights)
    dates = arrivals.dates(count, rng)
    items = tuple(
        MetataskItem(index=i, problem=problems[int(idx)], arrival=float(date))
        for i, (idx, date) in enumerate(zip(indices, dates))
    )
    return Metatask(name=name, items=items)
