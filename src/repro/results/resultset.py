"""Columnar container of run records with query, pivot and persistence.

A :class:`ResultSet` holds :class:`~repro.results.records.RunRecord` data in
*columnar* form — one list per key field, one list per metric — so that
million-record campaigns filter and aggregate without materialising a Python
object per run.  Records are materialised on demand (:attr:`records`,
iteration); the fluent query API (:meth:`filter`, :meth:`group_by`,
:meth:`aggregate`, :meth:`pivot`) works on the columns directly.

Persistence (:meth:`save` / :meth:`load`) round-trips through JSONL (records
plus the set-level ``meta`` header) or CSV (records only).  Files are written
in canonical record order with deterministic float formatting, so two
campaigns that produced the same records — e.g. ``jobs=1`` and ``jobs=8``
runs of the same experiment — save **byte-identical** files.
"""

from __future__ import annotations

import csv
import io
import json
import os
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

from ..errors import ResultsError
from ..metrics.aggregate import Aggregate, aggregate_values
from .records import (
    METRIC_FIELD_ORDER,
    METRIC_ROW_TO_SUMMARY_FIELD,
    SCHEMA_VERSION,
    SOONER_METRIC,
    SOONER_ROW,
    RunRecord,
)

__all__ = ["ResultSet"]

#: Key (non-metric) fields, in column order.
_KEY_FIELDS = (
    "experiment_id",
    "heuristic",
    "metatask_index",
    "repetition",
    "seed",
    "config_hash",
    "truncated",
    "schema_version",
)

#: Magic first-line marker of the JSONL format.
_JSONL_FORMAT = "repro-results"


def _format_cell(value: Union[None, bool, int, float, str]) -> str:
    """Deterministic, round-trip-exact CSV cell text."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    return str(value)


class ResultSet:
    """A columnar, queryable, persistable collection of run records.

    ``meta`` is a small JSON-serialisable mapping describing the set as a
    whole (experiment id, table title, notes, ...); it travels with the JSONL
    format and feeds default titles in :meth:`pivot`.
    """

    def __init__(
        self,
        records: Iterable[RunRecord] = (),
        meta: Optional[Mapping[str, Any]] = None,
    ):
        self.meta: Dict[str, Any] = dict(meta or {})
        self._fields: Dict[str, List[Any]] = {name: [] for name in _KEY_FIELDS}
        self._metrics: Dict[str, List[Optional[float]]] = {}
        for record in records:
            self.append(record)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def append(self, record: RunRecord) -> None:
        """Append one record (metric columns stay aligned via ``None`` pads)."""
        n = len(self)
        for name in _KEY_FIELDS:
            self._fields[name].append(getattr(record, name))
        for name, value in record.metrics.items():
            column = self._metrics.get(name)
            if column is None:
                column = [None] * n
                self._metrics[name] = column
            column.append(None if value is None else float(value))
        for name, column in self._metrics.items():
            if len(column) == n:  # metric absent from this record
                column.append(None)

    def extend(self, records: Iterable[RunRecord]) -> None:
        """Append several records."""
        for record in records:
            self.append(record)

    def merge(self, other: "ResultSet") -> "ResultSet":
        """New set holding this set's records followed by ``other``'s.

        ``meta`` is taken from ``self`` (the merged-into side); persist the
        merge to re-canonicalise record order.
        """
        merged = ResultSet(meta=self.meta)
        merged.extend(self)
        merged.extend(other)
        return merged

    # ------------------------------------------------------------------ #
    # record access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._fields["experiment_id"])

    def __bool__(self) -> bool:
        return len(self) > 0

    def _record_at(self, index: int) -> RunRecord:
        metrics = {
            name: column[index]
            for name, column in self._metrics.items()
            if column[index] is not None
        }
        return RunRecord(
            experiment_id=self._fields["experiment_id"][index],
            heuristic=self._fields["heuristic"][index],
            metatask_index=self._fields["metatask_index"][index],
            repetition=self._fields["repetition"][index],
            seed=self._fields["seed"][index],
            config_hash=self._fields["config_hash"][index],
            truncated=self._fields["truncated"][index],
            metrics=metrics,
            schema_version=self._fields["schema_version"][index],
        )

    def __iter__(self) -> Iterator[RunRecord]:
        for index in range(len(self)):
            yield self._record_at(index)

    @property
    def records(self) -> List[RunRecord]:
        """The records, materialised in storage order."""
        return list(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultSet):
            return NotImplemented
        return self.records == other.records and self.meta == other.meta

    def __repr__(self) -> str:
        experiments = sorted(set(self._fields["experiment_id"]))
        return f"<ResultSet {len(self)} records, experiments={experiments}>"

    def column(self, name: str) -> List[Any]:
        """One column by name — a key field or a metric (copied)."""
        if name in self._fields:
            return list(self._fields[name])
        if name in self._metrics:
            return list(self._metrics[name])
        raise ResultsError(
            f"unknown column {name!r}; fields: {list(_KEY_FIELDS)}, "
            f"metrics: {self.metric_names()}"
        )

    def metric_names(self) -> List[str]:
        """Metric column names in canonical order (extensions last, sorted)."""
        known = [name for name in METRIC_FIELD_ORDER if name in self._metrics]
        extras = sorted(name for name in self._metrics if name not in METRIC_FIELD_ORDER)
        return known + extras

    # ------------------------------------------------------------------ #
    # query API
    # ------------------------------------------------------------------ #
    def filter(
        self,
        predicate: Optional[Callable[[RunRecord], bool]] = None,
        **field_equals: Any,
    ) -> "ResultSet":
        """Records matching every ``field=value`` pair (and the predicate).

        Field filters compare key-field columns without materialising
        records; a ``predicate`` (record → bool), when given, is applied on
        top.  Storage order is preserved.
        """
        for name in field_equals:
            if name not in self._fields:
                raise ResultsError(
                    f"unknown filter field {name!r}; fields: {list(_KEY_FIELDS)}"
                )
        indices = range(len(self))
        for name, wanted in field_equals.items():
            column = self._fields[name]
            indices = [i for i in indices if column[i] == wanted]
        out = ResultSet(meta=self.meta)
        for i in indices:
            record = self._record_at(i)
            if predicate is None or predicate(record):
                out.append(record)
        return out

    def group_by(self, *fields: str) -> Dict[Any, "ResultSet"]:
        """Partition by one or several key fields, first-seen group order.

        Keys are scalars for a single field, tuples for several.
        """
        if not fields:
            raise ResultsError("group_by needs at least one field")
        for name in fields:
            if name not in self._fields:
                raise ResultsError(
                    f"unknown group_by field {name!r}; fields: {list(_KEY_FIELDS)}"
                )
        groups: Dict[Any, ResultSet] = {}
        columns = [self._fields[name] for name in fields]
        for i in range(len(self)):
            key = tuple(column[i] for column in columns)
            if len(fields) == 1:
                key = key[0]
            groups.setdefault(key, ResultSet(meta=self.meta)).append(self._record_at(i))
        return groups

    def aggregate(
        self, metric: str, by: Optional[Union[str, Sequence[str]]] = None
    ) -> Union[Aggregate, Dict[Any, Aggregate]]:
        """Mean/std/min/max of one metric (``None`` values are skipped).

        Without ``by``: one :class:`~repro.metrics.aggregate.Aggregate` over
        the whole set.  With ``by`` (a field or list of fields): a mapping
        group key → aggregate, in first-seen group order.
        """
        if by is None:
            if metric not in self._metrics:
                raise ResultsError(
                    f"unknown metric {metric!r}; metrics: {self.metric_names()}"
                )
            return aggregate_values(v for v in self._metrics[metric] if v is not None)
        fields = (by,) if isinstance(by, str) else tuple(by)
        return {
            key: group.aggregate(metric)
            for key, group in self.group_by(*fields).items()
        }

    def mean(self, metric: str) -> float:
        """Shorthand: mean of one metric over the whole set."""
        return self.aggregate(metric).mean

    def interval(
        self,
        metric: str,
        by: Optional[Union[str, Sequence[str]]] = None,
        confidence: float = 0.95,
    ):
        """Student-t confidence interval of one metric (``None`` skipped).

        Same shape contract as :meth:`aggregate`: one
        :class:`~repro.stats.ConfidenceInterval` without ``by``, a mapping
        group key → interval with it.  Raises
        :class:`~repro.errors.StatsError` for groups with fewer than two
        values — an interval over one run is not an honest statement.
        """
        from ..stats.intervals import t_interval  # deferred: keeps import DAG flat

        if by is None:
            if metric not in self._metrics:
                raise ResultsError(
                    f"unknown metric {metric!r}; metrics: {self.metric_names()}"
                )
            values = [v for v in self._metrics[metric] if v is not None]
            return t_interval(values, confidence=confidence)
        fields = (by,) if isinstance(by, str) else tuple(by)
        return {
            key: group.interval(metric, confidence=confidence)
            for key, group in self.group_by(*fields).items()
        }

    # ------------------------------------------------------------------ #
    # pivot — the paper tables as a pure view over records
    # ------------------------------------------------------------------ #
    def pivot(
        self,
        rows: str = "metric",
        cols: str = "heuristic",
        metric: Optional[str] = None,
        title: Optional[str] = None,
        notes: Optional[Sequence[str]] = None,
    ):
        """Aggregate records into a :class:`~repro.experiments.runner.TableResult`.

        The default ``pivot()`` (rows = the paper's metric rows, cols =
        heuristic) reproduces today's result tables exactly: each cell is the
        mean of one metric over the column's records, and the
        ``"tasks finishing sooner than MCT"`` row appears for the columns
        whose records carry a ``sooner`` count (i.e. every non-reference
        heuristic).  ``title``/``notes`` default to the set's ``meta``.

        With ``rows`` naming a key field instead of ``"metric"``, a generic
        pivot is built: cell = mean of ``metric`` over the (row, col) group —
        e.g. ``pivot(rows="experiment_id", cols="heuristic",
        metric="sum_flow")`` for a sweep overview.
        """
        from ..experiments.runner import TableResult  # deferred: avoids an import cycle

        if cols not in self._fields:
            raise ResultsError(f"unknown pivot column field {cols!r}")
        columns: Dict[str, Dict[str, float]] = {}
        aggregates: Dict[str, Dict[str, Aggregate]] = {}
        if rows == "metric":
            for col_value, group in self.group_by(cols).items():
                column_aggregates: Dict[str, Aggregate] = {
                    row: group.aggregate(summary_field)
                    for row, summary_field in METRIC_ROW_TO_SUMMARY_FIELD.items()
                }
                sooner = [v for v in group._metrics.get(SOONER_METRIC, ()) if v is not None]
                if sooner:
                    column_aggregates[SOONER_ROW] = aggregate_values(sooner)
                columns[str(col_value)] = {
                    row: aggregate.mean for row, aggregate in column_aggregates.items()
                }
                aggregates[str(col_value)] = column_aggregates
        else:
            if rows not in self._fields:
                raise ResultsError(f"unknown pivot row field {rows!r}")
            if metric is None:
                raise ResultsError("a field-by-field pivot needs metric=<name>")
            for col_value, col_group in self.group_by(cols).items():
                column_aggregates = {
                    str(row_value): row_group.aggregate(metric)
                    for row_value, row_group in col_group.group_by(rows).items()
                }
                columns[str(col_value)] = {
                    row: aggregate.mean for row, aggregate in column_aggregates.items()
                }
                aggregates[str(col_value)] = column_aggregates
        experiment_ids = sorted(set(self._fields["experiment_id"]))
        return TableResult(
            experiment_id=self.meta.get(
                "experiment_id", experiment_ids[0] if len(experiment_ids) == 1 else "results"
            ),
            title=self.meta.get("title", "") if title is None else title,
            columns=columns,
            notes=list(self.meta.get("notes", ()) if notes is None else notes),
            result_set=self,
            aggregates=aggregates,
        )

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def sorted(self) -> "ResultSet":
        """Copy in canonical record order (:attr:`RunRecord.sort_key`)."""
        out = ResultSet(meta=self.meta)
        out.extend(sorted(self, key=lambda record: record.sort_key))
        return out

    def to_jsonl(self) -> str:
        """The JSONL serialisation: a header line, then one record per line.

        Records are canonically ordered and every line is serialised with
        sorted keys and exact (``repr``) float text, so equal record sets
        produce byte-equal output whatever order they were accumulated in.
        """
        header = {
            "format": _JSONL_FORMAT,
            "schema_version": SCHEMA_VERSION,
            "meta": self.meta,
            "count": len(self),
        }
        lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
        for record in self.sorted():
            lines.append(
                json.dumps(record.to_json_dict(), sort_keys=True, separators=(",", ":"))
            )
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "ResultSet":
        """Parse :meth:`to_jsonl` output (rejecting future schema versions)."""
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise ResultsError("empty results file (missing JSONL header line)")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise ResultsError(f"malformed JSONL header: {exc}") from exc
        if not isinstance(header, dict) or header.get("format") != _JSONL_FORMAT:
            raise ResultsError(
                "not a repro results file (first line must be the "
                f"{_JSONL_FORMAT!r} header)"
            )
        version = header.get("schema_version")
        if not isinstance(version, int) or version > SCHEMA_VERSION:
            raise ResultsError(
                f"results file written by schema version {version!r}, this "
                f"library reads up to {SCHEMA_VERSION} — upgrade repro to load it"
            )
        out = cls(meta=header.get("meta") or {})
        for number, line in enumerate(lines[1:], start=2):
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ResultsError(f"malformed record on line {number}: {exc}") from exc
            out.append(RunRecord.from_json_dict(data))
        count = header.get("count")
        if isinstance(count, int) and count != len(out):
            # A partially-written file (interrupted save, disk full) must not
            # load silently with records missing.
            raise ResultsError(
                f"truncated results file: header announces {count} record(s) "
                f"but {len(out)} were read"
            )
        return out

    def to_csv(self) -> str:
        """The CSV serialisation (records only — ``meta`` is JSONL-only).

        Same canonical ordering and float formatting guarantees as
        :meth:`to_jsonl`; metric cells that do not apply are left empty.
        """
        metric_names = self.metric_names()
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(list(_KEY_FIELDS) + metric_names)
        for record in self.sorted():
            row = [_format_cell(getattr(record, name)) for name in _KEY_FIELDS]
            row += [_format_cell(record.metric(name)) for name in metric_names]
            writer.writerow(row)
        return buffer.getvalue()

    @classmethod
    def from_csv(cls, text: str) -> "ResultSet":
        """Parse :meth:`to_csv` output (rejecting future schema versions)."""
        reader = csv.reader(io.StringIO(text))
        try:
            header = next(reader)
        except StopIteration:
            raise ResultsError("empty results CSV (missing header row)") from None
        missing = [name for name in _KEY_FIELDS if name not in header]
        if missing:
            raise ResultsError(f"results CSV is missing key columns: {missing}")
        metric_names = [name for name in header if name not in _KEY_FIELDS]
        out = cls()
        for number, row in enumerate(reader, start=2):
            if not row:
                continue
            cells = dict(zip(header, row))
            try:
                version = int(cells["schema_version"])
                if version > SCHEMA_VERSION:
                    raise ResultsError(
                        f"results CSV written by schema version {version}, this "
                        f"library reads up to {SCHEMA_VERSION} — upgrade repro to load it"
                    )
                out.append(
                    RunRecord(
                        experiment_id=cells["experiment_id"],
                        heuristic=cells["heuristic"],
                        metatask_index=int(cells["metatask_index"]),
                        repetition=int(cells["repetition"]),
                        seed=int(cells["seed"]),
                        config_hash=cells["config_hash"],
                        truncated=cells["truncated"] == "true",
                        metrics={
                            name: float(cells[name])
                            for name in metric_names
                            if cells.get(name, "") != ""
                        },
                        schema_version=version,
                    )
                )
            except ResultsError:
                raise
            except (KeyError, ValueError) as exc:
                raise ResultsError(f"malformed CSV record on line {number}: {exc}") from exc
        return out

    def save(self, path: Union[str, "os.PathLike[str]"]) -> str:
        """Write the set to ``path``; the extension picks the format.

        ``.jsonl`` / ``.json`` → JSONL with the meta header; ``.csv`` → CSV
        (records only).  The write is atomic (temp file + ``os.replace``, the
        campaign store's helper): a crash mid-save leaves either the previous
        file or the complete new one, never a truncated results file.
        Returns the path written.
        """
        from ..store.journal import atomic_write_text  # deferred: import cycle

        path = os.fspath(path)
        text = self._serialise_for(path)
        return atomic_write_text(path, text)

    def _serialise_for(self, path: str) -> str:
        extension = os.path.splitext(path)[1].lower()
        if extension in (".jsonl", ".json"):
            return self.to_jsonl()
        if extension == ".csv":
            return self.to_csv()
        raise ResultsError(
            f"cannot infer results format from {path!r}; use a .jsonl or .csv extension"
        )

    @classmethod
    def load(cls, path: Union[str, "os.PathLike[str]"]) -> "ResultSet":
        """Load a set saved by :meth:`save` (format from the extension)."""
        path = os.fspath(path)
        extension = os.path.splitext(path)[1].lower()
        if extension in (".jsonl", ".json"):
            parser = cls.from_jsonl
        elif extension == ".csv":
            parser = cls.from_csv
        else:
            raise ResultsError(
                f"cannot infer results format from {path!r}; use a .jsonl or .csv extension"
            )
        with open(path, "r", encoding="utf-8", newline="") as handle:
            return parser(handle.read())
