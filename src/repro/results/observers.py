"""Streaming observers of a running campaign.

The campaign engine (:func:`repro.experiments.campaign.run_campaign`) builds
one :class:`~repro.results.records.RunRecord` per cell *as results stream
back from the executor*, in planned cell order, and notifies every attached
observer.  Observers therefore see a campaign incrementally — enough to feed
a live result store or a progress display — without ever changing the
numbers: they are pure consumers, called in the same deterministic order at
every ``jobs`` level.

Attach observers either through ``run_campaign(..., observers=[...])`` or
through ``ExperimentConfig.observers`` (which rides along ``repro.api.run``
and the scenario runners).
"""

from __future__ import annotations

import sys
from typing import IO, Optional

from ..obs import perf_counter
from .records import RunRecord
from .resultset import ResultSet

__all__ = ["CampaignObserver", "ResultSetObserver", "ProgressObserver"]


class CampaignObserver:
    """Base observer: every hook is a no-op — override what you need.

    ``cached`` on :meth:`on_cell_complete` reports whether the cell was
    recovered from an attached :class:`~repro.store.CampaignStore` journal
    (``True``) or freshly simulated (``False``).  Observers overriding the
    hook without the keyword keep working — the campaign engine inspects the
    signature and omits the flag for them.
    """

    def on_campaign_start(self, experiment_id: str, total_cells: int) -> None:
        """Called once, before the first cell executes."""

    def on_cell_complete(
        self, index: int, total: int, record: RunRecord, cached: bool = False
    ) -> None:
        """Called once per cell, in planned cell order (index is 0-based)."""

    def on_campaign_end(self, result_set: ResultSet) -> None:
        """Called once, after the last cell, with the campaign's full set."""


class ResultSetObserver(CampaignObserver):
    """Accumulates streamed records into an incremental :class:`ResultSet`.

    ``observer.result_set`` grows by one record per completed cell; after
    ``on_campaign_end`` it equals the campaign's own set (records only —
    the campaign attaches title/notes meta to its final set).  One observer
    instance may watch several campaigns in sequence and ends up with the
    concatenation, which is how sweeps build their combined set.  Records
    recovered from a store are appended exactly like freshly computed ones —
    they are byte-identical by construction.
    """

    def __init__(self, result_set: Optional[ResultSet] = None):
        self.result_set = result_set if result_set is not None else ResultSet()

    def on_cell_complete(
        self, index: int, total: int, record: RunRecord, cached: bool = False
    ) -> None:
        self.result_set.append(record)


class ProgressObserver(CampaignObserver):
    """Prints one progress line per completed cell (the CLI's ``--progress``).

    Output goes to ``stream`` (default: stderr, so tables on stdout stay
    machine-parsable and byte-identical with and without progress display).
    Cells recovered from a campaign store are marked ``(cached)``, and the
    end-of-campaign line splits the total into cached vs computed whenever a
    store served at least one cell.  Each line carries the running
    throughput (cells/s) and an ETA once at least one cell has landed; the
    clock behind them is :func:`repro.obs.perf_counter` — wall time stays on
    this display-only path and never reaches records.
    """

    def __init__(self, stream: Optional[IO[str]] = None):
        self.stream = stream if stream is not None else sys.stderr
        self._cached = 0
        self._computed = 0
        self._t0: Optional[float] = None

    def _pace(self, done: int, total: int) -> str:
        """`` — 12.3 cells/s, ETA 0:42`` (empty until the rate is measurable)."""
        if self._t0 is None:
            return ""
        elapsed = perf_counter() - self._t0
        if elapsed <= 0.0 or done <= 0:
            return ""
        rate = done / elapsed
        remaining = max(0, total - done)
        eta_s = int(remaining / rate) if rate > 0 else 0
        return f" — {rate:.1f} cells/s, ETA {eta_s // 60}:{eta_s % 60:02d}"

    def on_campaign_start(self, experiment_id: str, total_cells: int) -> None:
        self._cached = 0
        self._computed = 0
        self._t0 = perf_counter()
        print(f"[{experiment_id}] {total_cells} cells planned", file=self.stream)

    def on_cell_complete(
        self, index: int, total: int, record: RunRecord, cached: bool = False
    ) -> None:
        if cached:
            self._cached += 1
        else:
            self._computed += 1
        status = " TRUNCATED" if record.truncated else ""
        origin = " (cached)" if cached else ""
        print(
            f"[{record.experiment_id}] {index + 1}/{total} "
            f"{record.heuristic} m{record.metatask_index} rep{record.repetition}"
            f"{origin}{status}{self._pace(index + 1, total)}",
            file=self.stream,
        )

    def on_campaign_end(self, result_set: ResultSet) -> None:
        split = (
            f" ({self._cached} cached, {self._computed} computed)"
            if self._cached
            else ""
        )
        pace = ""
        if self._t0 is not None:
            elapsed = perf_counter() - self._t0
            if elapsed > 0.0 and len(result_set):
                pace = f" in {elapsed:.1f}s ({len(result_set) / elapsed:.1f} cells/s)"
        sequential = ""
        counters = (result_set.meta.get("sequential") or {}).get("counters") or {}
        if counters:
            rounds = counters.get("stats.rounds", 0)
            cells = counters.get("stats.cells", 0)
            unresolved = counters.get("stats.groups_unresolved", 0)
            groups = counters.get("stats.groups", 0)
            sequential = (
                f" — sequential: {rounds} round(s), {cells} cell(s), "
                f"{unresolved}/{groups} group(s) unresolved at stop"
            )
        print(
            f"[{result_set.meta.get('experiment_id', 'campaign')}] "
            f"done: {len(result_set)} records{split}{pace}{sequential}",
            file=self.stream,
        )
