"""Streaming observers of a running campaign.

The campaign engine (:func:`repro.experiments.campaign.run_campaign`) builds
one :class:`~repro.results.records.RunRecord` per cell *as results stream
back from the executor*, in planned cell order, and notifies every attached
observer.  Observers therefore see a campaign incrementally — enough to feed
a live result store or a progress display — without ever changing the
numbers: they are pure consumers, called in the same deterministic order at
every ``jobs`` level.

Attach observers either through ``run_campaign(..., observers=[...])`` or
through ``ExperimentConfig.observers`` (which rides along ``repro.api.run``
and the scenario runners).
"""

from __future__ import annotations

import sys
from typing import IO, Optional

from .records import RunRecord
from .resultset import ResultSet

__all__ = ["CampaignObserver", "ResultSetObserver", "ProgressObserver"]


class CampaignObserver:
    """Base observer: every hook is a no-op — override what you need."""

    def on_campaign_start(self, experiment_id: str, total_cells: int) -> None:
        """Called once, before the first cell executes."""

    def on_cell_complete(self, index: int, total: int, record: RunRecord) -> None:
        """Called once per cell, in planned cell order (index is 0-based)."""

    def on_campaign_end(self, result_set: ResultSet) -> None:
        """Called once, after the last cell, with the campaign's full set."""


class ResultSetObserver(CampaignObserver):
    """Accumulates streamed records into an incremental :class:`ResultSet`.

    ``observer.result_set`` grows by one record per completed cell; after
    ``on_campaign_end`` it equals the campaign's own set (records only —
    the campaign attaches title/notes meta to its final set).  One observer
    instance may watch several campaigns in sequence and ends up with the
    concatenation, which is how sweeps build their combined set.
    """

    def __init__(self, result_set: Optional[ResultSet] = None):
        self.result_set = result_set if result_set is not None else ResultSet()

    def on_cell_complete(self, index: int, total: int, record: RunRecord) -> None:
        self.result_set.append(record)


class ProgressObserver(CampaignObserver):
    """Prints one progress line per completed cell (the CLI's ``--progress``).

    Output goes to ``stream`` (default: stderr, so tables on stdout stay
    machine-parsable and byte-identical with and without progress display).
    """

    def __init__(self, stream: Optional[IO[str]] = None):
        self.stream = stream if stream is not None else sys.stderr

    def on_campaign_start(self, experiment_id: str, total_cells: int) -> None:
        print(f"[{experiment_id}] {total_cells} cells planned", file=self.stream)

    def on_cell_complete(self, index: int, total: int, record: RunRecord) -> None:
        status = " TRUNCATED" if record.truncated else ""
        print(
            f"[{record.experiment_id}] {index + 1}/{total} "
            f"{record.heuristic} m{record.metatask_index} rep{record.repetition}{status}",
            file=self.stream,
        )

    def on_campaign_end(self, result_set: ResultSet) -> None:
        print(
            f"[{result_set.meta.get('experiment_id', 'campaign')}] "
            f"done: {len(result_set)} records",
            file=self.stream,
        )
