"""The run-record schema of the unified results API.

One :class:`RunRecord` is the provenance-stamped outcome of one middleware
run — one cell of a campaign: which experiment (or scenario) it belongs to,
the full cell coordinates ``(heuristic, metatask_index, repetition)``, the
derived seed actually used, a fingerprint of the configuration that produced
it, the schema version it was written under, the truncation flag and every
per-run metric value.  Records are the *atoms* of the results subsystem:
every table of the paper is a pure aggregation view over them
(:meth:`repro.results.ResultSet.pivot`), and persistence round-trips them
without loss.

The schema is versioned (:data:`SCHEMA_VERSION`).  Loading a file written by
a *newer* schema fails loudly; older versions are migrated in
:mod:`repro.results.resultset` as the schema evolves.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from dataclasses import fields as dataclass_fields
from typing import Any, Dict, Mapping, Optional, Tuple

from ..errors import ResultsError

__all__ = [
    "SCHEMA_VERSION",
    "METRIC_ROW_TO_SUMMARY_FIELD",
    "SOONER_ROW",
    "SOONER_METRIC",
    "METRIC_FIELD_ORDER",
    "RunRecord",
    "config_fingerprint",
]

#: Version of the on-disk record schema.  Bump when a field is added,
#: removed or changes meaning; loaders reject *future* versions.
SCHEMA_VERSION = 1

#: Metric rows of the paper's tables, mapped to the
#: :class:`~repro.metrics.flow.MetricSummary` field each one averages.  This
#: is the single source of truth: the campaign engine, the scenario sweeps
#: and :meth:`ResultSet.pivot` all import it, so the table view and the
#: record schema can never drift apart.
METRIC_ROW_TO_SUMMARY_FIELD = {
    "completed tasks": "n_completed",
    "makespan": "makespan",
    "sumflow": "sum_flow",
    "maxflow": "max_flow",
    "maxstretch": "max_stretch",
}

#: Metric key holding the per-run "tasks finishing sooner than the reference"
#: count (``None`` on reference-heuristic records) and the table row it
#: becomes under :meth:`ResultSet.pivot`.
SOONER_METRIC = "sooner"
SOONER_ROW = "tasks finishing sooner than MCT"

#: Canonical order of the metric columns in persisted files.  Metrics not
#: listed here (user extensions) are appended in sorted order.
METRIC_FIELD_ORDER = (
    "n_completed",
    "makespan",
    "sum_flow",
    "max_flow",
    "max_stretch",
    "mean_flow",
    "mean_stretch",
    SOONER_METRIC,
)


@dataclass(frozen=True)
class RunRecord:
    """The provenance-stamped outcome of one middleware run.

    ``metrics`` maps metric name → value; ``None`` marks a metric that does
    not apply to this record (e.g. ``"sooner"`` on the reference heuristic).
    """

    #: Experiment or scenario the run belongs to (``"table5"``,
    #: ``"scenario-burst-storm"``, ...).
    experiment_id: str
    heuristic: str
    metatask_index: int
    repetition: int
    #: The *derived* middleware seed the run actually used (root seed + cell
    #: coordinate offset [+ scenario offset]).
    seed: int
    #: Fingerprint of the producing :class:`ExperimentConfig` (excluding
    #: execution-only knobs such as ``jobs``) — see :func:`config_fingerprint`.
    config_hash: str
    #: ``True`` when the run hit ``max_horizon_s`` and was cut short.
    truncated: bool = False
    metrics: Mapping[str, Optional[float]] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    @property
    def sort_key(self) -> Tuple[str, str, int, int]:
        """The canonical record ordering: ``(experiment_id, heuristic,
        metatask_index, repetition)``.  Persistence sorts by this key, which
        is why ``jobs=1`` and ``jobs=N`` campaigns save byte-identical files.
        """
        return (self.experiment_id, self.heuristic, self.metatask_index, self.repetition)

    def metric(self, name: str) -> Optional[float]:
        """One metric value (``None`` when absent or inapplicable)."""
        return self.metrics.get(name)

    def to_json_dict(self) -> Dict[str, Any]:
        """Plain-dictionary form used by the JSONL persistence layer."""
        return {
            "experiment_id": self.experiment_id,
            "heuristic": self.heuristic,
            "metatask_index": self.metatask_index,
            "repetition": self.repetition,
            "seed": self.seed,
            "config_hash": self.config_hash,
            "truncated": self.truncated,
            "metrics": dict(self.metrics),
            "schema_version": self.schema_version,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        """Rebuild a record from its :meth:`to_json_dict` form."""
        version = data.get("schema_version", SCHEMA_VERSION)
        if not isinstance(version, int) or version > SCHEMA_VERSION:
            raise ResultsError(
                f"record written by schema version {version!r}, this library "
                f"reads up to {SCHEMA_VERSION} — upgrade repro to load it"
            )
        try:
            return cls(
                experiment_id=str(data["experiment_id"]),
                heuristic=str(data["heuristic"]),
                metatask_index=int(data["metatask_index"]),
                repetition=int(data["repetition"]),
                seed=int(data["seed"]),
                config_hash=str(data["config_hash"]),
                truncated=bool(data["truncated"]),
                metrics={
                    str(k): (None if v is None else float(v))
                    for k, v in dict(data["metrics"]).items()
                },
                schema_version=version,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ResultsError(f"malformed run record: {exc}") from exc


#: Canonical JSON encodings named by ``config_field(encode=...)``.
_FINGERPRINT_ENCODERS = {
    None: lambda value: value,
    "asdict": asdict,
    "list": list,
}


def config_fingerprint(config: Any) -> str:
    """Stable fingerprint of an :class:`ExperimentConfig`.

    Hashes the fields that *determine the numbers* — scale, root seed,
    arrival rates, heuristic set, reference and the full middleware
    configuration — and deliberately excludes execution-only knobs
    (``jobs``, observers, store): a campaign run serially and one fanned out
    over a pool must stamp identical hashes, or saved files could never be
    byte-compared across machines.

    The include/exclude sets are not listed here: they derive from each
    field's :func:`repro.experiments.config.config_field` declaration
    (``number_determining``, plus the ``encode``/``group``/``gate`` payload
    hints).  A config field without that metadata raises — a new knob cannot
    silently land on either side of the fingerprint boundary.  Grouped
    fields nest under a sub-mapping included only while the group's gate
    field is non-``None`` (the sequential stopping knobs only count once
    armed), which keeps every pre-existing fixed-repetition fingerprint
    byte-identical.
    """
    payload: Dict[str, Any] = {}
    groups: Dict[str, Dict[str, Any]] = {}
    armed: Dict[str, bool] = {}
    for config_field in dataclass_fields(config):
        metadata = config_field.metadata
        if "number_determining" not in metadata:
            raise ResultsError(
                f"config field {config_field.name!r} does not declare its "
                "fingerprint role — define it with "
                "config_field(number_determining=...)"
            )
        if not metadata["number_determining"]:
            continue
        encode = metadata.get("fingerprint_encode")
        if encode not in _FINGERPRINT_ENCODERS:
            raise ResultsError(
                f"config field {config_field.name!r} names unknown "
                f"fingerprint encoding {encode!r}"
            )
        value = _FINGERPRINT_ENCODERS[encode](getattr(config, config_field.name))
        group = metadata.get("fingerprint_group")
        if group is None:
            payload[config_field.name] = value
        else:
            groups.setdefault(group, {})[config_field.name] = value
            if metadata.get("fingerprint_gate"):
                armed[group] = value is not None
    for group_name, group_payload in groups.items():
        if armed.get(group_name, True):
            payload[group_name] = group_payload
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]
