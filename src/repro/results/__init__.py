"""The unified results subsystem: typed run records behind one stable API.

Every middleware run a campaign executes becomes one provenance-stamped
:class:`RunRecord` (experiment, cell coordinates, derived seed, config hash,
schema version, truncation flag, metric values).  :class:`ResultSet` holds
records in columnar form and is the one artifact the rest of the repo passes
around: the paper's tables are ``result_set.pivot()`` views, persistence is
``result_set.save("results.jsonl")`` (or ``.csv``) with a versioned,
byte-stable round-trip, and campaigns stream records into observers as cells
complete.

The documented entry points live one level up, in :mod:`repro.api`.
"""

from .diff import MetricChange, ResultDiff, diff_result_sets
from .observers import CampaignObserver, ProgressObserver, ResultSetObserver
from .records import (
    METRIC_FIELD_ORDER,
    METRIC_ROW_TO_SUMMARY_FIELD,
    SCHEMA_VERSION,
    SOONER_METRIC,
    SOONER_ROW,
    RunRecord,
    config_fingerprint,
)
from .resultset import ResultSet

__all__ = [
    "SCHEMA_VERSION",
    "METRIC_ROW_TO_SUMMARY_FIELD",
    "METRIC_FIELD_ORDER",
    "SOONER_METRIC",
    "SOONER_ROW",
    "RunRecord",
    "ResultSet",
    "config_fingerprint",
    "CampaignObserver",
    "ResultSetObserver",
    "ProgressObserver",
    "MetricChange",
    "ResultDiff",
    "diff_result_sets",
]
