"""Structural diff of two result sets.

Used by :func:`repro.api.compare` and the ``repro results diff`` CLI: two
result files (or in-memory sets) are matched record-by-record on their
coordinates ``(experiment_id, heuristic, metatask_index, repetition)`` and
every metric, provenance and truncation difference is reported.  Two sets
saved from the same campaign — whatever the ``jobs`` level — always diff
clean, which is the determinism contract the persistence layer guarantees.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .records import RunRecord
from .resultset import ResultSet

__all__ = ["MetricChange", "ResultDiff", "diff_result_sets"]

#: Record coordinates used to pair records across the two sets.
RecordKey = Tuple[str, str, int, int]


@dataclass(frozen=True)
class MetricChange:
    """One differing value between two paired records."""

    key: RecordKey
    #: What changed: a metric name, ``"config_hash"`` or ``"truncated"``.
    what: str
    a: object
    b: object

    def describe(self) -> str:
        """One human-readable line."""
        experiment, heuristic, metatask, repetition = self.key
        return (
            f"{experiment} {heuristic} m{metatask} rep{repetition}: "
            f"{self.what} {self.a!r} -> {self.b!r}"
        )


@dataclass
class ResultDiff:
    """Outcome of comparing two result sets ("a" vs "b")."""

    only_in_a: List[RecordKey] = field(default_factory=list)
    only_in_b: List[RecordKey] = field(default_factory=list)
    changes: List[MetricChange] = field(default_factory=list)
    compared: int = 0

    @property
    def identical(self) -> bool:
        """``True`` when every record matched with no differing value."""
        return not (self.only_in_a or self.only_in_b or self.changes)

    def render(self, limit: int = 50) -> str:
        """Human-readable summary (at most ``limit`` change lines)."""
        if self.identical:
            return f"identical: {self.compared} record(s), no differences"
        lines = [
            f"{self.compared} record(s) compared, {len(self.changes)} value "
            f"difference(s), {len(self.only_in_a)} only in A, "
            f"{len(self.only_in_b)} only in B"
        ]
        for key in self.only_in_a[:limit]:
            lines.append(f"only in A: {key[0]} {key[1]} m{key[2]} rep{key[3]}")
        for key in self.only_in_b[:limit]:
            lines.append(f"only in B: {key[0]} {key[1]} m{key[2]} rep{key[3]}")
        for change in self.changes[:limit]:
            lines.append(change.describe())
        hidden = (
            max(0, len(self.only_in_a) - limit)
            + max(0, len(self.only_in_b) - limit)
            + max(0, len(self.changes) - limit)
        )
        if hidden:
            lines.append(f"... and {hidden} more difference(s)")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _values_differ(a: object, b: object, rel_tol: float) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return False
        return not math.isclose(a, b, rel_tol=rel_tol, abs_tol=0.0)
    return a != b


def diff_result_sets(a: ResultSet, b: ResultSet, rel_tol: float = 0.0) -> ResultDiff:
    """Diff two result sets record-by-record.

    ``rel_tol`` relaxes metric comparisons (0.0 = exact): useful when
    comparing runs of intentionally different code versions where only
    drifts *above* a threshold matter.  Provenance fields (``config_hash``,
    ``truncated``) always compare exactly.
    """
    def index(result_set: ResultSet) -> Dict[RecordKey, List[RunRecord]]:
        groups: Dict[RecordKey, List[RunRecord]] = {}
        for record in result_set:
            groups.setdefault(record.sort_key, []).append(record)
        return groups

    records_a, records_b = index(a), index(b)
    diff = ResultDiff()
    diff.only_in_a = sorted(set(records_a) - set(records_b))
    diff.only_in_b = sorted(set(records_b) - set(records_a))
    for key in sorted(set(records_a) & set(records_b)):
        group_a, group_b = records_a[key], records_b[key]
        if len(group_a) != len(group_b):
            # Duplicate coordinates (e.g. the same set merged into itself)
            # must surface, not be collapsed into a clean 'identical'.
            diff.changes.append(
                MetricChange(key, "record count", len(group_a), len(group_b))
            )
        for record_a, record_b in zip(group_a, group_b):
            diff.compared += 1
            for what in ("config_hash", "truncated", "seed"):
                value_a, value_b = getattr(record_a, what), getattr(record_b, what)
                if value_a != value_b:
                    diff.changes.append(MetricChange(key, what, value_a, value_b))
            for name in sorted(set(record_a.metrics) | set(record_b.metrics)):
                value_a, value_b = record_a.metric(name), record_b.metric(name)
                if _values_differ(value_a, value_b, rel_tol):
                    diff.changes.append(MetricChange(key, name, value_a, value_b))
    return diff
