"""Exception hierarchy for the :mod:`repro` library.

Every error raised on purpose by the library derives from :class:`ReproError`
so that callers can catch library failures without swallowing genuine bugs
(``TypeError``, ``KeyError`` ...).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "EmptySchedule",
    "StopProcess",
    "PlatformError",
    "ServerCollapsed",
    "TaskRejected",
    "SchedulingError",
    "NoCandidateServer",
    "WorkloadError",
    "UnknownProblem",
    "ExperimentError",
    "ResultsError",
    "StoreError",
    "MetricsError",
    "StatsError",
    "ValidationFailure",
    "AnalysisError",
]


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` library."""


# --------------------------------------------------------------------------- #
# Simulation engine
# --------------------------------------------------------------------------- #
class SimulationError(ReproError):
    """Error raised by the discrete-event simulation engine."""


class EmptySchedule(SimulationError):
    """Raised by :meth:`repro.simulation.Environment.step` when no event is left."""


class StopProcess(SimulationError):
    """Raised inside a process generator to terminate it with a return value."""

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value


# --------------------------------------------------------------------------- #
# Platform / middleware
# --------------------------------------------------------------------------- #
class PlatformError(ReproError):
    """Error raised by the platform (servers, links, agent, clients) model."""


class ServerCollapsed(PlatformError):
    """A server exhausted its memory + swap and collapsed.

    All tasks resident on the server at collapse time fail with this error as
    their failure cause.
    """

    def __init__(self, server_name: str, at: float, resident_mb: float):
        super().__init__(
            f"server {server_name!r} collapsed at t={at:.2f}s "
            f"(resident memory {resident_mb:.1f} MB)"
        )
        self.server_name = server_name
        self.at = at
        self.resident_mb = resident_mb


class TaskRejected(PlatformError):
    """A server refused to accept a new task (typically for lack of memory)."""

    def __init__(self, server_name: str, task_id: str, reason: str):
        super().__init__(f"server {server_name!r} rejected task {task_id!r}: {reason}")
        self.server_name = server_name
        self.task_id = task_id
        self.reason = reason


# --------------------------------------------------------------------------- #
# Scheduling
# --------------------------------------------------------------------------- #
class SchedulingError(ReproError):
    """Error raised by the agent or by a scheduling heuristic."""


class NoCandidateServer(SchedulingError):
    """No registered server is able to solve the requested problem."""

    def __init__(self, problem_name: str):
        super().__init__(f"no registered server can solve problem {problem_name!r}")
        self.problem_name = problem_name


# --------------------------------------------------------------------------- #
# Workload
# --------------------------------------------------------------------------- #
class WorkloadError(ReproError):
    """Error raised by the workload generators."""


class UnknownProblem(WorkloadError):
    """The requested problem name is not part of the problem catalogue."""

    def __init__(self, problem_name: str):
        super().__init__(f"unknown problem {problem_name!r}")
        self.problem_name = problem_name


# --------------------------------------------------------------------------- #
# Experiments
# --------------------------------------------------------------------------- #
class ExperimentError(ReproError):
    """Error raised by the experiment harness."""


# --------------------------------------------------------------------------- #
# Results
# --------------------------------------------------------------------------- #
class ResultsError(ReproError):
    """Error raised by the results subsystem (records, result sets, files)."""


# --------------------------------------------------------------------------- #
# Campaign store
# --------------------------------------------------------------------------- #
class StoreError(ReproError):
    """Error raised by the campaign store (cell cache, journal, resume)."""


# --------------------------------------------------------------------------- #
# Metrics / statistics
# --------------------------------------------------------------------------- #
class MetricsError(ReproError):
    """Error raised by the metrics layer (aggregation, comparison, reports)."""


class StatsError(ReproError):
    """Error raised by the statistics subsystem (:mod:`repro.stats`)."""


class ValidationFailure(StatsError):
    """An analytical validation check failed (simulator vs closed form)."""


# --------------------------------------------------------------------------- #
# Static analysis
# --------------------------------------------------------------------------- #
class AnalysisError(ReproError):
    """Error raised by the static-analysis subsystem (:mod:`repro.analysis`)."""
