"""Command-line interface.

``repro-experiment`` (or ``python -m repro.cli``) runs any registered
experiment and prints the reproduced table::

    repro-experiment --list
    repro-experiment table5 --scale smoke
    repro-experiment table1
    repro-experiment ablation-arrival-rate-sweep

The ``--scale`` option trades fidelity for speed: ``full`` is the paper's
500-task protocol, ``bench`` the benchmark harness size, ``smoke`` a few
seconds.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments import (
    BENCH_SCALE,
    FULL_SCALE,
    SMOKE_SCALE,
    ExperimentConfig,
    experiment_ids,
    get_experiment,
    run_experiment,
)

__all__ = ["build_parser", "main"]

_SCALES = {"full": FULL_SCALE, "bench": BENCH_SCALE, "smoke": SMOKE_SCALE}


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Reproduce the experiments of 'New Dynamic Heuristics in the "
        "Client-Agent-Server Model' (Caniou & Jeannot, HCW'03).",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id (see --list), e.g. table5, table1, fig1",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="full",
        help="experiment size: full (paper, 500 tasks), bench, or smoke (default: full)",
    )
    parser.add_argument("--seed", type=int, default=2003, help="root random seed (default: 2003)")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for table campaigns; results are identical for "
        "any value because run seeds derive from cell coordinates (default: 1)",
    )
    parser.add_argument(
        "--markdown", action="store_true", help="print tables as Markdown instead of plain text"
    )
    return parser


def _list_experiments() -> str:
    lines = ["available experiments:"]
    for experiment_id in experiment_ids():
        entry = get_experiment(experiment_id)
        lines.append(f"  {experiment_id:<32} {entry.paper_artefact:<28} {entry.description}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the CLI."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        print(_list_experiments())
        return 0

    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    config = ExperimentConfig(scale=_SCALES[args.scale], seed=args.seed, jobs=args.jobs)
    result = run_experiment(args.experiment, config)

    if hasattr(result, "render_markdown") and args.markdown:
        print(result.render_markdown())
    elif hasattr(result, "render"):
        print(result.render())
    else:  # pragma: no cover - defensive
        print(result)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
