"""Command-line interface.

``repro`` (aliases: ``repro-experiment``, ``python -m repro.cli``) runs any
registered experiment and prints the reproduced table::

    repro --list
    repro table5 --scale smoke
    repro table1
    repro ablation-arrival-rate-sweep

The scenario subsystem has its own subcommand family::

    repro scenario list
    repro scenario run burst-storm --scale smoke
    repro scenario run hetero-farm-16 --jobs 4
    repro scenario sweep --jobs 4
    repro scenario sweep --scenarios burst-storm,flaky-servers --markdown

The ``--scale`` option trades fidelity for speed: ``full`` is the paper's
500-task protocol, ``bench`` the benchmark harness size, ``smoke`` a few
seconds.  ``--jobs N`` fans campaign cells out over N worker processes;
results are byte-identical for any value because run seeds derive from cell
coordinates.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments import (
    BENCH_SCALE,
    FULL_SCALE,
    SMOKE_SCALE,
    ExperimentConfig,
    experiment_ids,
    get_experiment,
    run_experiment,
)

__all__ = ["build_parser", "build_scenario_parser", "main"]

_SCALES = {"full": FULL_SCALE, "bench": BENCH_SCALE, "smoke": SMOKE_SCALE}


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="full",
        help="experiment size: full (paper, 500 tasks), bench, or smoke (default: full)",
    )
    parser.add_argument("--seed", type=int, default=2003, help="root random seed (default: 2003)")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for table campaigns; results are identical for "
        "any value because run seeds derive from cell coordinates (default: 1)",
    )
    parser.add_argument(
        "--markdown", action="store_true", help="print tables as Markdown instead of plain text"
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser (the classic single-experiment form)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the experiments of 'New Dynamic Heuristics in the "
        "Client-Agent-Server Model' (Caniou & Jeannot, HCW'03).  "
        "Use 'repro scenario ...' for the scenario subsystem.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id (see --list), e.g. table5, table1, fig1",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    _add_common_options(parser)
    return parser


def build_scenario_parser() -> argparse.ArgumentParser:
    """Build the parser of the ``repro scenario`` subcommand family."""
    parser = argparse.ArgumentParser(
        prog="repro scenario",
        description="Run declarative scheduling scenarios (see repro.scenarios).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list registered scenarios and exit")

    run_parser = commands.add_parser("run", help="run one scenario and print its table")
    run_parser.add_argument("name", help="scenario name (see 'repro scenario list')")
    _add_common_options(run_parser)

    sweep_parser = commands.add_parser(
        "sweep", help="run a heuristic x scenario grid and rank heuristics per regime"
    )
    sweep_parser.add_argument(
        "--scenarios",
        metavar="A,B,...",
        help="comma-separated scenario names (default: every registered scenario)",
    )
    sweep_parser.add_argument(
        "--metric",
        default="sumflow",
        help="ranking tie-break metric, lower is better (default: sumflow)",
    )
    _add_common_options(sweep_parser)
    return parser


def _config_from(args: argparse.Namespace, parser: argparse.ArgumentParser) -> ExperimentConfig:
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    return ExperimentConfig(scale=_SCALES[args.scale], seed=args.seed, jobs=args.jobs)


def _print_result(result, markdown: bool) -> None:
    if markdown and hasattr(result, "render_markdown"):
        print(result.render_markdown())
    elif hasattr(result, "render"):
        print(result.render())
    else:  # pragma: no cover - defensive
        print(result)


def _list_experiments() -> str:
    lines = ["available experiments:"]
    for experiment_id in experiment_ids():
        entry = get_experiment(experiment_id)
        lines.append(f"  {experiment_id:<32} {entry.paper_artefact:<28} {entry.description}")
    lines.append("")
    lines.append("scenarios: 'repro scenario list' / 'repro scenario run <name>'")
    return "\n".join(lines)


def _list_scenarios() -> str:
    from .scenarios import SCENARIO_REGISTRY

    lines = ["registered scenarios:"]
    for name, scenario in SCENARIO_REGISTRY.items():
        lines.append(f"  {name:<18} {scenario.regime:<14} {scenario.description}")
    return "\n".join(lines)


def _scenario_main(argv: List[str]) -> int:
    from .scenarios import run_scenario, sweep_scenarios

    parser = build_scenario_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        print(_list_scenarios())
        return 0

    config = _config_from(args, parser)
    if args.command == "run":
        result = run_scenario(args.name, config=config)
    else:  # sweep
        names = None
        if args.scenarios:
            names = [name.strip() for name in args.scenarios.split(",") if name.strip()]
        result = sweep_scenarios(names=names, config=config, metric=args.metric)
    _print_result(result, args.markdown)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the CLI."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "scenario":
        return _scenario_main(argv[1:])

    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        print(_list_experiments())
        return 0

    config = _config_from(args, parser)
    result = run_experiment(args.experiment, config)
    _print_result(result, args.markdown)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
