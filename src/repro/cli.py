"""Command-line interface.

``repro`` (aliases: ``repro-experiment``, ``python -m repro.cli``) runs any
registered experiment and prints the reproduced table::

    repro --list
    repro table5 --scale smoke
    repro table5 --scale smoke --save-results table5.jsonl
    repro table1
    repro ablation-arrival-rate-sweep

The scenario subsystem has its own subcommand family::

    repro scenario list
    repro scenario run burst-storm --scale smoke
    repro scenario run hetero-farm-16 --jobs 4
    repro scenario sweep --jobs 4 --save-results sweep.jsonl
    repro scenario sweep --scenarios burst-storm,flaky-servers --markdown

Saved result files (the unified results API, :mod:`repro.api`) are inspected
and compared with the ``results`` family::

    repro results show sweep.jsonl
    repro results diff before.jsonl after.jsonl

The campaign store (:mod:`repro.store`) memoises executed cells, resumes
interrupted campaigns and makes warm re-runs near-instant::

    repro table5 --store runs/store            # cold: simulates + journals
    repro table5 --store runs/store            # warm: zero simulations
    repro campaign resume table5 --store runs/store
    repro cache stats runs/store
    repro cache ls runs/store --experiment table5
    repro cache prune runs/store --experiment table5

The analytical validation suite checks the simulator against closed-form
queueing theory (exit 0 = all checks pass)::

    repro validate
    repro validate --quick --json validation-report.json

The static determinism & contract linter (:mod:`repro.analysis`) proves the
source conventions behind byte-identical results at parse time (exit 0 =
no active finding)::

    repro check
    repro check --json lint-report.json
    repro check --list-rules
    repro check --update-baseline

The profiling harness (:mod:`repro.obs`) wraps any registry scenario in
wall-clock phase timers and fluid-core counters, or records a virtual-time
event trace that opens in chrome://tracing / Perfetto::

    repro profile run diurnal-week --tasks 5000
    repro profile run diurnal-week --tasks 5000 --profile --json perf-report.json
    repro profile trace diurnal-week --out trace.jsonl --chrome trace-chrome.json

The metrics sampler records fixed-interval virtual-time series (queue
depths, utilization, in-flight tasks, windowed throughput/latency) and the
offline dashboards render them — TTY sparklines or a single-file HTML
report::

    repro metrics record diurnal-week --tasks 500 --out metrics.jsonl
    repro metrics show metrics.jsonl --columns inflight,throughput_w
    repro metrics plot metrics.jsonl --out metrics-report.html

The bench harness (:mod:`repro.bench`) measures named suites and gates
regressions against a committed baseline (exit 1 on regression — the CI
gate)::

    repro bench run --suite smoke
    repro bench run --json bench-report.json --history runs/bench
    repro bench compare benchmarks/bench-baseline.json bench-report.json
    repro bench history runs/bench

The ``--scale`` option trades fidelity for speed: ``full`` is the paper's
500-task protocol, ``bench`` the benchmark harness size, ``smoke`` a few
seconds.  ``--jobs N`` fans campaign cells out over N worker processes;
results are byte-identical for any value because run seeds derive from cell
coordinates.  ``--ci-target X`` switches campaigns to sequential stopping:
repetitions are added until every cell's relative 95% CI half-width is at
most ``X``, and cells print as ``mean ± half-width``.  ``--progress``
streams one line per completed cell to stderr.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments import (
    SCALES,
    ExperimentConfig,
    experiment_ids,
    get_experiment,
    run_experiment,
)
from .results import ProgressObserver

__all__ = [
    "build_parser",
    "build_scenario_parser",
    "build_results_parser",
    "build_campaign_parser",
    "build_cache_parser",
    "build_validate_parser",
    "build_profile_parser",
    "build_metrics_parser",
    "build_bench_parser",
    "main",
]


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="full",
        help="experiment size: full (paper, 500 tasks), bench, or smoke (default: full)",
    )
    parser.add_argument("--seed", type=int, default=2003, help="root random seed (default: 2003)")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for table campaigns; results are identical for "
        "any value because run seeds derive from cell coordinates (default: 1)",
    )
    parser.add_argument(
        "--markdown", action="store_true", help="print tables as Markdown instead of plain text"
    )
    parser.add_argument(
        "--save-results",
        metavar="FILE",
        help="save the run's records to FILE (.jsonl or .csv); inspect them "
        "later with 'repro results show'",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="stream one line per completed campaign cell to stderr",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        help="campaign store directory (created on first use): cells already "
        "journaled there are recovered instead of simulated, fresh cells are "
        "committed as they complete — warm re-runs are near-instant and "
        "byte-identical; inspect with 'repro cache stats DIR'",
    )
    parser.add_argument(
        "--ci-target",
        type=float,
        default=None,
        metavar="X",
        help="sequential stopping: add repetition rounds until the relative "
        "95%% CI half-width of every (heuristic, metatask) group is <= X "
        "(e.g. 0.05 = 5%%); cells then print as 'mean ± half-width' and the "
        "convergence outcome lands in the table notes",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser (the classic single-experiment form)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the experiments of 'New Dynamic Heuristics in the "
        "Client-Agent-Server Model' (Caniou & Jeannot, HCW'03).  "
        "Use 'repro scenario ...' for the scenario subsystem and "
        "'repro results ...' for saved result files.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id (see --list), e.g. table5, table1, fig1",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    _add_common_options(parser)
    return parser


def build_scenario_parser() -> argparse.ArgumentParser:
    """Build the parser of the ``repro scenario`` subcommand family."""
    parser = argparse.ArgumentParser(
        prog="repro scenario",
        description="Run declarative scheduling scenarios (see repro.scenarios).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list registered scenarios and exit")

    run_parser = commands.add_parser("run", help="run one scenario and print its table")
    run_parser.add_argument("name", help="scenario name (see 'repro scenario list')")
    _add_common_options(run_parser)

    sweep_parser = commands.add_parser(
        "sweep", help="run a heuristic x scenario grid and rank heuristics per regime"
    )
    sweep_parser.add_argument(
        "--scenarios",
        metavar="A,B,...",
        help="comma-separated scenario names (default: every registered scenario)",
    )
    sweep_parser.add_argument(
        "--metric",
        default="sumflow",
        help="ranking tie-break metric, lower is better (default: sumflow)",
    )
    _add_common_options(sweep_parser)
    return parser


def build_campaign_parser() -> argparse.ArgumentParser:
    """Build the parser of the ``repro campaign`` subcommand family."""
    parser = argparse.ArgumentParser(
        prog="repro campaign",
        description="Campaign lifecycle operations over a store (see repro.store).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    resume_parser = commands.add_parser(
        "resume",
        help="finish an interrupted campaign from its store's journal "
        "(only the missing cells execute; output is byte-identical)",
    )
    resume_parser.add_argument(
        "experiment",
        help="a campaign experiment id (e.g. table5, scenario-sweep); "
        "run with the same --scale/--seed as the interrupted run",
    )
    _add_common_options(resume_parser)
    return parser


def build_cache_parser() -> argparse.ArgumentParser:
    """Build the parser of the ``repro cache`` subcommand family."""
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="Inspect and maintain campaign store directories (see repro.store).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    stats_parser = commands.add_parser("stats", help="print a store's statistics")
    stats_parser.add_argument("store", help="store directory")

    ls_parser = commands.add_parser("ls", help="list a store's cached cells")
    ls_parser.add_argument("store", help="store directory")
    ls_parser.add_argument(
        "--experiment", metavar="ID", help="only list cells of this experiment id"
    )

    prune_parser = commands.add_parser(
        "prune", help="drop cached cells and compact the journal atomically"
    )
    prune_parser.add_argument("store", help="store directory")
    prune_parser.add_argument(
        "--experiment", metavar="ID", help="drop the cells of this experiment id"
    )
    prune_parser.add_argument(
        "--config-hash", metavar="HASH", help="drop the cells stamped with this config hash"
    )
    prune_parser.add_argument(
        "--all", action="store_true", help="drop every cached cell"
    )
    return parser


def build_validate_parser() -> argparse.ArgumentParser:
    """Build the parser of the ``repro validate`` command."""
    parser = argparse.ArgumentParser(
        prog="repro validate",
        description="Validate the simulator against closed-form queueing "
        "theory: M/M/1 and M/M/c mean response times must fall inside their "
        "95%% confidence intervals around the exact Erlang-C values, and a "
        "sequential campaign must be byte-identical at jobs=1 and jobs=2. "
        "Exits 0 when every check passes, 1 otherwise.",
    )
    parser.add_argument(
        "--seed", type=int, default=2003, help="root random seed (default: 2003)"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller simulations (seconds instead of tens of seconds) — "
        "the CI smoke configuration",
    )
    parser.add_argument(
        "--skip-sequential",
        action="store_true",
        help="skip the sequential byte-identity check (queueing checks only)",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="additionally write the machine-readable report to FILE "
        "(the CI artifact)",
    )
    return parser


def build_check_parser() -> argparse.ArgumentParser:
    """Build the parser of the ``repro check`` command."""
    parser = argparse.ArgumentParser(
        prog="repro check",
        description="Statically check the source tree against the "
        "determinism & contract rules (seeded RNG only, no wall clocks, "
        "ordered persisted iteration, declared fingerprint roles, atomic "
        "writes, exact float text, stable API surface, library exceptions). "
        "Exits 0 when no active finding remains, 1 otherwise.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to check (default: the installed repro "
        "package)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="baseline file of grandfathered findings (default: the "
        "committed src/repro/analysis/lint_baseline.json)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to the current finding set and exit 0 "
        "(review the file's diff to accept or retire debt)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="additionally write the machine-readable report to FILE "
        "(the CI artifact)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def _add_profile_size_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "scenario", help="scenario name (see 'repro scenario list'), e.g. diurnal-week"
    )
    parser.add_argument(
        "--tasks",
        type=int,
        metavar="N",
        help="tasks per metatask (default: the smoke scale's task count)",
    )
    parser.add_argument(
        "--metatasks", type=int, metavar="N", help="number of metatasks (default: 1)"
    )
    parser.add_argument(
        "--reps", type=int, metavar="N", help="repetitions per metatask (default: 1)"
    )
    parser.add_argument(
        "--heuristics",
        metavar="A,B,...",
        help="comma-separated subset of the scenario's heuristics "
        "(default: all of them)",
    )
    parser.add_argument(
        "--seed", type=int, default=2003, help="root random seed (default: 2003)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default: 1); counters and traces are "
        "identical at any level",
    )


def build_profile_parser() -> argparse.ArgumentParser:
    """Build the parser of the ``repro profile`` subcommand family."""
    parser = argparse.ArgumentParser(
        prog="repro profile",
        description="Profile or trace one scenario campaign (see repro.obs): "
        "'run' wraps it in wall-clock phase timers and hot-path counters, "
        "'trace' records the virtual-time event trace.  Trace and counter "
        "content derive from virtual time and cell coordinates only — "
        "byte-identical at any --jobs level; wall-clock numbers appear "
        "exclusively in the perf report.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser(
        "run", help="run under phase timers + counters and print the perf report"
    )
    _add_profile_size_options(run_parser)
    run_parser.add_argument(
        "--profile",
        action="store_true",
        help="additionally cProfile the simulate phase (forced off when "
        "--jobs > 1: a parent-process profile of a worker pool would time "
        "pickling, not simulation)",
    )
    run_parser.add_argument(
        "--top",
        type=int,
        default=20,
        metavar="N",
        help="functions kept from the cProfile ranking (default: 20)",
    )
    run_parser.add_argument(
        "--json",
        metavar="FILE",
        help="additionally write the perf-report/v1 JSON to FILE "
        "(the CI artifact)",
    )

    trace_parser = commands.add_parser(
        "trace", help="run with the trace bus on and write the JSONL trace"
    )
    _add_profile_size_options(trace_parser)
    trace_parser.add_argument(
        "--out",
        metavar="FILE",
        default="trace.jsonl",
        help="JSONL trace output path (default: trace.jsonl)",
    )
    trace_parser.add_argument(
        "--chrome",
        metavar="FILE",
        help="additionally write the Chrome trace_event export (open in "
        "chrome://tracing or ui.perfetto.dev)",
    )
    trace_parser.add_argument(
        "--limit",
        type=int,
        metavar="N",
        help="bound each cell's event ring to N events (default: unbounded); "
        "truncation is surfaced, never silent",
    )
    return parser


def build_metrics_parser() -> argparse.ArgumentParser:
    """Build the parser of the ``repro metrics`` subcommand family."""
    parser = argparse.ArgumentParser(
        prog="repro metrics",
        description="Record and render virtual-time metric series (see "
        "repro.obs): 'record' samples a scenario campaign at a fixed "
        "virtual-time interval into byte-stable JSONL, 'show' renders TTY "
        "sparklines, 'plot' writes a single-file HTML report.  Series "
        "content derives from virtual time and simulation state only — "
        "byte-identical at any --jobs level, and sampling never changes "
        "the run's records.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    record_parser = commands.add_parser(
        "record", help="run one scenario with the sampler on and write the series"
    )
    _add_profile_size_options(record_parser)
    record_parser.add_argument(
        "--out",
        metavar="FILE",
        default="metrics.jsonl",
        help="JSONL series output path (default: metrics.jsonl)",
    )
    record_parser.add_argument(
        "--csv",
        metavar="FILE",
        help="additionally write a long-format CSV (spreadsheet tooling)",
    )
    record_parser.add_argument(
        "--chrome",
        metavar="FILE",
        help="additionally write a Chrome trace_event export with the "
        "samples as counter tracks (open in chrome://tracing or "
        "ui.perfetto.dev)",
    )
    record_parser.add_argument(
        "--interval",
        type=float,
        metavar="S",
        help="sampling interval in virtual seconds (default: 60)",
    )
    record_parser.add_argument(
        "--window",
        type=float,
        metavar="S",
        help="sliding window of the windowed throughput/latency columns, "
        "virtual seconds (default: 5x the interval)",
    )

    show_parser = commands.add_parser(
        "show", help="render a recorded series as TTY sparklines"
    )
    show_parser.add_argument("file", help="a metrics .jsonl written by 'record'")
    show_parser.add_argument(
        "--columns",
        metavar="A,B,...",
        help="comma-separated columns to show (default: all recorded)",
    )
    show_parser.add_argument(
        "--width",
        type=int,
        default=48,
        metavar="N",
        help="sparkline width in characters (default: 48)",
    )

    plot_parser = commands.add_parser(
        "plot", help="render recorded series into a single-file HTML report"
    )
    plot_parser.add_argument(
        "files",
        nargs="+",
        help="metrics .jsonl file(s); several files overlay for comparison, "
        "labelled by filename",
    )
    plot_parser.add_argument(
        "--out",
        metavar="FILE",
        default="metrics-report.html",
        help="HTML output path (default: metrics-report.html); the file is "
        "self-contained — inline SVG, no external assets",
    )
    plot_parser.add_argument(
        "--columns",
        metavar="A,B,...",
        help="comma-separated columns to plot (default: all recorded)",
    )
    plot_parser.add_argument(
        "--title", default="repro metrics", help="report title"
    )
    return parser


def build_bench_parser() -> argparse.ArgumentParser:
    """Build the parser of the ``repro bench`` subcommand family."""
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Benchmark suites and regression gating (see repro.bench): "
        "'run' measures a named suite into a bench-report/v1 JSON, 'compare' "
        "diffs two reports under regression thresholds and exits 1 on "
        "regression (the CI gate), 'history' shows per-case wall-time "
        "trends over an archive directory.  Wall seconds are only "
        "comparable on similar hardware; counters are exact everywhere.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_gate_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--max-slowdown",
            type=float,
            default=0.20,
            metavar="X",
            help="wall-time regression budget as a fraction "
            "(default: 0.20 = +20%%)",
        )
        sub.add_argument(
            "--counter-tolerance",
            type=float,
            default=0.10,
            metavar="X",
            help="deterministic-counter growth budget as a fraction "
            "(default: 0.10 = +10%%)",
        )
        sub.add_argument(
            "--no-wall-gate",
            action="store_true",
            help="report wall-time changes but never fail on them (use when "
            "baseline and current ran on different hardware — CI does)",
        )
        sub.add_argument(
            "--no-counter-gate",
            action="store_true",
            help="report counter growth but never fail on it",
        )

    run_parser = commands.add_parser(
        "run", help="measure a suite and print/save the bench report"
    )
    run_parser.add_argument(
        "--suite",
        default="default",
        help="suite name: default or smoke (default: default)",
    )
    run_parser.add_argument(
        "--cases",
        metavar="A,B,...",
        help="comma-separated case names to run (default: the whole suite)",
    )
    run_parser.add_argument(
        "--seed", type=int, default=2003, help="root random seed (default: 2003)"
    )
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default: 1); counters are identical at any "
        "level, wall times are not — compare like with like",
    )
    run_parser.add_argument(
        "--json",
        metavar="FILE",
        help="additionally write the bench-report/v1 JSON to FILE",
    )
    run_parser.add_argument(
        "--compare",
        metavar="BASELINE",
        help="after the run, diff against this baseline report and exit 1 "
        "on regression",
    )
    run_parser.add_argument(
        "--history",
        metavar="DIR",
        help="additionally archive the report as the next bench-NNNN.json "
        "in DIR (inspect with 'repro bench history DIR')",
    )
    add_gate_options(run_parser)

    compare_parser = commands.add_parser(
        "compare",
        help="diff two bench reports; exit 1 on regression (the CI gate)",
    )
    compare_parser.add_argument("baseline", help="the baseline bench-report JSON")
    compare_parser.add_argument("current", help="the candidate bench-report JSON")
    add_gate_options(compare_parser)

    history_parser = commands.add_parser(
        "history", help="per-case wall-time trends over an archive directory"
    )
    history_parser.add_argument(
        "directory", help="archive directory fed by 'repro bench run --history'"
    )
    return parser


def build_results_parser() -> argparse.ArgumentParser:
    """Build the parser of the ``repro results`` subcommand family."""
    parser = argparse.ArgumentParser(
        prog="repro results",
        description="Inspect and compare saved result files (see repro.api).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    show_parser = commands.add_parser(
        "show", help="load a results file and render its table(s) from the records"
    )
    show_parser.add_argument("file", help="a .jsonl or .csv file saved with --save-results")
    show_parser.add_argument(
        "--markdown", action="store_true", help="print tables as Markdown instead of plain text"
    )

    diff_parser = commands.add_parser(
        "diff", help="compare two results files record by record (exit 1 on differences)"
    )
    diff_parser.add_argument("file_a", help="the 'before' results file")
    diff_parser.add_argument("file_b", help="the 'after' results file")
    diff_parser.add_argument(
        "--rel-tol",
        type=float,
        default=0.0,
        metavar="X",
        help="relative tolerance on metric values (default: 0.0 = exact)",
    )
    return parser


#: Extensions the persistence layer can write (kept in sync with
#: ``ResultSet.save``; validated *before* a potentially hours-long run).
_RESULT_EXTENSIONS = (".jsonl", ".json", ".csv")


def _config_from(args: argparse.Namespace, parser: argparse.ArgumentParser) -> ExperimentConfig:
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    save_path = getattr(args, "save_results", None)
    if save_path and not save_path.lower().endswith(_RESULT_EXTENSIONS):
        parser.error(
            f"--save-results needs a {'/'.join(_RESULT_EXTENSIONS)} extension, got {save_path!r}"
        )
    observers = (ProgressObserver(),) if args.progress else ()
    store = None
    if getattr(args, "store", None):
        from .errors import StoreError
        from .store import open_store

        try:
            store = open_store(args.store)
        except (StoreError, OSError) as exc:
            parser.error(f"could not open store {args.store!r}: {exc}")
    ci_target = getattr(args, "ci_target", None)
    if ci_target is not None and ci_target <= 0:
        parser.error("--ci-target must be > 0")
    return ExperimentConfig(
        scale=SCALES[args.scale], seed=args.seed, jobs=args.jobs,
        observers=observers, store=store, ci_target=ci_target,
    )


def _maybe_report_store(config: ExperimentConfig) -> None:
    """One stderr summary line of the run's cache activity (CI greps it)."""
    store = config.store
    if store is None:
        return
    print(
        f"store: {store.hits} cell(s) recovered, {store.puts} executed "
        f"({len(store)} entries at {store.root})",
        file=sys.stderr,
    )


def _print_result(result, markdown: bool) -> None:
    if markdown and hasattr(result, "render_markdown"):
        print(result.render_markdown())
    elif hasattr(result, "render"):
        print(result.render())
    else:  # pragma: no cover - defensive
        print(result)


def _maybe_save(result, args: argparse.Namespace, parser: argparse.ArgumentParser) -> None:
    if not getattr(args, "save_results", None):
        return
    from . import api
    from .errors import ResultsError

    if getattr(result, "result_set", None) is None:
        parser.error(
            "this command's result carries no record set; --save-results only "
            "applies to table experiments and scenario runs/sweeps"
        )
    try:
        path = api.save_results(result, args.save_results)
    except (ResultsError, OSError) as exc:
        # The table was already printed above — fail cleanly, don't traceback.
        parser.error(f"could not save results: {exc}")
    print(f"saved {len(result.result_set)} record(s) to {path}", file=sys.stderr)


def _list_experiments() -> str:
    lines = ["available experiments:"]
    for experiment_id in experiment_ids():
        entry = get_experiment(experiment_id)
        lines.append(f"  {experiment_id:<32} {entry.paper_artefact:<28} {entry.description}")
    lines.append("")
    lines.append("scenarios: 'repro scenario list' / 'repro scenario run <name>'")
    lines.append("saved results: 'repro results show <file>' / 'repro results diff <a> <b>'")
    lines.append(
        "campaign store: '--store DIR' on any campaign, 'repro campaign resume "
        "<id> --store DIR', 'repro cache stats|ls|prune DIR'"
    )
    lines.append("analytical validation: 'repro validate [--quick] [--json FILE]'")
    lines.append(
        "profiling & tracing: 'repro profile run <scenario> [--tasks N]' / "
        "'repro profile trace <scenario> --out trace.jsonl'"
    )
    lines.append(
        "metric series & dashboards: 'repro metrics record <scenario> --out "
        "metrics.jsonl' / 'repro metrics show|plot metrics.jsonl'"
    )
    lines.append(
        "benchmarks & regression gate: 'repro bench run [--suite smoke]' / "
        "'repro bench compare <baseline> <current>'"
    )
    return "\n".join(lines)


def _list_scenarios() -> str:
    from .scenarios import SCENARIO_REGISTRY

    lines = ["registered scenarios:"]
    for name, scenario in SCENARIO_REGISTRY.items():
        lines.append(f"  {name:<18} {scenario.regime:<14} {scenario.description}")
    return "\n".join(lines)


def _scenario_main(argv: List[str]) -> int:
    from .scenarios import run_scenario, run_sweep

    parser = build_scenario_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        print(_list_scenarios())
        return 0

    config = _config_from(args, parser)
    if args.command == "run":
        result = run_scenario(args.name, config=config)
    else:  # sweep
        names = None
        if args.scenarios:
            names = [name.strip() for name in args.scenarios.split(",") if name.strip()]
        result = run_sweep(names=names, config=config, metric=args.metric)
    _print_result(result, args.markdown)
    _maybe_save(result, args, parser)
    _maybe_report_store(config)
    return 0


def _campaign_main(argv: List[str]) -> int:
    from .errors import ReproError
    from .store import resume_experiment

    parser = build_campaign_parser()
    args = parser.parse_args(argv)

    # only "resume" exists today
    if not args.store:
        parser.error("campaign resume needs --store DIR (the interrupted run's store)")
    config = _config_from(args, parser)
    try:
        report = resume_experiment(args.experiment, config.store, config=config)
    except ReproError as exc:
        parser.error(str(exc))
    _print_result(report.result, args.markdown)
    _maybe_save(report.result, args, parser)
    print(report.render(), file=sys.stderr)
    return 0


def _cache_main(argv: List[str]) -> int:
    from .errors import StoreError
    from .store import CampaignStore

    parser = build_cache_parser()
    args = parser.parse_args(argv)
    import os as _os

    if not _os.path.isdir(args.store):
        # Inspection commands must not create stores: a typo'd path would
        # silently materialise an empty directory and report 0 entries.
        parser.error(
            f"no store at {args.store!r} (stores are created by running a "
            "campaign with --store)"
        )
    try:
        store = CampaignStore(args.store)
    except (StoreError, OSError) as exc:
        parser.error(f"could not open store {args.store!r}: {exc}")

    if args.command == "stats":
        stats = store.stats()
        journal_bytes = (
            _os.path.getsize(store.journal.path) if store.journal.exists() else 0
        )
        print(f"store: {store.root}")
        print(f"entries: {stats['entries']}")
        print(f"experiments: {', '.join(stats['experiments']) or '(none)'}")
        print(f"hits: {stats['hits']}")
        print(f"misses: {stats['misses']}")
        print(f"puts: {stats['puts']}")
        print(f"journal-bytes: {journal_bytes}")
        if store.recovered_torn_tail:
            print("note: a torn final journal line was repaired on open", file=sys.stderr)
        return 0

    if args.command == "ls":
        shown = 0
        try:
            for entry in store.entries():
                key = entry.key
                if args.experiment and key.experiment_id != args.experiment:
                    continue
                shown += 1
                flags = " TRUNCATED" if entry.record.truncated else ""
                print(
                    f"{key.experiment_id} {key.heuristic} m{key.metatask_index} "
                    f"rep{key.repetition} seed={key.seed} config={key.config_hash} "
                    f"schema=v{key.schema_version}{flags}"
                )
        except BrokenPipeError:
            # Listing into `head` & friends: stop quietly once the pipe closes.
            sys.stderr.close()
            return 0
        print(f"{shown} cached cell(s)", file=sys.stderr)
        return 0

    # prune
    if not (args.all or args.experiment or args.config_hash):
        parser.error("prune needs a filter: --experiment ID, --config-hash HASH or --all")

    def doomed(entry) -> bool:
        if args.all:
            return True
        if args.experiment and entry.key.experiment_id != args.experiment:
            return False
        if args.config_hash and entry.key.config_hash != args.config_hash:
            return False
        return True

    removed = store.prune(doomed)
    store.flush_stats()
    print(f"pruned {removed} cell(s); {len(store)} left", file=sys.stderr)
    return 0


def _validate_main(argv: List[str]) -> int:
    from .errors import ReproError
    from .stats import run_validation

    parser = build_validate_parser()
    args = parser.parse_args(argv)
    try:
        report = run_validation(
            seed=args.seed,
            quick=args.quick,
            include_sequential=not args.skip_sequential,
        )
    except ReproError as exc:
        parser.error(str(exc))
    print(report.render())
    if args.json:
        try:
            report.save_json(args.json)
        except OSError as exc:
            parser.error(f"could not write {args.json!r}: {exc}")
        print(f"wrote {args.json}", file=sys.stderr)
    return 0 if report.passed else 1


def _check_main(argv: List[str]) -> int:
    from .analysis import RULE_REGISTRY, run_check
    from .errors import AnalysisError

    parser = build_check_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(RULE_REGISTRY):
            rule = RULE_REGISTRY[rule_id]
            print(f"{rule.id:12} {rule.title}")
        return 0

    select = None
    if args.select:
        select = [rule_id.strip() for rule_id in args.select.split(",") if rule_id.strip()]
    try:
        report = run_check(
            args.paths or None,
            baseline=args.baseline,
            update_baseline=args.update_baseline,
            select=select,
            json_path=args.json,
        )
    except (AnalysisError, OSError) as exc:
        parser.error(str(exc))
    print(report.render())
    if args.json:
        print(f"wrote {args.json}", file=sys.stderr)
    return report.exit_code


def _profile_main(argv: List[str]) -> int:
    from .errors import ReproError
    from .obs.profile import profile_scenario, trace_scenario

    parser = build_profile_parser()
    args = parser.parse_args(argv)

    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    heuristics = None
    if args.heuristics:
        heuristics = [name.strip() for name in args.heuristics.split(",") if name.strip()]
    if args.command == "run":
        try:
            report = profile_scenario(
                args.scenario,
                tasks=args.tasks,
                metatasks=args.metatasks,
                repetitions=args.reps,
                heuristics=heuristics,
                seed=args.seed,
                jobs=args.jobs,
                profile=args.profile,
                top=args.top,
            )
        except ReproError as exc:
            parser.error(str(exc))
        # Write the artifact before rendering: a closed stdout (``| head``)
        # must not lose the machine-readable report.
        if args.json:
            try:
                report.save_json(args.json)
            except OSError as exc:
                parser.error(f"could not write {args.json!r}: {exc}")
        print(report.render())
        if args.profile and args.jobs > 1:
            print("note: --profile is forced off at --jobs > 1", file=sys.stderr)
        if args.json:
            print(f"wrote {args.json}", file=sys.stderr)
        return 0

    # trace
    if args.limit is not None and args.limit < 1:
        parser.error("--limit must be >= 1")
    try:
        result = trace_scenario(
            args.scenario,
            out=args.out,
            chrome_out=args.chrome,
            tasks=args.tasks,
            metatasks=args.metatasks,
            repetitions=args.reps,
            heuristics=heuristics,
            seed=args.seed,
            jobs=args.jobs,
            limit=args.limit,
        )
    except ReproError as exc:
        parser.error(str(exc))
    except OSError as exc:
        parser.error(f"could not write trace: {exc}")
    print(result.render())
    return 0


def _split_csv(option: Optional[str]) -> Optional[List[str]]:
    if not option:
        return None
    return [item.strip() for item in option.split(",") if item.strip()]


def _metrics_main(argv: List[str]) -> int:
    from .errors import ReproError, ResultsError

    parser = build_metrics_parser()
    args = parser.parse_args(argv)

    if args.command == "record":
        from .obs.profile import metrics_scenario

        if args.jobs < 1:
            parser.error("--jobs must be >= 1")
        if args.interval is not None and args.interval <= 0:
            parser.error("--interval must be > 0")
        if args.window is not None and args.window <= 0:
            parser.error("--window must be > 0")
        try:
            result = metrics_scenario(
                args.scenario,
                out=args.out,
                csv_out=args.csv,
                chrome_out=args.chrome,
                tasks=args.tasks,
                metatasks=args.metatasks,
                repetitions=args.reps,
                heuristics=_split_csv(args.heuristics),
                seed=args.seed,
                jobs=args.jobs,
                interval=args.interval,
                window=args.window,
            )
        except ReproError as exc:
            parser.error(str(exc))
        except OSError as exc:
            parser.error(f"could not write metrics: {exc}")
        print(result.render())
        return 0

    from .obs import read_metrics_jsonl, views_from_rows

    def load_views(path: str, prefix: str = ""):
        try:
            _, rows = read_metrics_jsonl(path)
        except (ResultsError, OSError) as exc:
            parser.error(str(exc))
        return views_from_rows(rows, prefix=prefix)

    if args.command == "show":
        from .obs import render_metrics_text

        if args.width < 1:
            parser.error("--width must be >= 1")
        views = load_views(args.file)
        try:
            print(render_metrics_text(views, columns=_split_csv(args.columns), width=args.width))
        except ReproError as exc:
            parser.error(str(exc))
        return 0

    # plot
    import os as _os

    views = []
    for path in args.files:
        # Several files overlay in one report; labels get the filename stem
        # so "before.jsonl" vs "after.jsonl" series stay tellable apart.
        prefix = (
            f"{_os.path.splitext(_os.path.basename(path))[0]}:"
            if len(args.files) > 1
            else ""
        )
        views.extend(load_views(path, prefix=prefix))
    from .obs import write_metrics_html

    try:
        write_metrics_html(
            args.out, views, columns=_split_csv(args.columns), title=args.title
        )
    except ReproError as exc:
        parser.error(str(exc))
    except OSError as exc:
        parser.error(f"could not write {args.out!r}: {exc}")
    print(f"wrote {args.out} ({len(views)} series)", file=sys.stderr)
    return 0


def _bench_main(argv: List[str]) -> int:
    from .bench import (
        BenchReport,
        compare_reports,
        get_suite,
        history_entries,
        next_history_path,
        render_history,
        run_suite,
    )
    from .errors import ReproError

    parser = build_bench_parser()
    args = parser.parse_args(argv)

    def gate_kwargs():
        if args.max_slowdown < 0 or args.counter_tolerance < 0:
            parser.error("--max-slowdown and --counter-tolerance must be >= 0")
        return {
            "max_slowdown": args.max_slowdown,
            "counter_tolerance": args.counter_tolerance,
            "wall_gate": not args.no_wall_gate,
            "counter_gate": not args.no_counter_gate,
        }

    if args.command == "history":
        try:
            entries = history_entries(args.directory)
        except ReproError as exc:
            parser.error(str(exc))
        print(render_history(entries))
        return 0

    if args.command == "compare":
        kwargs = gate_kwargs()
        try:
            baseline = BenchReport.load_json(args.baseline)
            current = BenchReport.load_json(args.current)
            comparison = compare_reports(baseline, current, **kwargs)
        except ReproError as exc:
            parser.error(str(exc))
        print(comparison.render())
        return 0 if comparison.ok else 1

    # run
    kwargs = gate_kwargs()
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    try:
        cases = get_suite(args.suite)
    except ReproError as exc:
        parser.error(str(exc))
    wanted = _split_csv(args.cases)
    if wanted:
        by_name = {case.name: case for case in cases}
        unknown = [name for name in wanted if name not in by_name]
        if unknown:
            parser.error(
                f"unknown case(s) {unknown} in suite {args.suite!r} "
                f"(has: {', '.join(sorted(by_name))})"
            )
        cases = tuple(by_name[name] for name in wanted)
    try:
        report = run_suite(
            cases,
            suite=args.suite,
            seed=args.seed,
            jobs=args.jobs,
            progress=lambda line: print(line, file=sys.stderr),
        )
    except ReproError as exc:
        parser.error(str(exc))
    # Artifacts first: a closed stdout must not lose the JSON.
    if args.json:
        try:
            report.save_json(args.json)
        except OSError as exc:
            parser.error(f"could not write {args.json!r}: {exc}")
    if args.history:
        try:
            archived = report.save_json(next_history_path(args.history))
        except OSError as exc:
            parser.error(f"could not archive to {args.history!r}: {exc}")
        print(f"archived {archived}", file=sys.stderr)
    print(report.render())
    if args.json:
        print(f"wrote {args.json}", file=sys.stderr)
    if args.compare:
        try:
            baseline = BenchReport.load_json(args.compare)
            comparison = compare_reports(baseline, report, **kwargs)
        except ReproError as exc:
            parser.error(str(exc))
        print(comparison.render())
        return 0 if comparison.ok else 1
    return 0


def _results_main(argv: List[str]) -> int:
    from . import api
    from .errors import ResultsError

    parser = build_results_parser()
    args = parser.parse_args(argv)

    if args.command == "show":
        try:
            result_set = api.load_results(args.file)
        except (ResultsError, OSError) as exc:
            parser.error(str(exc))
        experiments = sorted(set(result_set.column("experiment_id")))
        if len(experiments) <= 1:
            _print_result(result_set.pivot(), args.markdown)
        else:
            # A multi-experiment file (e.g. a sweep): one table per
            # experiment, rendered from that experiment's records.
            parts = []
            for experiment_id, group in result_set.group_by("experiment_id").items():
                table = group.pivot(title=str(experiment_id), notes=())
                parts.append(
                    table.render_markdown() if args.markdown else table.render()
                )
            print("\n\n".join(parts))
        return 0
    # diff
    if args.rel_tol < 0:
        parser.error("--rel-tol must be >= 0")
    try:
        diff = api.compare(args.file_a, args.file_b, rel_tol=args.rel_tol)
    except (ResultsError, OSError) as exc:
        parser.error(str(exc))
    print(diff.render())
    return 0 if diff.identical else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the CLI."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "scenario":
        return _scenario_main(argv[1:])
    if argv and argv[0] == "results":
        return _results_main(argv[1:])
    if argv and argv[0] == "campaign":
        return _campaign_main(argv[1:])
    if argv and argv[0] == "cache":
        return _cache_main(argv[1:])
    if argv and argv[0] == "validate":
        return _validate_main(argv[1:])
    if argv and argv[0] == "check":
        return _check_main(argv[1:])
    if argv and argv[0] == "profile":
        return _profile_main(argv[1:])
    if argv and argv[0] == "metrics":
        return _metrics_main(argv[1:])
    if argv and argv[0] == "bench":
        return _bench_main(argv[1:])

    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        print(_list_experiments())
        return 0

    config = _config_from(args, parser)
    result = run_experiment(args.experiment, config)
    _print_result(result, args.markdown)
    _maybe_save(result, args, parser)
    _maybe_report_store(config)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
