"""Resumable campaigns: diff the journal against the plan, run what's missing.

A campaign killed at cell 900/1000 left 900 committed cells in the store's
journal.  Resuming is *not* a special execution mode: the campaign engine
plans exactly the same cells in exactly the same canonical order as always,
and :func:`partition_cells` splits that plan into journaled cells (recovered
from the cache, zero simulation) and missing ones (handed to the executor).
Because records are assembled in planned order regardless of where they came
from, the resumed output — tables, saved JSONL, everything — is
byte-identical to an uninterrupted run.

:func:`resume_experiment` is the orchestration entry point behind
``repro campaign resume``: it re-runs a registered experiment against a
store and reports how many cells were recovered versus executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from ..errors import StoreError
from .cache import CampaignStore, CellEntry, CellKey

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..experiments.campaign import CellWork, RunCell
    from ..experiments.config import ExperimentConfig

__all__ = ["CellPartition", "cell_key_for", "partition_cells", "ResumeReport", "resume_experiment"]


def cell_key_for(
    config_hash: str,
    experiment_id: str,
    cell: "RunCell",
    seed: int,
    workload_hash: str = "",
) -> CellKey:
    """The content address of one planned cell (store-independent)."""
    return CellKey(
        config_hash=config_hash,
        experiment_id=experiment_id,
        heuristic=cell.heuristic,
        metatask_index=cell.metatask_index,
        repetition=cell.repetition,
        seed=seed,
        workload_hash=workload_hash,
    )


@dataclass
class CellPartition:
    """A campaign plan split into journaled cells and cells still to run.

    ``hits`` maps planned cell index → the cached entry; ``misses`` lists the
    planned indices that must execute, in planned (canonical) order; ``keys``
    holds every planned cell's key by index, so freshly executed cells commit
    under the exact address the partition looked up.
    """

    hits: Dict[int, CellEntry] = field(default_factory=dict)
    misses: List[int] = field(default_factory=list)
    keys: List[CellKey] = field(default_factory=list)

    @property
    def planned(self) -> int:
        return len(self.keys)

    @property
    def complete(self) -> bool:
        """Whether the journal already covers the whole plan (a warm run)."""
        return not self.misses


def partition_cells(
    store: CampaignStore,
    experiment_id: str,
    config_hash: str,
    cells: Sequence["RunCell"],
    work_items: Sequence["CellWork"],
    workload_hash: str = "",
) -> CellPartition:
    """Diff a campaign plan against the store.

    Every planned cell is looked up by its content address (counting the
    store's hit/miss statistics); the result partitions the plan without
    changing its order.
    """
    if len(cells) != len(work_items):
        raise StoreError(
            f"plan mismatch: {len(cells)} cells but {len(work_items)} work items"
        )
    partition = CellPartition()
    for index, (cell, work) in enumerate(zip(cells, work_items)):
        key = cell_key_for(
            config_hash, experiment_id, cell, work.middleware_config.seed, workload_hash
        )
        partition.keys.append(key)
        entry = store.get(key)
        if entry is None:
            partition.misses.append(index)
        else:
            partition.hits[index] = entry
    return partition


@dataclass
class ResumeReport:
    """Outcome of resuming one experiment against a store."""

    experiment_id: str
    #: Cells recovered from the journal (no simulation).
    recovered: int
    #: Cells that had to execute (they are now journaled too).
    executed: int
    #: The experiment's result object (table / sweep result), unchanged from
    #: what an uninterrupted run would have returned.
    result: object = None

    @property
    def planned(self) -> int:
        return self.recovered + self.executed

    def render(self) -> str:
        state = "already complete" if self.executed == 0 else "resumed"
        return (
            f"[{self.experiment_id}] {state}: {self.recovered}/{self.planned} "
            f"cell(s) recovered from the journal, {self.executed} executed"
        )


def resume_experiment(
    experiment_id: str,
    store: CampaignStore,
    config: Optional["ExperimentConfig"] = None,
    jobs: Optional[int] = None,
) -> ResumeReport:
    """Resume (or verify) one registered experiment against ``store``.

    Runs the experiment with the store attached: journaled cells are
    recovered, missing ones executed and committed.  Output is byte-identical
    to an uninterrupted run; the report counts how much work the journal
    saved.  Experiments that do not run through the campaign engine (the
    validation, Fig. 1, the ablations) cannot be resumed and fail loudly.
    """
    from dataclasses import replace

    from ..experiments.config import ExperimentConfig
    from ..experiments.registry import get_experiment, run_experiment

    entry = get_experiment(experiment_id)
    if not entry.accepts_config:
        raise StoreError(
            f"experiment {experiment_id!r} does not run through the campaign "
            "engine; only campaign experiments (tables, scenario sweeps) are "
            "resumable"
        )
    config = config if config is not None else ExperimentConfig()
    config = replace(config, store=store)
    hits_before, puts_before = store.hits, store.puts
    result = run_experiment(experiment_id, config, jobs=jobs)
    store.flush_stats()
    return ResumeReport(
        experiment_id=experiment_id,
        recovered=store.hits - hits_before,
        executed=store.puts - puts_before,
        result=result,
    )
