"""Crash-safe journaling: atomic file replacement and an append-only WAL.

Two durability primitives shared by the campaign store (and reused by the
results persistence layer):

* :func:`atomic_write_text` — write a whole file through a same-directory
  temporary file and :func:`os.replace`, so readers only ever see the old
  content or the complete new content, never a truncated mix.  Used for
  journal compaction, store statistics and ``ResultSet.save``.
* :class:`Journal` — an append-only JSONL write-ahead log.  Every committed
  campaign cell becomes one line, flushed and fsynced before the cell counts
  as done.  Recovery (:meth:`Journal.recover`) tolerates exactly the damage a
  crash can cause — a *torn final line* from an append cut short — by
  dropping the tail and repairing the file atomically; damage a crash cannot
  cause (garbage in the middle of the file) fails loudly instead of being
  silently skipped.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, IO, Iterator, List, Optional, Tuple, Union

from ..errors import StoreError

__all__ = ["atomic_write_text", "Journal", "JOURNAL_FORMAT", "JOURNAL_VERSION"]

#: Magic ``format`` value of the journal header line.
JOURNAL_FORMAT = "repro-store-journal"

#: Version of the journal's on-disk layout; future versions are rejected.
JOURNAL_VERSION = 1


def atomic_write_text(path: Union[str, "os.PathLike[str]"], text: str) -> str:
    """Write ``text`` to ``path`` atomically (temp file + :func:`os.replace`).

    The temporary file lives in the target's directory so the final rename
    never crosses a filesystem boundary; it is flushed and fsynced before the
    replace, so after a crash the path holds either the previous content or
    the full new content.  Returns the path written.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    descriptor, temp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8", newline="") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        # mkstemp creates 0600 files; replacing must not silently tighten the
        # target's permissions (a shared results file must stay shared), so
        # carry the target's mode over — or the umask default for new files.
        try:
            mode = os.stat(path).st_mode & 0o7777
        except FileNotFoundError:
            umask = os.umask(0)
            os.umask(umask)
            mode = 0o666 & ~umask
        os.chmod(temp_path, mode)
        os.replace(temp_path, path)
    except BaseException:
        # Never leave the temp file behind — the write failed, the target is
        # untouched (that is the whole point of the replace dance).
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    # The rename itself must survive a power failure: fsync the directory so
    # the new entry is on disk, not just in the page cache.
    _fsync_directory(directory)
    return path


def _fsync_directory(directory: str) -> None:
    """Flush a directory entry to disk (best effort: some platforms refuse
    to fsync directories; the file-content fsyncs still hold there)."""
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def _dump_line(entry: Dict[str, Any]) -> str:
    """One canonical JSONL line (sorted keys, compact separators)."""
    return json.dumps(entry, sort_keys=True, separators=(",", ":"))


class Journal:
    """An append-only JSONL write-ahead log with torn-tail recovery.

    The first line is a header stamping the format and layout version; every
    other line is one committed entry.  :meth:`append` flushes and fsyncs, so
    an entry that was reported committed survives a crash; an append the
    crash interrupted leaves at most one torn final line, which
    :meth:`recover` drops and repairs.  :meth:`rewrite` compacts the journal
    to a given entry list through :func:`atomic_write_text`.
    """

    def __init__(self, path: Union[str, "os.PathLike[str]"], fsync: bool = True):
        self.path = os.fspath(path)
        self.fsync = fsync
        self._handle: Optional[IO[str]] = None

    # ------------------------------------------------------------------ #
    # reading / recovery
    # ------------------------------------------------------------------ #
    def exists(self) -> bool:
        return os.path.exists(self.path)

    def recover(self) -> Tuple[List[Dict[str, Any]], bool]:
        """Load every committed entry; repair a torn final line if present.

        Returns ``(entries, torn)`` where ``torn`` reports whether the file
        ended in an incomplete line (a crash mid-append) that had to be
        dropped.  When it did, the journal file is rewritten atomically
        without the tail, so subsequent appends extend a clean file instead
        of a corrupt one.  A missing file yields ``([], False)``; malformed
        lines *before* the final one mean real corruption and raise
        :class:`~repro.errors.StoreError`.
        """
        if not self.exists():
            return [], False
        self.close()
        with open(self.path, "r", encoding="utf-8", newline="") as handle:
            text = handle.read()
        raw_lines = text.split("\n")
        # A well-formed journal ends with "\n": the final split element is
        # empty.  Anything else is the torn tail of an interrupted append.
        lines = [line for line in raw_lines[:-1] if line.strip()]
        tail = raw_lines[-1]
        torn = bool(tail.strip())

        entries: List[Dict[str, Any]] = []
        for number, line in enumerate(lines, start=1):
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                if number == len(lines) and not torn:
                    # A torn line that *does* end in "\n" cannot happen from a
                    # single interrupted append, but a crash between the
                    # write of the newline and the fsync can surface either
                    # way depending on the filesystem — treat a malformed
                    # final line as torn too.
                    torn = True
                    break
                raise StoreError(
                    f"corrupt journal {self.path!r}: malformed entry on line "
                    f"{number}: {exc}"
                ) from exc
            if not isinstance(entry, dict):
                raise StoreError(
                    f"corrupt journal {self.path!r}: line {number} is not an object"
                )
            entries.append(entry)

        if entries:
            self._check_header(entries[0])
            entries = entries[1:]
        elif lines or torn:
            # There was content but no parseable header line: only plausible
            # for a journal torn during its very first append — recover to
            # the empty state.
            torn = True

        if torn:
            self.rewrite(entries)
        return entries, torn

    def _check_header(self, header: Dict[str, Any]) -> None:
        if header.get("format") != JOURNAL_FORMAT:
            raise StoreError(
                f"{self.path!r} is not a campaign-store journal (header "
                f"format {header.get('format')!r})"
            )
        version = header.get("version")
        if not isinstance(version, int) or version > JOURNAL_VERSION:
            raise StoreError(
                f"journal {self.path!r} written by layout version {version!r}; "
                f"this library reads up to {JOURNAL_VERSION} — upgrade repro"
            )

    def entries(self) -> Iterator[Dict[str, Any]]:
        """Iterate the committed entries.

        Delegates to :meth:`recover`, so a torn final line is dropped *and
        repaired on disk* as a side effect; read the file directly for
        forensics on a damaged journal.
        """
        entries, _ = self.recover()
        return iter(entries)

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def _header_line(self) -> str:
        return _dump_line({"format": JOURNAL_FORMAT, "version": JOURNAL_VERSION})

    def _open_for_append(self) -> IO[str]:
        if self._handle is not None and not self._handle.closed:
            # Guard against a concurrent rewrite/repair having swapped the
            # journal's inode out from under the open handle (e.g. `repro
            # cache prune` while a campaign streams commits): appending to
            # the orphaned old inode would silently lose every cell, so
            # detect the swap and reopen the current file instead.
            try:
                if os.fstat(self._handle.fileno()).st_ino == os.stat(self.path).st_ino:
                    return self._handle
            except OSError:
                pass
            self.close()
        fresh = not self.exists() or os.path.getsize(self.path) == 0
        self._handle = open(self.path, "a", encoding="utf-8", newline="")
        if fresh:
            self._handle.write(self._header_line() + "\n")
            # Make the journal's *directory entry* durable too: per-append
            # fsyncs alone cannot save entries if a power cut erases the
            # freshly created file's name from its directory.
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
                _fsync_directory(os.path.dirname(self.path) or ".")
        return self._handle

    def append(self, entry: Dict[str, Any]) -> None:
        """Durably append one entry (flush + fsync before returning)."""
        handle = self._open_for_append()
        handle.write(_dump_line(entry) + "\n")
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())

    def rewrite(self, entries: List[Dict[str, Any]]) -> None:
        """Atomically replace the journal's content (compaction / repair)."""
        self.close()
        lines = [self._header_line()]
        lines.extend(_dump_line(entry) for entry in entries)
        atomic_write_text(self.path, "\n".join(lines) + "\n")

    def close(self) -> None:
        """Close the append handle (reopened lazily by the next append)."""
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
        self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<Journal {self.path!r}>"
