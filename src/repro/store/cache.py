"""Content-addressed cell cache: the persistence layer of the campaign store.

Every campaign cell — one full middleware simulation — is fully determined
by its :class:`CellKey`: the configuration fingerprint
(:func:`repro.results.config_fingerprint`, which already excludes
execution-only knobs), the experiment id, the cell coordinates, the derived
seed the run actually used, and the record schema version.  Two cells with
the same key therefore produce the same numbers, which is what makes caching
sound: the store memoises the provenance-stamped
:class:`~repro.results.RunRecord` of each executed cell and hands it back,
byte-identical, to any later campaign that plans the same cell.

Reference-heuristic entries additionally carry the run's per-task completion
map, so a *partially* warm campaign can still compute the paper's pairwise
"tasks finishing sooner" metric for freshly executed candidate cells without
re-simulating the cached reference run.

Durability comes from the :class:`~repro.store.journal.Journal` write-ahead
log: one fsynced line per committed cell, so a campaign killed at cell
900/1000 recovers 900 cells.  :class:`CampaignStore` is the facade tying the
in-memory index, the journal and the persistent hit/miss statistics
together; :func:`open_store` is the one-liner entry point used by
``repro.api`` and the CLI's ``--store``.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import StoreError
from ..results.records import SCHEMA_VERSION, RunRecord
from .journal import Journal, atomic_write_text

__all__ = [
    "CellKey",
    "CellEntry",
    "CampaignStore",
    "open_store",
    "workload_fingerprint",
    "STORE_JOURNAL_NAME",
]


def workload_fingerprint(platform: Any, metatasks: Sequence[Any]) -> str:
    """Stable fingerprint of a campaign's workload (platform + metatasks).

    The configuration fingerprint covers the knobs of *registry* experiments,
    whose workloads derive deterministically from the config — but
    :func:`~repro.experiments.campaign.run_campaign` also accepts arbitrary
    platform / metatask arguments, which the config never sees.  Hashing
    their full dataclass trees (machine specs, per-item problems and arrival
    dates) into the cell address keeps two custom campaigns with the same
    config but different workloads from aliasing each other's cached cells.
    """
    payload = {
        "platform": asdict(platform),
        "metatasks": [asdict(metatask) for metatask in metatasks],
    }
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]

#: File names inside a store directory.
STORE_JOURNAL_NAME = "journal.jsonl"
_STATS_NAME = "stats.json"


@dataclass(frozen=True)
class CellKey:
    """The content address of one campaign cell.

    Everything that determines the cell's numbers is in the key; everything
    that does not (``jobs``, observers, the store itself) is excluded — the
    fingerprint-invariance tests in ``tests/store`` guard that boundary.
    """

    config_hash: str
    experiment_id: str
    heuristic: str
    metatask_index: int
    repetition: int
    #: The *derived* middleware seed of the cell (root seed + coordinate
    #: offset [+ scenario offset]) — already coordinate-addressed, but keyed
    #: explicitly so a root-seed change can never alias a cached cell.
    seed: int
    #: :func:`workload_fingerprint` of the campaign's platform + metatasks
    #: (guards custom ``run_campaign`` workloads the config hash cannot see).
    workload_hash: str = ""
    schema_version: int = SCHEMA_VERSION

    @property
    def digest(self) -> str:
        """The content address: SHA-256 over the canonical key JSON.

        Built from :meth:`to_json_dict`, so the journaled representation and
        the content address can never drift apart field-wise.
        """
        payload = json.dumps(self.to_json_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "config_hash": self.config_hash,
            "experiment_id": self.experiment_id,
            "heuristic": self.heuristic,
            "metatask_index": self.metatask_index,
            "repetition": self.repetition,
            "seed": self.seed,
            "workload_hash": self.workload_hash,
            "schema_version": self.schema_version,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "CellKey":
        try:
            return cls(
                config_hash=str(data["config_hash"]),
                experiment_id=str(data["experiment_id"]),
                heuristic=str(data["heuristic"]),
                metatask_index=int(data["metatask_index"]),
                repetition=int(data["repetition"]),
                seed=int(data["seed"]),
                workload_hash=str(data["workload_hash"]),
                schema_version=int(data["schema_version"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreError(f"malformed cell key: {exc}") from exc


@dataclass(frozen=True)
class CellEntry:
    """One cached cell: its key, its record, and (for reference-heuristic
    cells) the ``task_id → completion date`` map that pairwise comparisons
    need when a later campaign executes fresh candidate cells against this
    cached reference."""

    key: CellKey
    record: RunRecord
    completions: Optional[Mapping[str, float]] = None

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "kind": "cell",
            "key": self.key.to_json_dict(),
            "record": self.record.to_json_dict(),
            # JSON floats round-trip exactly (shortest-repr), so completion
            # dates survive the journal byte-for-byte.
            "completions": None if self.completions is None else dict(self.completions),
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "CellEntry":
        try:
            completions = data["completions"]
            return cls(
                key=CellKey.from_json_dict(data["key"]),
                record=RunRecord.from_json_dict(data["record"]),
                completions=(
                    None
                    if completions is None
                    # repro: allow[DET-ORDER] order-preserving re-keying of an
                    # already-journaled mapping; no new order is produced
                    else {str(k): float(v) for k, v in dict(completions).items()}
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreError(f"malformed cell entry: {exc}") from exc


class CampaignStore:
    """A directory-backed, journaled, content-addressed cell cache.

    Layout: ``<root>/journal.jsonl`` (the write-ahead log, one committed cell
    per line) and ``<root>/stats.json`` (cumulative hit/miss/put counters,
    rewritten atomically).  Opening a store replays the journal into an
    in-memory index, repairing a torn final line if the previous owner
    crashed mid-append.

    Session counters (:attr:`hits`, :attr:`misses`, :attr:`puts`) track the
    current process only; :meth:`flush_stats` folds them into the persistent
    cumulative counters.  Lookups and commits happen in the campaign's
    parent process (the assembler), so a single append handle is safe at any
    ``--jobs`` level.
    """

    def __init__(self, root: Union[str, "os.PathLike[str]"], fsync: bool = True):
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.journal = Journal(os.path.join(self.root, STORE_JOURNAL_NAME), fsync=fsync)
        self._index: Dict[str, CellEntry] = {}
        self.recovered_torn_tail = False
        self._load()
        # Per-process session counters (deltas folded into stats.json).
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self._flushed = {"hits": 0, "misses": 0, "puts": 0}

    def _load(self) -> None:
        entries, torn = self.journal.recover()
        self.recovered_torn_tail = torn
        for raw in entries:
            if raw.get("kind") != "cell":
                # Unknown kinds are forward-compatible no-ops.
                continue
            entry = CellEntry.from_json_dict(raw)
            self._index[entry.key.digest] = entry  # last write wins

    # ------------------------------------------------------------------ #
    # cache protocol
    # ------------------------------------------------------------------ #
    def get(self, key: CellKey) -> Optional[CellEntry]:
        """Look one cell up, counting the hit or miss."""
        entry = self._index.get(key.digest)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def peek(self, key: CellKey) -> Optional[CellEntry]:
        """Look one cell up without touching the hit/miss counters."""
        return self._index.get(key.digest)

    def put(self, entry: CellEntry) -> None:
        """Durably commit one cell (journal append, then index update)."""
        self.journal.append(entry.to_json_dict())
        self._index[entry.key.digest] = entry
        self.puts += 1

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: CellKey) -> bool:
        return key.digest in self._index

    def entries(self) -> Iterator[CellEntry]:
        """Every cached cell, in canonical key order, last write wins.

        The index itself is in journal (commit) order, which depends on how
        the campaign interleaved its workers — ``--jobs 4`` and ``--jobs 1``
        commit in different orders.  Listings and reports built from this
        iterator must not inherit that accident, so entries are sorted by
        their cell coordinates (the DET-ORDER contract).
        """
        return iter(
            sorted(
                self._index.values(),
                key=lambda entry: (
                    entry.key.experiment_id,
                    entry.key.heuristic,
                    entry.key.metatask_index,
                    entry.key.repetition,
                    entry.key.seed,
                    entry.key.config_hash,
                    entry.key.workload_hash,
                ),
            )
        )

    def experiment_ids(self) -> List[str]:
        """Distinct experiment ids present in the cache, sorted."""
        return sorted({entry.key.experiment_id for entry in self._index.values()})

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #
    def prune(self, predicate: Callable[[CellEntry], bool]) -> int:
        """Drop every entry matching ``predicate``; compact the journal.

        Returns the number of entries removed.  The compacted journal is
        written atomically, so a crash mid-prune leaves the previous journal
        intact.  Do not prune while another process is actively running a
        campaign against the same store: cells that process commits between
        this store's journal replay and the compaction are dropped from the
        rewritten file (its *later* commits survive — appends detect the
        inode swap and reopen — but the window is lossy).
        """
        keep = {
            digest: entry
            # repro: allow[DET-ORDER] compaction deliberately preserves the
            # journal's commit order; replay is last-write-wins either way
            for digest, entry in self._index.items()
            if not predicate(entry)
        }
        removed = len(self._index) - len(keep)
        if removed:
            # repro: allow[DET-ORDER] rewrites in preserved commit order (above)
            self.journal.rewrite([entry.to_json_dict() for entry in keep.values()])
            self._index = keep
        return removed

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    @property
    def stats_path(self) -> str:
        return os.path.join(self.root, _STATS_NAME)

    def _read_persistent_stats(self) -> Dict[str, int]:
        try:
            with open(self.stats_path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            return {"hits": 0, "misses": 0, "puts": 0}
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(f"corrupt store stats {self.stats_path!r}: {exc}") from exc
        return {
            name: int(data.get(name, 0)) for name in ("hits", "misses", "puts")
        }

    def flush_stats(self) -> Dict[str, Any]:
        """Fold the session counters into ``stats.json`` (atomic rewrite).

        Returns the cumulative statistics after the fold; flushing twice
        only accounts new activity once.
        """
        cumulative = self._read_persistent_stats()
        for name in ("hits", "misses", "puts"):
            session = getattr(self, name)
            cumulative[name] += session - self._flushed[name]
            self._flushed[name] = session
        payload = dict(cumulative)
        payload["entries"] = len(self)
        payload["experiments"] = self.experiment_ids()
        atomic_write_text(
            self.stats_path,
            json.dumps(payload, sort_keys=True, indent=2) + "\n",
        )
        return payload

    def stats(self) -> Dict[str, Any]:
        """Current statistics: persistent cumulative + this session's deltas."""
        cumulative = self._read_persistent_stats()
        for name in ("hits", "misses", "puts"):
            cumulative[name] += getattr(self, name) - self._flushed[name]
        cumulative["entries"] = len(self)
        cumulative["experiments"] = self.experiment_ids()
        return cumulative

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        self.journal.close()

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<CampaignStore {self.root!r} entries={len(self)}>"


def open_store(
    store: Union[str, "os.PathLike[str]", CampaignStore, None],
) -> Optional[CampaignStore]:
    """Coerce a path (or an already-open store, or ``None``) to a store.

    Paths are created on first use; an existing store directory is replayed.
    This is the resolution step behind ``repro.api.run(..., store=...)`` and
    the CLI's ``--store DIR``.
    """
    if store is None or isinstance(store, CampaignStore):
        return store
    if isinstance(store, (str, os.PathLike)):
        return CampaignStore(store)
    raise StoreError(
        f"cannot interpret {store!r} as a campaign store (expected a "
        "directory path or a CampaignStore)"
    )
