"""The campaign store: a content-addressed run cache with crash-safe resume.

Campaign cells are content-addressable: the configuration fingerprint, the
experiment id, the cell coordinates and the derived seed fully determine a
cell's numbers, so a cell executed once never needs to execute again.  This
package turns that property into infrastructure, in three layers:

* :mod:`repro.store.cache` — the content-addressed **cell cache**
  (:class:`CellKey` → :class:`CellEntry`) behind :class:`CampaignStore`:
  executors consult it before simulating, warm sweeps skip simulation
  entirely and still emit byte-identical records;
* :mod:`repro.store.journal` — the crash-safe **journal**: an append-only,
  fsynced JSONL write-ahead log with atomic temp-file + ``os.replace``
  commits and a recovery path that tolerates a torn final line;
* :mod:`repro.store.resume` — the **resume orchestrator**: diffs journaled
  cells against the campaign plan and re-runs only the missing ones, in
  canonical order, so resumed output is byte-identical to an uninterrupted
  run.

Entry points: ``repro.api.run/sweep(..., store=...)``, the CLI's ``--store``
plus ``repro campaign resume`` / ``repro cache stats|ls|prune``, or
programmatically::

    from repro.store import open_store

    store = open_store("runs/store")
    table = api.run("table5", scale="smoke", store=store)   # cold: executes
    table = api.run("table5", scale="smoke", store=store)   # warm: 0 runs
"""

from .cache import CampaignStore, CellEntry, CellKey, open_store
from .journal import Journal, atomic_write_text
from .resume import CellPartition, ResumeReport, partition_cells, resume_experiment

__all__ = [
    "CampaignStore",
    "CellEntry",
    "CellKey",
    "open_store",
    "Journal",
    "atomic_write_text",
    "CellPartition",
    "ResumeReport",
    "partition_cells",
    "resume_experiment",
]
