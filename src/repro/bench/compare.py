"""Diff two bench reports under configurable regression thresholds.

Two families of checks, independently gateable because they have different
portability:

* **wall gate** — a case regressed if its wall time grew by more than
  ``max_slowdown`` (default 20%) over the baseline.  Wall seconds are only
  comparable on similar hardware, so CI compares against the committed
  baseline with ``--no-wall-gate`` and proves the gate itself on a
  synthetic slowdown instead;
* **counter gate** — a case regressed if any deterministic hot-path
  counter grew by more than ``counter_tolerance`` (default 10%).  Counters
  are exact on every machine, so this gate runs everywhere and catches
  "accidentally doing more work" even when wall noise hides it.

A case present in the baseline but missing from the current report is
always a regression (a silently dropped benchmark would otherwise *pass*).
New cases and improvements are reported but never fail the gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..errors import ExperimentError
from .report import BenchReport

__all__ = ["CaseDelta", "BenchComparison", "compare_reports"]


@dataclass
class CaseDelta:
    """One case's baseline-vs-current verdict."""

    name: str
    #: ``current wall / baseline wall`` (``None`` when the case is missing
    #: on either side or the baseline wall time is zero).
    wall_ratio: float = 0.0
    wall_base_s: float = 0.0
    wall_current_s: float = 0.0
    #: ``(counter, base, current)`` for every counter past tolerance.
    counter_growth: List[Tuple[str, int, int]] = field(default_factory=list)
    #: Human-readable reasons this case regressed (empty = pass).
    regressions: List[str] = field(default_factory=list)
    missing: bool = False
    new: bool = False

    @property
    def regressed(self) -> bool:
        return bool(self.regressions)


@dataclass
class BenchComparison:
    """The full diff; ``ok`` is the gate's verdict."""

    max_slowdown: float
    counter_tolerance: float
    wall_gate: bool
    counter_gate: bool
    deltas: List[CaseDelta] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(delta.regressed for delta in self.deltas)

    def render(self) -> str:
        lines = [
            "bench compare: wall gate "
            + (f"<= +{self.max_slowdown:.0%}" if self.wall_gate else "OFF")
            + ", counter gate "
            + (f"<= +{self.counter_tolerance:.0%}" if self.counter_gate else "OFF")
        ]
        for delta in self.deltas:
            if delta.missing:
                lines.append(f"  {delta.name:<24} MISSING from current report")
                continue
            if delta.new:
                lines.append(
                    f"  {delta.name:<24} new case "
                    f"({delta.wall_current_s:.3f}s, not gated)"
                )
                continue
            change = (
                f"{delta.wall_base_s:.3f}s -> {delta.wall_current_s:.3f}s "
                f"({delta.wall_ratio:+.1%})".replace("+-", "-")
            )
            verdict = "REGRESSED" if delta.regressed else "ok"
            lines.append(f"  {delta.name:<24} {change}  {verdict}")
            for reason in delta.regressions:
                lines.append(f"    - {reason}")
        lines.append("verdict: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def compare_reports(
    baseline: BenchReport,
    current: BenchReport,
    *,
    max_slowdown: float = 0.20,
    counter_tolerance: float = 0.10,
    wall_gate: bool = True,
    counter_gate: bool = True,
) -> BenchComparison:
    """Diff ``current`` against ``baseline``; see the module docstring."""
    if max_slowdown < 0 or counter_tolerance < 0:
        raise ExperimentError("regression thresholds must be >= 0")
    if baseline.seed != current.seed:
        raise ExperimentError(
            f"bench reports disagree on seed ({baseline.seed} vs "
            f"{current.seed}) — counter comparison would be meaningless"
        )
    comparison = BenchComparison(
        max_slowdown=max_slowdown,
        counter_tolerance=counter_tolerance,
        wall_gate=wall_gate,
        counter_gate=counter_gate,
    )
    for base_case in baseline.cases:
        delta = CaseDelta(name=base_case.name)
        cur_case = current.case(base_case.name)
        if cur_case is None:
            delta.missing = True
            delta.regressions.append(
                "case missing from the current report (dropped benchmark?)"
            )
            comparison.deltas.append(delta)
            continue
        delta.wall_base_s = base_case.wall_s
        delta.wall_current_s = cur_case.wall_s
        if base_case.wall_s > 0:
            delta.wall_ratio = cur_case.wall_s / base_case.wall_s - 1.0
        if wall_gate and base_case.wall_s > 0:
            if cur_case.wall_s > base_case.wall_s * (1.0 + max_slowdown):
                delta.regressions.append(
                    f"wall time {base_case.wall_s:.3f}s -> "
                    f"{cur_case.wall_s:.3f}s exceeds the "
                    f"+{max_slowdown:.0%} budget"
                )
        if counter_gate:
            for name in sorted(base_case.counters):
                base_value = base_case.counters[name]
                cur_value = cur_case.counters.get(name, 0)
                grew = (
                    cur_value > base_value * (1.0 + counter_tolerance)
                    if base_value > 0
                    else cur_value > 0
                )
                if grew:
                    delta.counter_growth.append((name, base_value, cur_value))
                    delta.regressions.append(
                        f"counter {name}: {base_value} -> {cur_value} "
                        f"exceeds the +{counter_tolerance:.0%} budget"
                    )
        comparison.deltas.append(delta)
    for cur_case in current.cases:
        if baseline.case(cur_case.name) is None:
            comparison.deltas.append(
                CaseDelta(
                    name=cur_case.name,
                    new=True,
                    wall_current_s=cur_case.wall_s,
                )
            )
    # Output order is stable: baseline order first, new cases after — a
    # pure function of the two reports.
    return comparison
