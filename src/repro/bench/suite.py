"""Named benchmark suites.

A :class:`BenchCase` pins one registry scenario at a fixed size so a suite
measures the same simulation work on every run — the precondition for both
the exact-counter check and any meaningful wall-time comparison.  Case
names are unique within a suite and are the join key of
:func:`repro.bench.compare.compare_reports`, so renaming a case reads as
"case disappeared" against an old baseline (by design: a silent rename
would also silently reset its history).

Sizes are chosen so ``default`` finishes in a few seconds on a laptop and
``smoke`` in well under one — small enough for CI on every push, large
enough that the hot paths (calendar, processor-sharing rate updates, HTM
bookkeeping) dominate over per-campaign setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import ExperimentError

__all__ = ["BenchCase", "DEFAULT_SUITE", "SMOKE_SUITE", "SUITES", "get_suite"]


@dataclass(frozen=True)
class BenchCase:
    """One benchmark: a registry scenario at a pinned size."""

    #: Unique case name — the join key across reports.
    name: str
    #: Registry scenario to drive (``repro scenario list``).
    scenario: str
    #: Tasks per metatask.
    tasks: int
    metatasks: int = 1
    repetitions: int = 1
    #: Restrict to these heuristics (``None`` = the scenario's full set).
    heuristics: Optional[Tuple[str, ...]] = None


#: The committed-baseline suite (``benchmarks/bench-baseline.json``).
DEFAULT_SUITE: Tuple[BenchCase, ...] = (
    BenchCase(name="paper-low-rate-200", scenario="paper-low-rate", tasks=200),
    BenchCase(name="burst-storm-150", scenario="burst-storm", tasks=150),
    BenchCase(name="diurnal-week-150", scenario="diurnal-week", tasks=150),
    BenchCase(name="hetero-farm-16-150", scenario="hetero-farm-16", tasks=150),
    BenchCase(
        name="paper-low-rate-reps",
        scenario="paper-low-rate",
        tasks=60,
        repetitions=3,
    ),
)

#: A sub-second sanity suite for pre-push checks.
SMOKE_SUITE: Tuple[BenchCase, ...] = (
    BenchCase(name="paper-low-rate-40", scenario="paper-low-rate", tasks=40),
    BenchCase(name="burst-storm-40", scenario="burst-storm", tasks=40),
)

SUITES: Dict[str, Tuple[BenchCase, ...]] = {
    "default": DEFAULT_SUITE,
    "smoke": SMOKE_SUITE,
}


def get_suite(name: str) -> Tuple[BenchCase, ...]:
    """Look up a suite by name, with a helpful error for typos."""
    try:
        return SUITES[name]
    except KeyError:
        raise ExperimentError(
            f"unknown bench suite {name!r} (have: {', '.join(sorted(SUITES))})"
        ) from None
