"""Drive a bench suite through the profiling harness.

Each case runs via :func:`repro.obs.profile.profile_scenario` — the same
phase-timed campaign the ``repro profile`` family uses — and its
:class:`~repro.obs.report.PerfReport` is distilled into one
:class:`~repro.bench.report.BenchCaseResult`.  All wall numbers are
measured inside ``repro.obs``; this module only rearranges them.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..errors import ExperimentError
from .report import BenchCaseResult, BenchReport
from .suite import BenchCase

__all__ = ["run_suite"]


def run_suite(
    cases: Sequence[BenchCase],
    *,
    suite: str = "custom",
    seed: int = 2003,
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
) -> BenchReport:
    """Run every case and assemble the :class:`BenchReport`.

    ``progress`` (e.g. ``lambda s: print(s, file=sys.stderr)``) gets one
    line per case as it completes, so long suites are not silent.
    """
    from ..obs.profile import profile_scenario

    if not cases:
        raise ExperimentError("bench suite is empty — nothing to measure")
    names = [case.name for case in cases]
    if len(set(names)) != len(names):
        raise ExperimentError(f"duplicate bench case names in suite: {names}")

    report = BenchReport(suite=suite, seed=seed, jobs=jobs)
    for case in cases:
        perf = profile_scenario(
            case.scenario,
            tasks=case.tasks,
            metatasks=case.metatasks,
            repetitions=case.repetitions,
            heuristics=list(case.heuristics) if case.heuristics else None,
            seed=seed,
            jobs=jobs,
        )
        result = BenchCaseResult(
            name=case.name,
            scenario=case.scenario,
            scale=dict(perf.scale),
            wall_s=perf.wall_s_total,
            phases={name: seconds for name, seconds in perf.phases},
            tasks_simulated=perf.tasks_simulated,
            tasks_per_s=perf.tasks_per_s,
            cells=perf.cells_total,
            counters=dict(perf.counters),
        )
        report.cases.append(result)
        if progress is not None:
            progress(
                f"[bench] {case.name}: {result.wall_s:.3f}s, "
                f"{result.tasks_simulated} tasks "
                f"({result.tasks_per_s:.1f} tasks/s)"
            )
    return report
