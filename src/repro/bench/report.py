"""The ``bench-report.json`` artifact (schema ``bench-report/v1``).

One :class:`BenchCaseResult` per suite case — the interesting slice of the
case's :class:`~repro.obs.report.PerfReport` (wall seconds per phase,
deterministic counters, task throughput) — wrapped in a :class:`BenchReport`
with the suite/seed/jobs provenance needed to refuse apples-to-oranges
comparisons.  Saved atomically, loaded with a schema check, diffed by
:mod:`repro.bench.compare`.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ResultsError

__all__ = ["SCHEMA", "BenchCaseResult", "BenchReport"]

#: Schema tag of the JSON artifact (bump on incompatible layout changes).
SCHEMA = "bench-report/v1"


@dataclass
class BenchCaseResult:
    """One case's measurements."""

    name: str
    scenario: str
    scale: Dict[str, object]
    wall_s: float
    phases: Dict[str, float]
    tasks_simulated: int
    tasks_per_s: float
    cells: int
    counters: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "scenario": self.scenario,
            "scale": self.scale,
            "wall_s": round(self.wall_s, 6),
            "phases": {name: round(s, 6) for name, s in self.phases.items()},
            "tasks_simulated": self.tasks_simulated,
            "tasks_per_s": round(self.tasks_per_s, 2),
            "cells": self.cells,
            "counters": dict(self.counters),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BenchCaseResult":
        return cls(
            name=str(data["name"]),
            scenario=str(data["scenario"]),
            scale=dict(data.get("scale") or {}),
            wall_s=float(data["wall_s"]),
            phases={k: float(v) for k, v in (data.get("phases") or {}).items()},
            tasks_simulated=int(data.get("tasks_simulated", 0)),
            tasks_per_s=float(data.get("tasks_per_s", 0.0)),
            cells=int(data.get("cells", 0)),
            counters={k: int(v) for k, v in (data.get("counters") or {}).items()},
        )


@dataclass
class BenchReport:
    """One bench run: provenance plus one result per case."""

    suite: str
    seed: int
    jobs: int
    cases: List[BenchCaseResult] = field(default_factory=list)

    def case(self, name: str) -> Optional[BenchCaseResult]:
        for result in self.cases:
            if result.name == name:
                return result
        return None

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA,
            "suite": self.suite,
            "seed": self.seed,
            "jobs": self.jobs,
            "cases": [case.as_dict() for case in self.cases],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BenchReport":
        schema = data.get("schema")
        if schema != SCHEMA:
            raise ResultsError(
                f"not a bench report: schema {schema!r} (expected {SCHEMA!r})"
            )
        return cls(
            suite=str(data.get("suite", "")),
            seed=int(data.get("seed", 0)),
            jobs=int(data.get("jobs", 1)),
            cases=[BenchCaseResult.from_dict(c) for c in data.get("cases") or []],
        )

    def save_json(self, path: str) -> str:
        """Atomically write the report to ``path`` and return it."""
        directory = os.path.dirname(os.path.abspath(path)) or "."
        handle, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=".bench-report-", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8", newline="\n") as tmp:
                json.dump(self.as_dict(), tmp, indent=2, allow_nan=False)
                tmp.write("\n")
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def load_json(cls, path: str) -> "BenchReport":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError) as exc:
            raise ResultsError(f"cannot read bench report {path!r}: {exc}") from exc
        return cls.from_dict(data)

    def render(self) -> str:
        """Human-readable summary (the CLI's default output)."""
        lines = [
            f"bench report: suite {self.suite!r}, seed {self.seed}, "
            f"jobs {self.jobs} — {len(self.cases)} case(s)"
        ]
        for case in self.cases:
            lines.append(
                f"  {case.name:<24} {case.wall_s:8.3f}s  "
                f"{case.tasks_per_s:9.1f} tasks/s  "
                f"{case.tasks_simulated:>7} tasks, {case.cells} cell(s)"
            )
        return "\n".join(lines)
