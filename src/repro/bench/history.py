"""Sequence-numbered bench report archive (``repro bench history``).

Reports land as ``bench-0001.json``, ``bench-0002.json``, ... — sequence
numbers, *not* timestamps: this package may not read a wall clock
(DET-CLOCK exempts only ``repro/obs/``), and sequence numbers sort
identically everywhere anyway.  The trend view leans on the dashboard's
sparklines so a creeping slowdown is visible at a glance.
"""

from __future__ import annotations

import os
import re
from typing import Dict, List, Tuple

from ..errors import ResultsError
from ..obs.dashboard import sparkline
from .report import BenchReport

__all__ = ["history_entries", "next_history_path", "render_history"]

#: Archive filename shape; the group is the sequence number.
_HISTORY_RE = re.compile(r"^bench-(\d{4,})\.json$")


def history_entries(directory: str) -> List[Tuple[str, BenchReport]]:
    """``(path, report)`` for every archived report, in sequence order."""
    if not os.path.isdir(directory):
        raise ResultsError(f"bench history directory {directory!r} does not exist")
    entries: List[Tuple[int, str]] = []
    for name in sorted(os.listdir(directory)):
        match = _HISTORY_RE.match(name)
        if match:
            entries.append((int(match.group(1)), os.path.join(directory, name)))
    entries.sort()
    return [(path, BenchReport.load_json(path)) for _, path in entries]


def next_history_path(directory: str) -> str:
    """The next free ``bench-%04d.json`` slot (creates the directory)."""
    os.makedirs(directory, exist_ok=True)
    highest = 0
    for name in os.listdir(directory):
        match = _HISTORY_RE.match(name)
        if match:
            highest = max(highest, int(match.group(1)))
    return os.path.join(directory, f"bench-{highest + 1:04d}.json")


def render_history(entries: List[Tuple[str, BenchReport]]) -> str:
    """Per-case wall-time trend across the archive, oldest to newest."""
    if not entries:
        return "bench history: empty"
    # Case -> wall seconds per archived report, in archive order; cases keep
    # first-appearance order so the table is stable as suites evolve.
    series: Dict[str, List[float]] = {}
    for _, report in entries:
        for case in report.cases:
            series.setdefault(case.name, [])
    for _, report in entries:
        for name in series:
            case = report.case(name)
            series[name].append(case.wall_s if case is not None else 0.0)
    lines = [f"bench history: {len(entries)} report(s)"]
    for name, walls in series.items():
        present = [w for w in walls if w > 0]
        latest = present[-1] if present else 0.0
        lines.append(
            f"  {name:<24} latest {latest:8.3f}s  "
            f"{sparkline(walls, width=min(len(walls), 32))}"
        )
    lines.append(f"  (oldest {entries[0][0]} .. newest {entries[-1][0]})")
    return "\n".join(lines)
