"""Unified bench harness: ``repro bench run|compare|history``.

The regression-tracking layer on top of the profiling harness (see README
"Metrics & regression tracking"):

* :mod:`repro.bench.suite` — the named benchmark suites: each
  :class:`BenchCase` pins one registry scenario at a fixed size/seed so a
  suite measures the same work every time;
* :mod:`repro.bench.runner` — drives every case through
  :func:`repro.obs.profile.profile_scenario` (wall-clock phase timers +
  deterministic hot-path counters) into one schema'd ``bench-report.json``;
* :mod:`repro.bench.compare` — diffs two reports under configurable
  thresholds; ``repro bench compare`` exits non-zero on regression, which
  is exactly what the CI gate runs against the committed baseline;
* :mod:`repro.bench.history` — sequence-numbered report archive with a
  per-case trend view.

Determinism contract: this package never reads a wall clock itself (the
DET-CLOCK lint rule holds here — only ``repro/obs/`` may); every wall
number in a bench report was measured by the profiling harness.  Counters
are exact across machines, wall seconds are not — which is why the compare
gate can check counters strictly everywhere but wall time only against a
baseline from comparable hardware (CI runs ``--no-wall-gate`` against the
committed baseline and proves the wall gate on a synthetic slowdown).
"""

from .suite import BenchCase, DEFAULT_SUITE, SMOKE_SUITE, SUITES, get_suite
from .report import BenchCaseResult, BenchReport
from .runner import run_suite
from .compare import BenchComparison, CaseDelta, compare_reports
from .history import history_entries, next_history_path, render_history

__all__ = [
    "BenchCase",
    "DEFAULT_SUITE",
    "SMOKE_SUITE",
    "SUITES",
    "get_suite",
    "BenchCaseResult",
    "BenchReport",
    "run_suite",
    "BenchComparison",
    "CaseDelta",
    "compare_reports",
    "history_entries",
    "next_history_path",
    "render_history",
]
