"""Hot-path counter registry and per-run rollups.

The fluid core and the HTM keep plain integer attributes on their hot paths
(one ``+= 1`` next to a heap push is unmeasurable; a dict lookup per event is
not) and expose them through ``counters()`` accessors.  This module collects
those integers into flat, prefixed dictionaries:

* :func:`middleware_counters` — one run's counters, harvested from a
  :class:`~repro.platform.middleware.GridMiddleware` after ``run()``:
  ground-truth fluid-core work (``fluid.*``), the HTM's trace simulations and
  prediction-cache behaviour (``htm.*``), agent activity (``agent.*``) and
  the monitor report bus (``monitor.*``);
* :func:`merge_counters` — key-wise sum across cells, used to roll a whole
  campaign up into one ``perf-report.json`` block.

Counters are derived from simulation state only (they are deterministic per
cell), but they stay **out of** :class:`~repro.results.RunRecord` metrics
and fingerprints: they describe the *implementation's* work, not the
modelled system, and adding a counter must never move a golden table.

Everything here is duck-typed on purpose: ``repro.obs`` sits below the
platform layer in the import graph (the middleware imports *us*), so this
module must not import from :mod:`repro.platform` or :mod:`repro.core`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

__all__ = ["merge_counters", "middleware_counters", "network_counters"]


def merge_counters(counter_maps: Iterable[Mapping[str, int]]) -> Dict[str, int]:
    """Key-wise sum of counter dictionaries, keys sorted for stable output."""
    totals: Dict[str, int] = {}
    for counters in counter_maps:
        for key, value in counters.items():
            totals[key] = totals.get(key, 0) + int(value)
    return {key: totals[key] for key in sorted(totals)}


def network_counters(network) -> Dict[str, int]:
    """Counters of one :class:`~repro.simulation.fluid.FluidNetwork` (unprefixed)."""
    return network.counters()


def _prefixed(prefix: str, counters: Mapping[str, int]) -> Dict[str, int]:
    return {f"{prefix}{key}": int(value) for key, value in counters.items()}


def middleware_counters(middleware) -> Dict[str, int]:
    """Roll one finished middleware run up into a flat counter dict.

    Keys are sorted; values are plain ints, so the dict pickles cheaply from
    worker processes and serialises deterministically.
    """
    out: Dict[str, int] = {}

    # Ground-truth fluid work, summed over the servers' networks.
    out.update(
        _prefixed(
            "fluid.",
            merge_counters(
                server.network.counters() for server in middleware.servers.values()
            ),
        )
    )

    agent = middleware.agent
    stats = agent.stats
    out["agent.requests"] = stats.requests
    out["agent.mappings"] = stats.mappings
    out["agent.completion_messages"] = stats.completion_messages
    out["agent.failure_messages"] = stats.failure_messages
    out["agent.reports_received"] = stats.reports_received
    out["agent.reports_down_received"] = stats.reports_down_received
    out["agent.reports_dropped"] = stats.reports_dropped
    out["agent.dispatches_with_report"] = stats.dispatches_with_report
    out["agent.dispatches_without_report"] = stats.dispatches_without_report

    out["monitor.reports_sent"] = sum(
        monitor.reports_sent for monitor in middleware.monitors.values()
    )

    htm = agent.htm
    if htm is not None:
        out["htm.predicts"] = htm.n_predicts
        out["htm.commits"] = htm.n_commits
        hits = misses = 0
        trace_networks = []
        for server in sorted(htm.servers()):
            trace = htm.trace(server)
            hits += trace.cache_hits
            misses += trace.cache_misses
            trace_networks.append(trace.network)
        out["htm.baseline_cache_hits"] = hits
        out["htm.baseline_cache_misses"] = misses
        out.update(
            _prefixed(
                "htm.fluid.",
                merge_counters(n.counters() for n in trace_networks),
            )
        )

    return {key: out[key] for key in sorted(out)}
