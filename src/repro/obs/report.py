"""Per-campaign performance report (``perf-report.json``).

:class:`PerfReportObserver` rides the existing
:class:`~repro.results.CampaignObserver` chain (duck-typed — the campaign
engine dispatches on method signatures, so this module needs no import from
:mod:`repro.results`): the engine hands it the live
:class:`~repro.platform.middleware.RunResult` of every freshly executed cell
through the optional ``run=`` keyword, and the observer accumulates each
cell's hot-path counters.  :class:`PerfReport` then combines that rollup
with the profiling harness's wall-clock phase timers into one JSON artifact.

Contract reminder: wall-clock fields (``phases``, ``wall_s_total``,
throughput) exist *only* in this report.  Counters are deterministic, wall
times are not, and neither may reach records, traces or fingerprints.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .counters import merge_counters

__all__ = ["PerfReportObserver", "PerfReport"]

#: Schema tag of the JSON artifact (bump on incompatible layout changes).
SCHEMA = "perf-report/v1"


class PerfReportObserver:
    """Collects per-cell counters as a campaign streams.

    Attach through ``run_campaign(..., observers=[...])`` or
    ``ExperimentConfig.observers``.  Cells recovered from a campaign store
    arrive without a live run (``run=None``) and contribute no counters —
    the report's ``cells_counted`` vs ``cells_total`` split makes that
    visible instead of silently under-reporting.
    """

    def __init__(self) -> None:
        self.experiment_id: Optional[str] = None
        self.cells_total = 0
        self.cells_counted = 0
        self.cells_cached = 0
        #: ``(cell tag, counters)`` per counted cell, in planned order.
        self.per_cell: List[Tuple[str, Dict[str, int]]] = []
        self.tasks_simulated = 0
        self.truncated_cells = 0
        #: Campaign-level counters harvested at ``on_campaign_end`` — today
        #: the sequential stopping engine's ``stats.*`` family.
        self.campaign_counters: Dict[str, int] = {}

    # Campaign engine hooks (duck-typed CampaignObserver protocol). ------- #
    def on_campaign_start(self, experiment_id: str, total_cells: int) -> None:
        self.experiment_id = experiment_id
        self.cells_total += total_cells

    def on_cell_complete(
        self, index: int, total: int, record, cached: bool = False, run=None
    ) -> None:
        if getattr(record, "truncated", False):
            self.truncated_cells += 1
        if cached or run is None:
            self.cells_cached += 1
            return
        self.cells_counted += 1
        tag = (
            f"{record.heuristic}/m{record.metatask_index}/rep{record.repetition}"
        )
        self.per_cell.append((tag, dict(run.counters)))
        self.tasks_simulated += len(run.tasks)

    def on_campaign_end(self, result_set) -> None:
        """Harvest campaign-level counters off the final set's meta.

        A sequential-stopping campaign publishes its ``stats.*`` counter
        family (rounds run, cells planned, groups unresolved at stop) under
        ``meta["sequential"]["counters"]``; fixed-repetition campaigns carry
        none and this stays empty.
        """
        meta = getattr(result_set, "meta", None) or {}
        sequential = meta.get("sequential") or {}
        for key, value in (sequential.get("counters") or {}).items():
            self.campaign_counters[key] = (
                self.campaign_counters.get(key, 0) + int(value)
            )

    # Rollup. ------------------------------------------------------------- #
    def counters(self) -> Dict[str, int]:
        """Per-cell counters summed, plus campaign-level ones (sorted keys)."""
        return merge_counters(
            [counters for _, counters in self.per_cell]
            + ([self.campaign_counters] if self.campaign_counters else [])
        )


@dataclass
class PerfReport:
    """One profiling run's machine-readable performance report."""

    scenario: str
    experiment_id: str
    scale: Dict[str, object]
    #: ``(phase name, wall seconds)`` in execution order — the >= 5 named
    #: phases of the profiling harness (setup, workload-gen, simulate, ...).
    phases: List[Tuple[str, float]]
    counters: Dict[str, int]
    cells_total: int = 0
    cells_counted: int = 0
    cells_cached: int = 0
    truncated_cells: int = 0
    tasks_simulated: int = 0
    per_cell: List[Tuple[str, Dict[str, int]]] = field(default_factory=list)
    #: Top functions by cumulative time from cProfile (empty when disabled).
    profile_top: List[Dict[str, object]] = field(default_factory=list)
    jobs: int = 1

    @property
    def wall_s_total(self) -> float:
        """Total wall time across the named phases."""
        return sum(seconds for _, seconds in self.phases)

    @property
    def tasks_per_s(self) -> float:
        """End-to-end simulated-task throughput over the phase total."""
        total = self.wall_s_total
        return self.tasks_simulated / total if total > 0 else 0.0

    def as_dict(self) -> Dict[str, object]:
        """The JSON-ready report document."""
        return {
            "schema": SCHEMA,
            "scenario": self.scenario,
            "experiment_id": self.experiment_id,
            "scale": self.scale,
            "jobs": self.jobs,
            "phases": [
                {
                    "name": name,
                    "wall_s": round(seconds, 6),
                    "share": (
                        round(seconds / self.wall_s_total, 4)
                        if self.wall_s_total > 0
                        else 0.0
                    ),
                }
                for name, seconds in self.phases
            ],
            "wall_s_total": round(self.wall_s_total, 6),
            "cells": {
                "total": self.cells_total,
                "counted": self.cells_counted,
                "cached": self.cells_cached,
                "truncated": self.truncated_cells,
            },
            "throughput": {
                "tasks_simulated": self.tasks_simulated,
                "tasks_per_s": round(self.tasks_per_s, 2),
            },
            "counters": self.counters,
            "per_cell": [
                {"cell": tag, "counters": counters}
                for tag, counters in self.per_cell
            ],
            "profile_top": self.profile_top,
        }

    def save_json(self, path: str) -> str:
        """Atomically write the report to ``path`` and return it."""
        directory = os.path.dirname(os.path.abspath(path)) or "."
        handle, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=".perf-report-", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8", newline="\n") as tmp:
                json.dump(self.as_dict(), tmp, indent=2, allow_nan=False)
                tmp.write("\n")
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return path

    def render(self) -> str:
        """Human-readable summary (the CLI's default output)."""
        lines = [
            f"perf report: {self.scenario} ({self.experiment_id})",
            f"  cells: {self.cells_total} total, {self.cells_counted} simulated, "
            f"{self.cells_cached} cached"
            + (f", {self.truncated_cells} TRUNCATED" if self.truncated_cells else ""),
            f"  tasks simulated: {self.tasks_simulated} "
            f"({self.tasks_per_s:.1f} tasks/s end to end)",
            "  phases:",
        ]
        total = self.wall_s_total
        for name, seconds in self.phases:
            share = f"{100.0 * seconds / total:5.1f}%" if total > 0 else "    -"
            lines.append(f"    {name:<14} {seconds:9.3f}s  {share}")
        lines.append(f"    {'total':<14} {total:9.3f}s")
        if self.counters:
            lines.append("  counters:")
            for key, value in self.counters.items():
                lines.append(f"    {key:<32} {value}")
        if self.profile_top:
            lines.append("  hottest functions (cumulative):")
            for entry in self.profile_top[:10]:
                lines.append(
                    f"    {entry['cumtime_s']:9.3f}s  {entry['ncalls']:>10}  "
                    f"{entry['func']}"
                )
        return "\n".join(lines)
