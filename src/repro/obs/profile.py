"""The profiling harness: ``repro profile run|trace``.

Wraps any registry scenario in wall-clock phase timers (and optionally
``cProfile``) at a configurable size, producing the :class:`PerfReport`
behind ``perf-report.json`` — the artifact that anchors every optimisation
claim on the road to million-task runs.  ``trace_scenario`` runs the same
campaign with the virtual-time trace bus enabled and writes the JSONL trace
plus its Chrome ``trace_event`` export.

The harness is the *only* place wall time and simulation meet, and it keeps
them apart by construction: phases are timed around the campaign from the
outside, the trace inside carries virtual time only.  A traced run's records
and trace bytes are identical at any ``--jobs`` level; only the numbers in
the perf report (wall seconds, tasks/s) vary run to run.

This module imports the scenario and campaign layers, so it is *not*
re-exported from ``repro.obs`` eagerly — import it as ``repro.obs.profile``
(the :mod:`repro.api` facade and the CLI defer-import it the same way the
validation suite is).
"""

from __future__ import annotations

import cProfile
import pstats
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ExperimentError
from .report import PerfReport, PerfReportObserver
from .trace import CellTrace, write_trace_jsonl
from .chrome import write_chrome_trace
from .metrics import (
    CellMetrics,
    write_metrics_csv,
    write_metrics_jsonl,
)
from .wallclock import PhaseTimer

__all__ = [
    "profile_scenario",
    "trace_scenario",
    "metrics_scenario",
    "TraceRunResult",
    "MetricsRunResult",
]


def _campaign_pieces(
    name: str,
    tasks: Optional[int],
    metatasks: Optional[int],
    repetitions: Optional[int],
    heuristics: Optional[Sequence[str]],
    seed: int,
    jobs: int,
):
    """Materialise one scenario at the harness's (possibly overridden) size."""
    # Deferred: this is the heavy end of the import graph (scenarios ->
    # campaign -> platform), and the platform layer imports repro.obs.
    from ..experiments.config import ExperimentConfig, SMOKE_SCALE
    from ..scenarios.scenario import (
        build_scenario_metatasks,
        get_scenario,
        scenario_config,
    )

    scenario = get_scenario(name)
    scale = SMOKE_SCALE
    scale = replace(
        scale,
        name="profile",
        task_count=int(tasks) if tasks is not None else scale.task_count,
        metatask_count=int(metatasks) if metatasks is not None else 1,
        repetitions=int(repetitions) if repetitions is not None else 1,
    )
    if scale.task_count < 1 or scale.metatask_count < 1 or scale.repetitions < 1:
        raise ExperimentError("tasks, metatasks and repetitions must be >= 1")
    config = ExperimentConfig(scale=scale, seed=seed, jobs=jobs)
    effective = scenario_config(scenario, config)
    if heuristics:
        unknown = [h for h in heuristics if h not in scenario.heuristics]
        if unknown:
            raise ExperimentError(
                f"heuristics {unknown} are not part of scenario {name!r} "
                f"(has {list(scenario.heuristics)})"
            )
        reference = (
            scenario.reference
            if scenario.reference in heuristics
            else list(heuristics)[0]
        )
        effective = replace(
            effective, heuristics=tuple(heuristics), reference=reference
        )
    return scenario, effective


def _profile_top(profiler: cProfile.Profile, top: int) -> List[Dict[str, object]]:
    """Top-``top`` functions by cumulative time, deterministically ordered."""
    stats = pstats.Stats(profiler)
    entries = []
    for func, (cc, nc, tt, ct, _callers) in stats.stats.items():
        filename, line, name = func
        entries.append(
            {
                "func": f"{filename}:{line}({name})",
                "ncalls": int(nc),
                "tottime_s": round(tt, 6),
                "cumtime_s": round(ct, 6),
            }
        )
    entries.sort(key=lambda e: (-e["cumtime_s"], e["func"]))
    return entries[:top]


def profile_scenario(
    name: str,
    *,
    tasks: Optional[int] = None,
    metatasks: Optional[int] = None,
    repetitions: Optional[int] = None,
    heuristics: Optional[Sequence[str]] = None,
    seed: int = 2003,
    jobs: int = 1,
    profile: bool = False,
    top: int = 20,
) -> PerfReport:
    """Run one scenario under phase timers and return its :class:`PerfReport`.

    ``tasks`` overrides the per-metatask task count (the knob behind
    ``repro profile run <scenario> --tasks N``); ``metatasks`` and
    ``repetitions`` default to 1 so the harness profiles one representative
    cell per heuristic.  ``profile=True`` additionally wraps the simulate
    phase in ``cProfile`` (forced off when ``jobs > 1`` — a parent-process
    profile of a worker pool would time pickling, not simulation).
    """
    from ..experiments.campaign import run_campaign

    timer = PhaseTimer()
    with timer.phase("setup"):
        scenario, effective = _campaign_pieces(
            name, tasks, metatasks, repetitions, heuristics, seed, jobs
        )
        platform = scenario.platform_factory()
    with timer.phase("workload-gen"):
        from ..scenarios.scenario import build_scenario_metatasks

        workload = build_scenario_metatasks(scenario, effective)

    observer = PerfReportObserver()
    profiler: Optional[cProfile.Profile] = None
    if profile and jobs <= 1:
        profiler = cProfile.Profile()
    with timer.phase("simulate"):
        if profiler is not None:
            profiler.enable()
        try:
            table = run_campaign(
                experiment_id=f"scenario-{scenario.name}",
                title=f"profile {scenario.name}",
                platform=platform,
                metatasks=workload,
                config=effective,
                jobs=jobs,
                observers=[observer],
            )
        finally:
            if profiler is not None:
                profiler.disable()
    with timer.phase("aggregate"):
        # Re-derive the table from the records: the same pivot/render work the
        # campaign does, measured in isolation.
        table.result_set.pivot().render()
    with timer.phase("report"):
        counters = observer.counters()
        profile_top = _profile_top(profiler, top) if profiler is not None else []

    return PerfReport(
        scenario=scenario.name,
        experiment_id=f"scenario-{scenario.name}",
        scale={
            "tasks_per_metatask": effective.scale.task_count,
            "metatasks": effective.scale.metatask_count,
            "repetitions": effective.scale.repetitions,
            "heuristics": list(effective.heuristics),
            "seed": seed,
        },
        phases=timer.items(),
        counters=counters,
        cells_total=observer.cells_total,
        cells_counted=observer.cells_counted,
        cells_cached=observer.cells_cached,
        truncated_cells=observer.truncated_cells,
        tasks_simulated=observer.tasks_simulated,
        per_cell=observer.per_cell,
        profile_top=profile_top,
        jobs=jobs,
    )


@dataclass
class TraceRunResult:
    """What a ``repro profile trace`` run produced."""

    scenario: str
    trace_path: str
    chrome_path: Optional[str]
    cells: int
    events: int
    lines: int
    dropped: int

    def render(self) -> str:
        parts = [
            f"trace: {self.scenario} — {self.events} event(s) from "
            f"{self.cells} cell(s)",
            f"  jsonl:  {self.trace_path} ({self.lines} lines)",
        ]
        if self.chrome_path:
            parts.append(
                f"  chrome: {self.chrome_path} (open in chrome://tracing or "
                "ui.perfetto.dev)"
            )
        if self.dropped:
            parts.append(
                f"  WARNING: ring limit dropped {self.dropped} event(s); "
                "raise --limit for a complete trace"
            )
        return "\n".join(parts)


def trace_scenario(
    name: str,
    *,
    out: str,
    chrome_out: Optional[str] = None,
    tasks: Optional[int] = None,
    metatasks: Optional[int] = None,
    repetitions: Optional[int] = None,
    heuristics: Optional[Sequence[str]] = None,
    seed: int = 2003,
    jobs: int = 1,
    limit: Optional[int] = None,
) -> TraceRunResult:
    """Run one scenario with the trace bus on and write the trace files.

    The JSONL trace at ``out`` is a deterministic function of the campaign
    plan: byte-identical at any ``jobs`` level.  ``chrome_out`` additionally
    writes the Chrome ``trace_event`` export.  ``limit`` bounds the per-cell
    event ring (``None`` keeps everything).
    """
    from ..experiments.campaign import run_campaign

    scenario, effective = _campaign_pieces(
        name, tasks, metatasks, repetitions, heuristics, seed, jobs
    )
    from ..scenarios.scenario import build_scenario_metatasks

    workload = build_scenario_metatasks(scenario, effective)
    table = run_campaign(
        experiment_id=f"scenario-{scenario.name}",
        title=f"trace {scenario.name}",
        platform=scenario.platform_factory(),
        metatasks=workload,
        config=effective,
        jobs=jobs,
        trace=True,
        trace_limit=limit,
    )
    traces: List[CellTrace] = list(table.traces)
    lines = write_trace_jsonl(out, traces)
    events = sum(len(cell.events) for cell in traces)
    dropped = sum(cell.dropped for cell in traces)
    chrome_path = None
    if chrome_out:
        write_chrome_trace(chrome_out, traces)
        chrome_path = chrome_out
    return TraceRunResult(
        scenario=scenario.name,
        trace_path=out,
        chrome_path=chrome_path,
        cells=len(traces),
        events=events,
        lines=lines,
        dropped=dropped,
    )


@dataclass
class MetricsRunResult:
    """What a ``repro metrics record`` run produced."""

    scenario: str
    out: str
    csv_path: Optional[str]
    chrome_path: Optional[str]
    cells: int
    samples: int

    def render(self) -> str:
        parts = [
            f"metrics: {self.scenario} — {self.samples} sample(s) from "
            f"{self.cells} cell(s)",
            f"  jsonl:  {self.out}",
        ]
        if self.csv_path:
            parts.append(f"  csv:    {self.csv_path}")
        if self.chrome_path:
            parts.append(
                f"  chrome: {self.chrome_path} (open in chrome://tracing or "
                "ui.perfetto.dev)"
            )
        parts.append(
            "  inspect with: repro metrics show " + self.out
        )
        return "\n".join(parts)


def metrics_scenario(
    name: str,
    *,
    out: str,
    csv_out: Optional[str] = None,
    chrome_out: Optional[str] = None,
    tasks: Optional[int] = None,
    metatasks: Optional[int] = None,
    repetitions: Optional[int] = None,
    heuristics: Optional[Sequence[str]] = None,
    seed: int = 2003,
    jobs: int = 1,
    interval: Optional[float] = None,
    window: Optional[float] = None,
) -> MetricsRunResult:
    """Run one scenario with the metrics sampler on and write the series.

    The JSONL at ``out`` is a deterministic function of the campaign plan —
    sampling reads virtual time and simulation state only, so the file is
    byte-identical at any ``jobs`` level (the CI metrics-smoke job diffs
    exactly that).  ``csv_out`` adds a long-format CSV for spreadsheet
    tooling; ``chrome_out`` writes a Chrome ``trace_event`` export carrying
    the samples as counter tracks.  ``interval``/``window`` are virtual
    seconds (``None`` takes the sampler defaults).
    """
    from ..experiments.campaign import run_campaign
    from .metrics import DEFAULT_INTERVAL_S

    scenario, effective = _campaign_pieces(
        name, tasks, metatasks, repetitions, heuristics, seed, jobs
    )
    from ..scenarios.scenario import build_scenario_metatasks

    workload = build_scenario_metatasks(scenario, effective)
    table = run_campaign(
        experiment_id=f"scenario-{scenario.name}",
        title=f"metrics {scenario.name}",
        platform=scenario.platform_factory(),
        metatasks=workload,
        config=effective,
        jobs=jobs,
        metrics_interval=DEFAULT_INTERVAL_S if interval is None else interval,
        metrics_window=window,
    )
    cells: List[CellMetrics] = list(table.metrics)
    samples = write_metrics_jsonl(out, cells)
    csv_path = None
    if csv_out:
        write_metrics_csv(csv_out, cells)
        csv_path = csv_out
    chrome_path = None
    if chrome_out:
        write_chrome_trace(chrome_out, [], cell_metrics=cells)
        chrome_path = chrome_out
    return MetricsRunResult(
        scenario=scenario.name,
        out=out,
        csv_path=csv_path,
        chrome_path=chrome_path,
        cells=len(cells),
        samples=samples,
    )
