"""Virtual-time metric time-series.

Where the trace bus (:mod:`repro.obs.trace`) records *events*, this module
records *state over time*: a :class:`MetricsSampler` is attached to one
middleware run and, at a fixed virtual-time interval, the middleware hands it
one row of gauges — queue depth and utilization per server, in-flight tasks,
cumulative completions and failures, report staleness, sliding-window
throughput and latency, the HTM's tracked backlog.  Rows accumulate in a
columnar :class:`MetricSeries`; the campaign engine tags each run's series
with its cell coordinates (:class:`CellMetrics`) exactly like cell traces.

The two contracts of the trace bus carry over unchanged:

* **zero overhead when off** — hook sites hold an ``Optional[MetricsSampler]``
  and guard with ``if sampler is not None``; a run without a sampler schedules
  no sampling events and executes nothing beyond that check;
* **determinism** — samples are taken at virtual times and read simulation
  state only (the sampling callbacks never mutate it), so a sampled campaign's
  records *and* its metrics file are byte-identical at any ``--jobs`` level,
  and a sampled run's records equal an unsampled run's.

Serialisation is versioned JSONL (one header line, then one compact object
per sample, cells in planned order) and CSV; both use ``json`` float text, so
the byte-identity tests can diff the files directly.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "MetricSeries",
    "MetricsSampler",
    "CellMetrics",
    "SeriesView",
    "sample_line",
    "write_metrics_jsonl",
    "read_metrics_jsonl",
    "write_metrics_csv",
    "views_from_rows",
]

#: Schema tag of the JSONL header line (bump on incompatible layout changes).
SCHEMA = "metrics/v1"

#: Default sampling interval (virtual seconds) when none is requested.
DEFAULT_INTERVAL_S = 60.0

#: Sliding window width as a multiple of the sampling interval.
DEFAULT_WINDOW_INTERVALS = 5.0


class MetricSeries:
    """Columnar store of one run's fixed-interval samples.

    The column set is fixed by the first appended row (the middleware builds
    every row from the same platform state, so all rows agree); values are
    stored one list per column, which keeps a million-sample series compact
    and makes per-column reads (sparklines, SVG paths) allocation-free.
    """

    __slots__ = ("times", "_columns")

    def __init__(self, columns: Optional[Sequence[str]] = None):
        self.times: List[float] = []
        self._columns: Dict[str, List[float]] = (
            {name: [] for name in columns} if columns is not None else {}
        )

    @property
    def columns(self) -> Tuple[str, ...]:
        """Column names, in append order (deterministic call-site order)."""
        return tuple(self._columns)

    def append(self, t: float, values: Mapping[str, float]) -> None:
        """Append one sample row at virtual time ``t``."""
        if not self._columns:
            self._columns = {name: [] for name in values}
        elif set(values) != set(self._columns):
            raise ValueError(
                f"sample columns {sorted(values)} do not match the series "
                f"columns {sorted(self._columns)}"
            )
        self.times.append(float(t))
        for name, store in self._columns.items():
            store.append(float(values[name]))

    def column(self, name: str) -> List[float]:
        """Values of one column, in sample order."""
        return self._columns[name]

    def __len__(self) -> int:
        return len(self.times)

    def __repr__(self) -> str:
        return f"<MetricSeries samples={len(self.times)} columns={len(self._columns)}>"

    # Explicit state methods: __slots__ classes have no __dict__ for the
    # default pickle path, and worker processes ship series back whole.
    def __getstate__(self):
        return (self.times, self._columns)

    def __setstate__(self, state) -> None:
        self.times, self._columns = state


class MetricsSampler:
    """Fixed-interval sampler attached to one middleware run.

    The middleware drives it: a self-rescheduling virtual-time process calls
    :meth:`record` with a fully built row every ``interval`` seconds, and the
    completion hook feeds :meth:`note_completion` so the sampler can answer
    sliding-window throughput / latency questions at sample time.  The
    sampler never touches simulation state — it is a pure consumer, which is
    what keeps sampled and unsampled runs number-identical.
    """

    __slots__ = ("interval", "window", "series", "_completions")

    def __init__(self, interval: float = DEFAULT_INTERVAL_S, window: Optional[float] = None):
        if interval <= 0:
            raise ValueError("interval must be > 0")
        self.interval = float(interval)
        self.window = (
            float(window) if window is not None else DEFAULT_WINDOW_INTERVALS * self.interval
        )
        if self.window <= 0:
            raise ValueError("window must be > 0")
        self.series = MetricSeries()
        #: ``(completion time, latency)`` of recent completions, pruned to
        #: the sliding window as samples are taken.
        self._completions: Deque[Tuple[float, float]] = deque()

    def note_completion(self, t: float, latency: float) -> None:
        """Record one task completion at virtual time ``t``."""
        self._completions.append((float(t), float(latency)))

    def window_stats(self, now: float) -> Tuple[float, float]:
        """``(throughput, mean latency)`` over the window ending at ``now``.

        Throughput is completions per virtual second; the mean latency is
        0.0 when the window holds no completion (the honest "no signal"
        encoding — JSON has no NaN under ``allow_nan=False``).
        """
        floor = now - self.window
        completions = self._completions
        while completions and completions[0][0] <= floor:
            completions.popleft()
        if not completions:
            return 0.0, 0.0
        total = 0.0
        for _, latency in completions:
            total += latency
        return len(completions) / self.window, total / len(completions)

    def record(self, t: float, values: Mapping[str, float]) -> None:
        """Append one sample row (delegates to the series)."""
        self.series.append(t, values)

    def __repr__(self) -> str:
        return (
            f"<MetricsSampler interval={self.interval} window={self.window} "
            f"samples={len(self.series)}>"
        )


@dataclass(frozen=True)
class CellMetrics:
    """One campaign cell's metric series, tagged with its coordinates.

    Like :class:`~repro.obs.trace.CellTrace`, the coordinates — never an
    execution-order artefact — identify the cell, so a campaign metrics file
    is a pure function of the plan.  A cell recovered from a campaign store
    never re-simulates and contributes an *empty* series (zero sample rows),
    keeping the file an honest account of this run.
    """

    heuristic: str
    metatask_index: int
    repetition: int
    times: Tuple[float, ...] = ()
    columns: Tuple[str, ...] = ()
    #: One value tuple per column, aligned with ``columns``.
    values: Tuple[Tuple[float, ...], ...] = ()

    @classmethod
    def from_series(
        cls,
        heuristic: str,
        metatask_index: int,
        repetition: int,
        series: Optional[MetricSeries],
    ) -> "CellMetrics":
        """Freeze one run's series under the cell's coordinates."""
        if series is None or len(series) == 0:
            return cls(heuristic, metatask_index, repetition)
        columns = series.columns
        return cls(
            heuristic=heuristic,
            metatask_index=metatask_index,
            repetition=repetition,
            times=tuple(series.times),
            columns=columns,
            values=tuple(tuple(series.column(name)) for name in columns),
        )

    @property
    def cell_id(self) -> str:
        """Human-readable coordinate tag (``"mct/m0/rep1"``)."""
        return f"{self.heuristic}/m{self.metatask_index}/rep{self.repetition}"

    def column(self, name: str) -> Tuple[float, ...]:
        """Values of one column, in sample order."""
        try:
            index = self.columns.index(name)
        except ValueError:
            # repro: allow[EXC-BARE] mapping-protocol lookup: callers rely on
            # KeyError semantics like MetricSeries.column
            raise KeyError(name) from None
        return self.values[index]

    def view(self) -> "SeriesView":
        """The cell as a renderer-facing :class:`SeriesView`."""
        return SeriesView(
            label=self.cell_id,
            times=self.times,
            columns={name: values for name, values in zip(self.columns, self.values)},
        )


@dataclass(frozen=True)
class SeriesView:
    """Renderer-facing series: a label, times and ordered columns.

    The dashboard (:mod:`repro.obs.dashboard`) renders these, whether they
    came from a live campaign (:meth:`CellMetrics.view`) or from a loaded
    JSONL file (:func:`views_from_rows`) — one shape for both worlds.
    """

    label: str
    times: Tuple[float, ...]
    columns: Mapping[str, Tuple[float, ...]]


def sample_line(cell_id: str, t: float, columns: Sequence[str], row: Sequence[float]) -> str:
    """Serialise one sample to its canonical JSONL line (no newline)."""
    payload: Dict[str, object] = {"cell": cell_id, "t": t}
    for name, value in zip(columns, row):
        payload[name] = value
    return json.dumps(payload, separators=(",", ":"), allow_nan=False)


def write_metrics_jsonl(path: str, cell_metrics: Iterable[CellMetrics]) -> int:
    """Write a campaign's metrics as JSON Lines; returns the sample count.

    The first line is a versioned header; then one line per sample, cells in
    the given (planned) order.  The bytes are a deterministic function of the
    cell series, which is what the ``--jobs`` byte-identity check diffs.
    """
    cells = list(cell_metrics)
    samples = 0
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        header = {"schema": SCHEMA, "cells": len(cells)}
        handle.write(json.dumps(header, separators=(",", ":"), allow_nan=False))
        handle.write("\n")
        for cell in cells:
            rows_by_time = zip(*cell.values) if cell.values else ()
            for t, row in zip(cell.times, rows_by_time):
                handle.write(sample_line(cell.cell_id, t, cell.columns, row))
                handle.write("\n")
                samples += 1
    return samples


def read_metrics_jsonl(path: str) -> Tuple[Dict[str, object], List[Dict[str, object]]]:
    """Load a metrics file back as ``(header, sample rows)``."""
    from ..errors import ResultsError

    with open(path, "r", encoding="utf-8") as handle:
        lines = [line.strip() for line in handle if line.strip()]
    if not lines:
        raise ResultsError(f"metrics file {path!r} is empty")
    header = json.loads(lines[0])
    schema = header.get("schema") if isinstance(header, dict) else None
    if schema != SCHEMA:
        raise ResultsError(
            f"metrics file {path!r} has schema {schema!r}; this build reads {SCHEMA!r}"
        )
    return header, [json.loads(line) for line in lines[1:]]


def views_from_rows(
    rows: Iterable[Mapping[str, object]], prefix: str = ""
) -> List[SeriesView]:
    """Group loaded sample rows back into per-cell :class:`SeriesView` objects.

    Cells keep their file order; ``prefix`` tags every label (the comparison
    renderer prefixes each input file's name so same-named cells from two
    runs stay distinguishable).
    """
    order: List[str] = []
    times: Dict[str, List[float]] = {}
    columns: Dict[str, Dict[str, List[float]]] = {}
    for row in rows:
        cell = str(row.get("cell", "?"))
        if cell not in times:
            order.append(cell)
            times[cell] = []
            columns[cell] = {}
        times[cell].append(float(row["t"]))
        for name, value in row.items():
            if name in ("cell", "t"):
                continue
            columns[cell].setdefault(name, []).append(float(value))
    return [
        SeriesView(
            label=f"{prefix}{cell}",
            times=tuple(times[cell]),
            columns={name: tuple(values) for name, values in columns[cell].items()},
        )
        for cell in order
    ]


def write_metrics_csv(path: str, cell_metrics: Iterable[CellMetrics]) -> int:
    """Write a campaign's metrics as CSV; returns the sample count.

    Header: ``cell,t`` then the union of the cells' columns in first-seen
    order; cells whose series lacks a column leave the field empty.  Float
    text is ``json`` repr, byte-identical to the JSONL export's values.
    """
    cells = list(cell_metrics)
    all_columns: List[str] = []
    for cell in cells:
        for name in cell.columns:
            if name not in all_columns:
                all_columns.append(name)
    samples = 0
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        handle.write(",".join(["cell", "t"] + all_columns))
        handle.write("\n")
        for cell in cells:
            have = set(cell.columns)
            rows_by_time = zip(*cell.values) if cell.values else ()
            for t, row in zip(cell.times, rows_by_time):
                by_name = dict(zip(cell.columns, row))
                fields = [cell.cell_id, json.dumps(t, allow_nan=False)]
                fields.extend(
                    json.dumps(by_name[name], allow_nan=False) if name in have else ""
                    for name in all_columns
                )
                handle.write(",".join(fields))
                handle.write("\n")
                samples += 1
    return samples
