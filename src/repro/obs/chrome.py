"""Chrome ``trace_event`` exporter.

Converts a campaign trace (a sequence of :class:`~repro.obs.trace.CellTrace`
records) into the Chrome Trace Event JSON format, so a run opens directly in
``chrome://tracing`` or https://ui.perfetto.dev:

* each campaign **cell** becomes one *process* (pid), labelled with its
  coordinates (``"mct m0 rep0"``) through a ``process_name`` metadata event;
* within a cell, events land on one *thread* (tid) per actor — the server
  named in the event's payload, or the ``agent`` lane for dispatch/monitor/
  HTM traffic — labelled through ``thread_name`` metadata events;
* every trace event becomes an instant event (``"ph": "i"``) at
  ``ts = virtual seconds x 1e6`` (the format counts microseconds) with the
  full payload under ``args``;
* metric samples (:class:`~repro.obs.metrics.CellMetrics`) become counter
  events (``"ph": "C"``): one track per metric family (``queue``, ``util``,
  ``inflight``, ...), with per-server series as that track's ``args`` — the
  stacked counter lanes render alongside the event slices of the same cell.

The export is a pure function of the trace: pids are cell positions in
planned order, tids are assigned over the sorted set of actor names, so the
JSON is byte-identical whenever the trace is — the schema golden test pins
exactly that.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .metrics import CellMetrics
from .trace import CellTrace, TraceEvent

__all__ = ["chrome_trace", "write_chrome_trace"]

#: Payload keys that name the actor an event belongs to, in priority order.
_ACTOR_KEYS = ("server",)

#: The lane for events not tied to one server (dispatch decisions, monitor
#: deliveries carry a server field and land on that server's lane instead).
_AGENT_LANE = "agent"


def _actor(event: TraceEvent) -> str:
    data = dict(event.data)
    for key in _ACTOR_KEYS:
        value = data.get(key)
        if isinstance(value, str) and value:
            return value
    return _AGENT_LANE


def _counter_events(cell: CellMetrics, pid: int) -> List[Dict[str, object]]:
    """Chrome ``"C"`` counter events of one cell's metric samples.

    Columns group into families on the first dot — ``queue.big0`` lands on
    the ``queue`` track with args key ``big0``, a scalar column like
    ``inflight`` becomes its own track with args key ``value`` — so a family
    renders as one stacked counter lane per cell.  Families and their series
    are emitted sorted: the export stays a pure function of the samples.
    """
    families: Dict[str, List[Tuple[str, int]]] = {}
    for index, column in enumerate(cell.columns):
        family, _, series = column.partition(".")
        families.setdefault(family, []).append((series or "value", index))
    events: List[Dict[str, object]] = []
    for i, t in enumerate(cell.times):
        for family in sorted(families):
            events.append(
                {
                    "name": family,
                    "ph": "C",
                    "ts": t * 1e6,
                    "pid": pid,
                    "tid": 0,
                    "args": {
                        series: cell.values[index][i]
                        for series, index in sorted(families[family])
                    },
                }
            )
    return events


def chrome_trace(
    cell_traces: Sequence[CellTrace],
    cell_metrics: Optional[Sequence[CellMetrics]] = None,
) -> Dict[str, object]:
    """Build the Chrome Trace Event JSON object for a campaign trace.

    ``cell_metrics`` adds counter tracks: a metrics cell whose coordinates
    match a traced cell shares that cell's pid (counters render under the
    same process as its slices); unmatched metrics cells get fresh pids with
    their own ``process_name`` metadata.
    """
    trace_events: List[Dict[str, object]] = []
    pids: Dict[Tuple[str, int, int], int] = {}

    def register(heuristic: str, metatask_index: int, repetition: int) -> int:
        pid = len(pids) + 1
        pids[(heuristic, metatask_index, repetition)] = pid
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"{heuristic} m{metatask_index} rep{repetition}"},
            }
        )
        return pid

    for cell in cell_traces:
        pid = register(cell.heuristic, cell.metatask_index, cell.repetition)
        actors = sorted({_actor(event) for event in cell.events} | {_AGENT_LANE})
        tids = {name: tid for tid, name in enumerate(actors, start=1)}
        for name, tid in sorted(tids.items(), key=lambda item: item[1]):
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": name},
                }
            )
        for event in cell.events:
            trace_events.append(
                {
                    "name": event.kind,
                    "cat": event.kind.split(".", 1)[0],
                    "ph": "i",
                    "s": "t",  # instant scoped to its thread lane
                    "ts": event.t * 1e6,
                    "pid": pid,
                    "tid": tids[_actor(event)],
                    "args": dict(event.data),
                }
            )
    for cell in cell_metrics or ():
        key = (cell.heuristic, cell.metatask_index, cell.repetition)
        pid = pids.get(key)
        if pid is None:
            pid = register(*key)
        trace_events.extend(_counter_events(cell, pid))
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "virtual",
            "note": "ts is simulated time in microseconds, not wall time",
        },
    }


def write_chrome_trace(
    path: str,
    cell_traces: Sequence[CellTrace],
    cell_metrics: Optional[Sequence[CellMetrics]] = None,
) -> int:
    """Write the Chrome trace JSON for ``cell_traces``; returns the event count."""
    document = chrome_trace(cell_traces, cell_metrics)
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        json.dump(document, handle, separators=(",", ":"), allow_nan=False)
        handle.write("\n")
    return len(document["traceEvents"])
