"""Virtual-time structured trace bus.

A :class:`Tracer` collects typed :class:`TraceEvent` records from hook sites
in the middleware, the agent, the HTM and the campaign engine.  The bus is
built around two contracts:

* **zero overhead when off** — hook sites hold an ``Optional[Tracer]`` and
  guard every emission with ``if tracer is not None``; a run without a tracer
  executes not a single extra bytecode beyond that check, so tracing can ship
  enabled-by-flag in the hot path without moving the benchmarks;
* **determinism** — every event is stamped with *virtual* (simulated) time
  and payload values derived from the simulation state only.  No wall clocks,
  no object ids, no pids: a traced run serialises byte-identically at any
  ``--jobs`` level and across campaign-store temperatures.  Wall-clock
  measurements belong in :mod:`repro.obs.wallclock` / the profile report.

Events serialise to JSON Lines (one compact object per line, insertion-order
keys) via :func:`event_line` / :func:`write_trace_jsonl`; the Chrome
``trace_event`` exporter over the same records lives in
:mod:`repro.obs.chrome`.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "TraceEvent",
    "Tracer",
    "CellTrace",
    "event_line",
    "write_trace_jsonl",
    "read_trace_jsonl",
]


@dataclass(frozen=True)
class TraceEvent:
    """One structured event on the bus.

    ``t`` is the *virtual* time of the event (seconds on the simulation
    clock), ``kind`` a dotted event type (``"task.dispatch"``,
    ``"htm.predict"``, ``"fault.outage.begin"``, ...), and ``data`` the typed
    payload as ``(key, value)`` pairs — a tuple, not a dict, so the record is
    hashable, immutable and cheaply picklable when a worker process ships its
    cell trace back to the campaign assembler.
    """

    t: float
    kind: str
    data: Tuple[Tuple[str, object], ...] = ()

    def as_dict(self) -> Dict[str, object]:
        """The event as one flat JSON-ready mapping (``t`` and ``kind`` first)."""
        out: Dict[str, object] = {"t": self.t, "kind": self.kind}
        out.update(self.data)
        return out


class Tracer:
    """Bounded collector of :class:`TraceEvent` records.

    ``limit`` bounds memory on million-task runs: the tracer keeps the most
    recent ``limit`` events as a ring and counts what it dropped
    (:attr:`dropped`), so a runaway trace degrades gracefully instead of
    eating the heap.  ``limit=None`` (the default) keeps everything.
    """

    __slots__ = ("_events", "limit", "dropped")

    def __init__(self, limit: Optional[int] = None):
        if limit is not None and limit < 1:
            raise ValueError("limit must be >= 1 (or None for unbounded)")
        self.limit = limit
        self.dropped = 0
        self._events: Deque[TraceEvent] = deque(maxlen=limit)

    def emit(self, t: float, kind: str, **data: object) -> None:
        """Record one event at virtual time ``t``.

        Keyword order is preserved into the serialised payload, so hook sites
        control their field order (deterministically — it is call-site code,
        not hash order).
        """
        if self.limit is not None and len(self._events) == self.limit:
            self.dropped += 1
        self._events.append(TraceEvent(float(t), kind, tuple(data.items())))

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> Tuple[TraceEvent, ...]:
        """The collected events, in emission order."""
        return tuple(self._events)

    def __repr__(self) -> str:
        return f"<Tracer events={len(self._events)} dropped={self.dropped}>"


@dataclass(frozen=True)
class CellTrace:
    """The trace of one campaign cell, tagged with its coordinates.

    The coordinates — not any execution-order artefact — identify the cell,
    which is what makes a campaign trace file a pure function of the plan:
    cells are serialised in planned order whatever executor ran them.
    """

    heuristic: str
    metatask_index: int
    repetition: int
    events: Tuple[TraceEvent, ...] = ()
    #: Events dropped by the tracer's ring limit during this cell's run.
    dropped: int = 0

    @property
    def cell_id(self) -> str:
        """Human-readable coordinate tag (``"mct/m0/rep1"``)."""
        return f"{self.heuristic}/m{self.metatask_index}/rep{self.repetition}"


def event_line(event: TraceEvent, cell: Optional[CellTrace] = None) -> str:
    """Serialise one event to its canonical JSONL line (no newline).

    ``json.dumps`` with ``repr``-exact floats and compact separators: the
    line is a deterministic function of the event (and the cell coordinates
    when given), which is what the byte-identity tests diff.
    """
    payload: Dict[str, object] = {}
    if cell is not None:
        payload["cell"] = cell.cell_id
    payload.update(event.as_dict())
    return json.dumps(payload, separators=(",", ":"), allow_nan=False)


def write_trace_jsonl(path: str, cell_traces: Iterable[CellTrace]) -> int:
    """Write a campaign trace as JSON Lines; returns the number of lines.

    One line per event, cells in the given (planned) order, each line tagged
    with its cell coordinates.  A cell whose tracer dropped events contributes
    one ``trace.dropped`` marker line so truncation is never silent.
    """
    lines = 0
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        for cell in cell_traces:
            for event in cell.events:
                handle.write(event_line(event, cell))
                handle.write("\n")
                lines += 1
            if cell.dropped:
                marker = TraceEvent(
                    t=cell.events[0].t if cell.events else 0.0,
                    kind="trace.dropped",
                    data=(("count", cell.dropped),),
                )
                handle.write(event_line(marker, cell))
                handle.write("\n")
                lines += 1
    return lines


def read_trace_jsonl(path: str) -> List[Dict[str, object]]:
    """Load a trace file back as a list of flat event dicts."""
    events: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
