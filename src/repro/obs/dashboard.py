"""Offline dashboards over metric time-series.

Two renderers over :class:`~repro.obs.metrics.SeriesView` sequences, both
pure functions of their input (no wall clocks, no randomness, no third-party
dependencies — stdlib string building only), so the outputs are byte-stable
and snapshot-testable:

* :func:`render_metrics_text` — TTY sparklines (``repro metrics show``): one
  block-character strip per (cell, column) with min / mean / max;
* :func:`render_metrics_html` — a single-file self-contained HTML report
  (``repro metrics plot``): one inline-SVG chart per column with one polyline
  per cell, a colour legend and axis extents.  Opening the file needs
  nothing but a browser; comparing heuristics or scenarios is just passing
  several series (the CLI prefixes each input file's label).
"""

from __future__ import annotations

import html
from typing import Dict, List, Optional, Sequence, Tuple

from .metrics import SeriesView

__all__ = [
    "sparkline",
    "render_metrics_text",
    "render_metrics_html",
    "write_metrics_html",
]

#: Eight-level block characters of the sparkline strips.
SPARK_LEVELS = "▁▂▃▄▅▆▇█"

#: Polyline colours, cycled over cells (Okabe-Ito palette: colour-blind safe).
PALETTE = (
    "#0072b2",
    "#d55e00",
    "#009e73",
    "#cc79a7",
    "#e69f00",
    "#56b4e9",
    "#f0e442",
    "#000000",
)


def _bucket_means(values: Sequence[float], width: int) -> List[float]:
    """Resample ``values`` to at most ``width`` buckets of means."""
    n = len(values)
    if n <= width:
        return [float(v) for v in values]
    out: List[float] = []
    for b in range(width):
        lo = b * n // width
        hi = max((b + 1) * n // width, lo + 1)
        chunk = values[lo:hi]
        out.append(sum(chunk) / len(chunk))
    return out


def sparkline(values: Sequence[float], width: int = 48) -> str:
    """One block-character strip for ``values``, resampled to ``width``.

    A flat series renders as a flat baseline strip; an empty one as "".
    """
    if not values:
        return ""
    if width < 1:
        raise ValueError("width must be >= 1")
    points = _bucket_means(values, width)
    lo = min(points)
    hi = max(points)
    span = hi - lo
    if span <= 0.0:
        return SPARK_LEVELS[0] * len(points)
    top = len(SPARK_LEVELS) - 1
    return "".join(
        SPARK_LEVELS[min(top, int((value - lo) / span * len(SPARK_LEVELS)))]
        for value in points
    )


def _select_columns(
    views: Sequence[SeriesView], columns: Optional[Sequence[str]]
) -> List[str]:
    """Requested columns, or the union of the views' columns in first-seen order."""
    if columns:
        return list(columns)
    out: List[str] = []
    for view in views:
        for name in view.columns:
            if name not in out:
                out.append(name)
    return out


def _fmt(value: float) -> str:
    """Compact display float (display only — persisted floats use json text)."""
    text = f"{value:.6g}"
    return text


def render_metrics_text(
    views: Sequence[SeriesView],
    columns: Optional[Sequence[str]] = None,
    width: int = 48,
) -> str:
    """TTY summary: per cell, one sparkline strip per column."""
    views = list(views)
    names = _select_columns(views, columns)
    samples = sum(len(view.times) for view in views)
    lines = [
        f"metrics: {len(views)} cell(s), {samples} sample(s), "
        f"{len(names)} column(s)"
    ]
    name_width = max((len(name) for name in names), default=0)
    for view in views:
        if not view.times:
            lines.append(f"{view.label} — no samples (recovered from store?)")
            continue
        lines.append(
            f"{view.label} — {len(view.times)} samples, "
            f"t {_fmt(view.times[0])}..{_fmt(view.times[-1])} s"
        )
        for name in names:
            values = view.columns.get(name)
            if values is None:
                continue
            lo = min(values)
            hi = max(values)
            mean = sum(values) / len(values)
            lines.append(
                f"  {name:<{name_width}}  min {_fmt(lo):>10}  "
                f"mean {_fmt(mean):>10}  max {_fmt(hi):>10}  "
                f"{sparkline(values, width)}"
            )
    return "\n".join(lines)


def _svg_points(
    times: Sequence[float],
    values: Sequence[float],
    t_span: Tuple[float, float],
    v_span: Tuple[float, float],
    size: Tuple[int, int],
) -> str:
    """The ``points`` attribute of one polyline, in chart coordinates."""
    t_lo, t_hi = t_span
    v_lo, v_hi = v_span
    w, h = size
    dt = (t_hi - t_lo) or 1.0
    dv = (v_hi - v_lo) or 1.0
    coords = []
    for t, v in zip(times, values):
        x = (t - t_lo) / dt * w
        y = h - (v - v_lo) / dv * h
        coords.append(f"{x:.2f},{y:.2f}")
    return " ".join(coords)


def render_metrics_html(
    views: Sequence[SeriesView],
    columns: Optional[Sequence[str]] = None,
    title: str = "metrics report",
) -> str:
    """Single-file HTML report: one inline-SVG chart per column.

    Self-contained by construction — inline CSS, inline SVG, zero external
    references — and a pure function of its input, so the report bytes are
    stable and the golden snapshot test can pin them.
    """
    views = list(views)
    names = _select_columns(views, columns)
    chart_w, chart_h = 640, 120
    parts = [
        "<!DOCTYPE html>",
        '<html><head><meta charset="utf-8">',
        f"<title>{html.escape(title)}</title>",
        "<style>",
        "body{font-family:monospace;margin:1.5em;background:#fafafa;color:#222}",
        "h1{font-size:1.2em}h2{font-size:1em;margin:1.2em 0 0.2em}",
        ".legend span{margin-right:1.2em}",
        ".chart{background:#fff;border:1px solid #ccc}",
        ".extent{color:#777;font-size:0.85em}",
        "</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f"<p>{len(views)} series, {len(names)} metric(s); "
        "time axis is <em>virtual</em> (simulated) seconds.</p>",
        '<p class="legend">',
    ]
    for i, view in enumerate(views):
        colour = PALETTE[i % len(PALETTE)]
        parts.append(
            f'<span style="color:{colour}">&#9632; {html.escape(view.label)}</span>'
        )
    parts.append("</p>")
    for name in names:
        with_column = [
            (i, v) for i, v in enumerate(views) if name in v.columns and v.times
        ]
        parts.append(f"<h2>{html.escape(name)}</h2>")
        if not with_column:
            parts.append('<p class="extent">no samples</p>')
            continue
        t_lo = min(v.times[0] for _, v in with_column)
        t_hi = max(v.times[-1] for _, v in with_column)
        v_lo = min(min(v.columns[name]) for _, v in with_column)
        v_hi = max(max(v.columns[name]) for _, v in with_column)
        parts.append(
            f'<svg class="chart" width="{chart_w}" height="{chart_h}" '
            f'viewBox="0 0 {chart_w} {chart_h}">'
        )
        for i, view in with_column:
            colour = PALETTE[i % len(PALETTE)]
            points = _svg_points(
                view.times,
                view.columns[name],
                (t_lo, t_hi),
                (v_lo, v_hi),
                (chart_w, chart_h),
            )
            parts.append(
                f'<polyline fill="none" stroke="{colour}" stroke-width="1.5" '
                f'points="{points}"/>'
            )
        parts.append("</svg>")
        parts.append(
            f'<p class="extent">t {_fmt(t_lo)}..{_fmt(t_hi)} s — '
            f"value {_fmt(v_lo)}..{_fmt(v_hi)}</p>"
        )
    parts.append("</body></html>")
    return "\n".join(parts)


def write_metrics_html(
    path: str,
    views: Sequence[SeriesView],
    columns: Optional[Sequence[str]] = None,
    title: str = "metrics report",
) -> str:
    """Write the HTML report to ``path`` and return the path."""
    document = render_metrics_html(views, columns=columns, title=title)
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        handle.write(document)
        handle.write("\n")
    return path
