"""Observability: virtual-time tracing, hot-path counters, profiling.

The telemetry layer of the reproduction (see README "Observability &
profiling"):

* :mod:`repro.obs.trace` — the structured trace bus: zero-overhead-when-off
  :class:`Tracer` hooks in the middleware, agent and HTM emit virtual-time
  :class:`TraceEvent` records; campaign traces serialise to deterministic
  JSONL, byte-identical at any ``--jobs`` level;
* :mod:`repro.obs.chrome` — Chrome ``trace_event`` export (opens in
  ``chrome://tracing`` / Perfetto);
* :mod:`repro.obs.counters` — rollups of the fluid core's and HTM's plain-int
  hot-path counters (heap pushes, lazy deletions, cache hits, ...);
* :mod:`repro.obs.report` — the per-campaign :class:`PerfReport`
  (``perf-report.json``) fed by :class:`PerfReportObserver` on the campaign
  observer chain;
* :mod:`repro.obs.wallclock` — the *single* sanctioned home for wall-clock
  reads in the package (the DET-CLOCK lint rule exempts ``repro/obs/`` and
  nothing else);
* :mod:`repro.obs.profile` — the ``repro profile run|trace`` harness.  It
  sits on top of the scenario/campaign layers, so import it explicitly
  (``from repro.obs import profile``) — it is intentionally not re-exported
  here to keep ``import repro.platform`` (which imports this package) free
  of an import cycle.

Determinism contract: trace events and counters derive from virtual time and
simulation state only and never enter records, fingerprints or golden
tables; wall-clock values live exclusively in the perf report.
"""

from .wallclock import PhaseTimer, perf_counter
from .trace import (
    CellTrace,
    TraceEvent,
    Tracer,
    event_line,
    read_trace_jsonl,
    write_trace_jsonl,
)
from .counters import merge_counters, middleware_counters, network_counters
from .chrome import chrome_trace, write_chrome_trace
from .report import PerfReport, PerfReportObserver

__all__ = [
    "PhaseTimer",
    "perf_counter",
    "TraceEvent",
    "Tracer",
    "CellTrace",
    "event_line",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "merge_counters",
    "middleware_counters",
    "network_counters",
    "chrome_trace",
    "write_chrome_trace",
    "PerfReport",
    "PerfReportObserver",
]
