"""Observability: virtual-time tracing, hot-path counters, profiling.

The telemetry layer of the reproduction (see README "Observability &
profiling"):

* :mod:`repro.obs.trace` — the structured trace bus: zero-overhead-when-off
  :class:`Tracer` hooks in the middleware, agent and HTM emit virtual-time
  :class:`TraceEvent` records; campaign traces serialise to deterministic
  JSONL, byte-identical at any ``--jobs`` level;
* :mod:`repro.obs.chrome` — Chrome ``trace_event`` export (opens in
  ``chrome://tracing`` / Perfetto);
* :mod:`repro.obs.counters` — rollups of the fluid core's and HTM's plain-int
  hot-path counters (heap pushes, lazy deletions, cache hits, ...);
* :mod:`repro.obs.metrics` — fixed-interval virtual-time metric time-series
  (queue depth, utilization, in-flight, staleness, windowed throughput /
  latency) with byte-stable JSONL / CSV serialisation;
* :mod:`repro.obs.dashboard` — offline renderers over those series: TTY
  sparklines and a single-file inline-SVG HTML report (stdlib only);
* :mod:`repro.obs.report` — the per-campaign :class:`PerfReport`
  (``perf-report.json``) fed by :class:`PerfReportObserver` on the campaign
  observer chain;
* :mod:`repro.obs.wallclock` — the *single* sanctioned home for wall-clock
  reads in the package (the DET-CLOCK lint rule exempts ``repro/obs/`` and
  nothing else);
* :mod:`repro.obs.profile` — the ``repro profile run|trace`` harness.  It
  sits on top of the scenario/campaign layers, so import it explicitly
  (``from repro.obs import profile``) — it is intentionally not re-exported
  here to keep ``import repro.platform`` (which imports this package) free
  of an import cycle.

Determinism contract: trace events and counters derive from virtual time and
simulation state only and never enter records, fingerprints or golden
tables; wall-clock values live exclusively in the perf report.
"""

from .wallclock import PhaseTimer, perf_counter
from .trace import (
    CellTrace,
    TraceEvent,
    Tracer,
    event_line,
    read_trace_jsonl,
    write_trace_jsonl,
)
from .counters import merge_counters, middleware_counters, network_counters
from .metrics import (
    CellMetrics,
    MetricSeries,
    MetricsSampler,
    SeriesView,
    read_metrics_jsonl,
    views_from_rows,
    write_metrics_csv,
    write_metrics_jsonl,
)
from .dashboard import (
    render_metrics_html,
    render_metrics_text,
    sparkline,
    write_metrics_html,
)
from .chrome import chrome_trace, write_chrome_trace
from .report import PerfReport, PerfReportObserver

__all__ = [
    "PhaseTimer",
    "perf_counter",
    "TraceEvent",
    "Tracer",
    "CellTrace",
    "event_line",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "merge_counters",
    "middleware_counters",
    "network_counters",
    "MetricSeries",
    "MetricsSampler",
    "CellMetrics",
    "SeriesView",
    "write_metrics_jsonl",
    "read_metrics_jsonl",
    "write_metrics_csv",
    "views_from_rows",
    "sparkline",
    "render_metrics_text",
    "render_metrics_html",
    "write_metrics_html",
    "chrome_trace",
    "write_chrome_trace",
    "PerfReport",
    "PerfReportObserver",
]
