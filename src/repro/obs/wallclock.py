"""The single sanctioned home for wall-clock reads.

The DET-CLOCK lint rule (:mod:`repro.analysis.determinism`) bans host-clock
reads everywhere in the ``repro`` package *except* this ``repro/obs/``
subtree: host timestamps differ on every run, so one leaking into a record,
a fingerprint or a journaled cell silently breaks the byte-identity
guarantee.  Observability code is the one place that legitimately measures
wall time — phase timers, throughput lines, profiling reports — and routing
every such read through this module keeps the exemption auditable: anything
else that wants the host clock must import it from here (and the import is
visible in the lint report's dotted-name resolution).

Everything measured through this module is **report-only** by contract: wall
times may appear in ``perf-report.json`` and on progress lines, never in
:class:`~repro.results.RunRecord` metrics, trace events or fingerprints.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Tuple
from contextlib import contextmanager

__all__ = ["perf_counter", "PhaseTimer"]


def perf_counter() -> float:
    """Monotonic wall-clock reading in seconds (``time.perf_counter``)."""
    return time.perf_counter()


class PhaseTimer:
    """Named wall-clock phase accumulator for profiling reports.

    Phases are accumulated (entering the same name twice adds up) and
    reported in first-entry order::

        timer = PhaseTimer()
        with timer.phase("workload-gen"):
            ...
        with timer.phase("simulate"):
            ...
        timer.as_dict()   # {"workload-gen": 0.12, "simulate": 3.45}
    """

    def __init__(self) -> None:
        self._order: List[str] = []
        self._elapsed: Dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one named phase (context manager; re-entrant by name)."""
        start = perf_counter()
        try:
            yield
        finally:
            elapsed = perf_counter() - start
            if name not in self._elapsed:
                self._order.append(name)
                self._elapsed[name] = 0.0
            self._elapsed[name] += elapsed

    @property
    def total(self) -> float:
        """Sum of every phase's accumulated wall time."""
        return sum(self._elapsed.values())

    def items(self) -> List[Tuple[str, float]]:
        """``(name, seconds)`` pairs in first-entry order."""
        return [(name, self._elapsed[name]) for name in self._order]

    def as_dict(self) -> Dict[str, float]:
        """Phase durations keyed by name, in first-entry order."""
        return dict(self.items())

    def __len__(self) -> int:
        return len(self._order)

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}={secs:.3f}s" for name, secs in self.items())
        return f"<PhaseTimer {inner}>"
