"""Campaign execution engine.

The paper's result tables are means over many independent runs: every
(heuristic × metatask × repetition) combination is one full middleware
simulation.  Those runs share *no* mutable state — each one builds a fresh
:class:`~repro.platform.middleware.GridMiddleware` seeded from its own
coordinates — so a table experiment is embarrassingly parallel.

This module makes that structure explicit:

* :class:`RunCell` — one work unit, identified by its coordinates
  ``(heuristic, metatask_index, repetition)``.  The middleware seed of a cell
  is *derived from the coordinates* (:func:`derive_seed_offset`), never from
  execution order, which is what makes the campaign deterministic: any
  executor, any interleaving, same numbers.
* executors — :class:`SerialExecutor` (in-process, the legacy behaviour) and
  :class:`MultiprocessingExecutor` (a process pool, ``--jobs N`` from the
  CLI).  Both preserve cell order in their result list.
* :func:`run_campaign` — plans the cells, executes them, and reassembles a
  :class:`~repro.experiments.runner.TableResult` exactly as the serial runner
  would: reference (MCT) cells are assembled first so "tasks finishing
  sooner" comparisons pair each run with the reference run of the *same*
  (metatask, repetition) cell.

``run_table_experiment`` in :mod:`repro.experiments.runner` is now a thin
wrapper over :func:`run_campaign`, so every table, ablation and matrix
campaign scales with cores through the same engine.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.heuristics import Heuristic, create_heuristic
from ..errors import ExperimentError
from ..metrics.comparison import tasks_finishing_sooner
from ..metrics.flow import summarize
from ..platform.middleware import GridMiddleware, MiddlewareConfig, RunResult
from ..platform.spec import PlatformSpec
from ..workload.metatask import Metatask
from ..workload.problems import PAPER_CATALOGUE, ProblemCatalogue
from .config import ExperimentConfig

__all__ = [
    "RunCell",
    "CellWork",
    "derive_seed_offset",
    "plan_cells",
    "execute_cell",
    "SerialExecutor",
    "MultiprocessingExecutor",
    "create_executor",
    "run_campaign",
    "METRIC_ROW_TO_SUMMARY_FIELD",
]

#: Metric rows every campaign column carries, mapped to the
#: :class:`~repro.metrics.flow.MetricSummary` field each one averages.
#: Scenario sweeps import this mapping to validate ranking metrics, so the
#: two can never drift apart.
METRIC_ROW_TO_SUMMARY_FIELD = {
    "completed tasks": "n_completed",
    "makespan": "makespan",
    "sumflow": "sum_flow",
    "maxflow": "max_flow",
    "maxstretch": "max_stretch",
}


def derive_seed_offset(metatask_index: int, repetition: int) -> int:
    """Seed offset of one cell, derived from its coordinates only.

    This is the scheme the serial runner has always used: repetitions of the
    same metatask get consecutive seeds, distinct metatasks are 1000 apart.
    Because the offset depends only on ``(metatask_index, repetition)`` — not
    on the heuristic and not on when the cell happens to execute — every
    heuristic replays the same platform noise for a given cell, and parallel
    execution cannot change any number.
    """
    return metatask_index * 1000 + repetition


@dataclass(frozen=True)
class RunCell:
    """Coordinates of one independent middleware run of a campaign."""

    heuristic: str
    metatask_index: int
    repetition: int
    seed_offset: int

    @property
    def key(self) -> Tuple[int, int]:
        """The (metatask, repetition) pair used to pair runs across heuristics."""
        return (self.metatask_index, self.repetition)


@dataclass(frozen=True)
class CellWork:
    """A :class:`RunCell` bundled with everything needed to execute it.

    The bundle is picklable (platform, metatask and configuration are frozen
    value objects), which is what lets :class:`MultiprocessingExecutor` ship
    it to worker processes.  ``heuristic_factory`` is ``None`` for registry
    heuristics (the worker builds a fresh instance by name); an explicit
    instance is reused in-process by the serial executor and *copied* (via
    pickle) by the multiprocessing one — identical results for the stateless
    heuristics of the paper.
    """

    cell: RunCell
    platform: PlatformSpec
    metatask: Metatask
    middleware_config: MiddlewareConfig
    catalogue: ProblemCatalogue
    heuristic_factory: Optional[Heuristic] = None


def plan_cells(config: ExperimentConfig, metatask_count: int) -> List[RunCell]:
    """Decompose an experiment into its cells, reference heuristic first.

    The order is the canonical assembly order (and the execution order of the
    serial executor): heuristics with the reference moved to the front, then
    metatasks, then repetitions.
    """
    heuristics: List[str] = list(config.heuristics)
    if config.reference in heuristics:
        heuristics.remove(config.reference)
        heuristics.insert(0, config.reference)
    return [
        RunCell(
            heuristic=name,
            metatask_index=metatask_index,
            repetition=repetition,
            seed_offset=derive_seed_offset(metatask_index, repetition),
        )
        for name in heuristics
        for metatask_index in range(metatask_count)
        for repetition in range(config.scale.repetitions)
    ]


def execute_cell(work: CellWork) -> RunResult:
    """Execute one cell: a fresh middleware instance, one full run."""
    heuristic: Union[str, Heuristic]
    if work.heuristic_factory is not None:
        heuristic = work.heuristic_factory
    else:
        heuristic = create_heuristic(work.cell.heuristic)
    middleware = GridMiddleware(
        platform=work.platform,
        heuristic=heuristic,
        catalogue=work.catalogue,
        config=work.middleware_config,
    )
    return middleware.run(work.metatask)


class SerialExecutor:
    """Execute cells one after the other in the current process."""

    jobs = 1

    def __call__(self, work_items: Sequence[CellWork]) -> List[RunResult]:
        return [execute_cell(work) for work in work_items]

    def __repr__(self) -> str:
        return "<SerialExecutor>"


class MultiprocessingExecutor:
    """Execute cells on a process pool of ``jobs`` workers.

    ``Pool.map`` preserves input order, so the result list lines up with the
    planned cells regardless of which worker finished first.

    The pool is built from an *explicit* start-method context: pass
    ``start_method`` to pin one, otherwise the platform's default method is
    resolved once and used explicitly (the platform defaults — spawn on
    macOS/Windows, fork or forkserver on Linux depending on the Python
    version — exist for fork-safety reasons, so they are respected rather
    than overridden).  When a pool cannot be created at all — most notably
    when the executor runs inside a *daemonic* worker of an enclosing
    campaign, which is forbidden from spawning children — it degrades to
    in-process serial execution.  Cells are seeded from their coordinates, so
    every start method and the serial fallback are byte-identical, only their
    speed differs.
    """

    def __init__(self, jobs: int, chunksize: int = 1, start_method: Optional[str] = None):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if start_method is not None and start_method not in multiprocessing.get_all_start_methods():
            raise ValueError(
                f"start method {start_method!r} is not available on this platform"
            )
        self.jobs = jobs
        self.chunksize = chunksize
        self.start_method = start_method

    def _context(self):
        """The multiprocessing context the pool is built from."""
        method = self.start_method
        if method is None:
            method = multiprocessing.get_start_method(allow_none=False)
        return multiprocessing.get_context(method)

    def __call__(self, work_items: Sequence[CellWork]) -> List[RunResult]:
        work_items = list(work_items)
        if not work_items:
            return []
        # No point forking more workers than there are cells.
        processes = min(self.jobs, len(work_items))
        if processes == 1 or multiprocessing.current_process().daemon:
            # Daemonic processes may not have children: a nested campaign
            # (e.g. an experiment running inside a pool worker) runs serially.
            return [execute_cell(work) for work in work_items]
        try:
            pool = self._context().Pool(processes=processes)
        except (AssertionError, OSError, ValueError):
            # Pool *creation* failed (daemonic contexts that slipped past the
            # check above raise AssertionError; exotic platforms raise
            # OSError/ValueError).  Fall back to serial execution.  Errors
            # raised by the cells themselves propagate from pool.map below —
            # they must not silently trigger a serial re-run of the campaign.
            return [execute_cell(work) for work in work_items]
        with pool:
            return pool.map(execute_cell, work_items, chunksize=self.chunksize)

    def __repr__(self) -> str:
        return f"<MultiprocessingExecutor jobs={self.jobs}>"


#: Signature shared by the executors: ordered cells in, ordered results out.
CellExecutor = Callable[[Sequence[CellWork]], List[RunResult]]


def create_executor(jobs: Optional[int]) -> CellExecutor:
    """Executor for a requested parallelism level (``None``/``1`` → serial)."""
    if jobs is None or jobs == 1:
        return SerialExecutor()
    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    return MultiprocessingExecutor(jobs)


def run_campaign(
    experiment_id: str,
    title: str,
    platform: PlatformSpec,
    metatasks: Sequence[Metatask],
    config: ExperimentConfig,
    catalogue: ProblemCatalogue = PAPER_CATALOGUE,
    heuristic_factories: Optional[Mapping[str, Heuristic]] = None,
    notes: Optional[List[str]] = None,
    jobs: Optional[int] = None,
    executor: Optional[CellExecutor] = None,
):
    """Run a full table campaign and assemble its :class:`TableResult`.

    ``jobs`` defaults to ``config.jobs``; an explicit ``executor`` (anything
    mapping an ordered list of :class:`CellWork` to an ordered list of
    :class:`RunResult`) overrides both — the pluggable backend hook.
    """
    from .runner import HeuristicOutcome, TableResult  # circular-import guard

    metatasks = list(metatasks)
    cells = plan_cells(config, len(metatasks))
    work_items = [
        CellWork(
            cell=cell,
            platform=platform,
            metatask=metatasks[cell.metatask_index],
            middleware_config=config.middleware_for(cell.heuristic, cell.seed_offset),
            catalogue=catalogue,
            heuristic_factory=(heuristic_factories or {}).get(cell.heuristic),
        )
        for cell in cells
    ]
    if executor is None:
        executor = create_executor(config.jobs if jobs is None else jobs)
    results = executor(work_items)
    if len(results) != len(cells):
        raise ExperimentError(
            f"executor returned {len(results)} results for {len(cells)} cells"
        )

    # Truncated runs (the middleware safety horizon fired) must not be
    # silently averaged with complete ones: surface them in the table notes.
    truncated_cells = [
        f"{cell.heuristic}/metatask{cell.metatask_index}/rep{cell.repetition}"
        for cell, run in zip(cells, results)
        if run.truncated
    ]
    notes = list(notes or [])
    if truncated_cells:
        notes.append(
            f"WARNING: {len(truncated_cells)} run(s) hit max_horizon_s and were "
            f"truncated (in-flight tasks failed as 'horizon'): "
            + ", ".join(truncated_cells)
        )

    # Assembly — identical to the historical serial loop: cells are ordered
    # reference-first, so every reference run is recorded before the runs it
    # is compared against.
    outcomes: Dict[str, HeuristicOutcome] = {}
    reference_runs: Dict[Tuple[int, int], RunResult] = {}
    for cell, run in zip(cells, results):
        outcome = outcomes.setdefault(cell.heuristic, HeuristicOutcome(cell.heuristic))
        outcome.runs.append(run)
        outcome.summaries.append(summarize(run.tasks, cell.heuristic))
        if cell.heuristic == config.reference:
            reference_runs[cell.key] = run
        elif cell.key in reference_runs:
            outcome.comparisons.append(
                tasks_finishing_sooner(
                    run.tasks,
                    reference_runs[cell.key].tasks,
                    cell.heuristic,
                    config.reference,
                )
            )

    columns: Dict[str, Dict[str, float]] = {}
    for name, outcome in outcomes.items():
        column: Dict[str, float] = {
            row: outcome.mean_metric(field)
            for row, field in METRIC_ROW_TO_SUMMARY_FIELD.items()
        }
        if name != config.reference and outcome.mean_sooner is not None:
            column["tasks finishing sooner than MCT"] = outcome.mean_sooner
        columns[name] = column

    return TableResult(
        experiment_id=experiment_id,
        title=title,
        columns=columns,
        outcomes=outcomes,
        notes=notes,
    )
