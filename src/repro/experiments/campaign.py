"""Campaign execution engine.

The paper's result tables are means over many independent runs: every
(heuristic × metatask × repetition) combination is one full middleware
simulation.  Those runs share *no* mutable state — each one builds a fresh
:class:`~repro.platform.middleware.GridMiddleware` seeded from its own
coordinates — so a table experiment is embarrassingly parallel.

This module makes that structure explicit:

* :class:`RunCell` — one work unit, identified by its coordinates
  ``(heuristic, metatask_index, repetition)``.  The middleware seed of a cell
  is *derived from the coordinates* (:func:`derive_seed_offset`), never from
  execution order, which is what makes the campaign deterministic: any
  executor, any interleaving, same numbers.
* executors — :class:`SerialExecutor` (in-process, the legacy behaviour) and
  :class:`MultiprocessingExecutor` (a process pool, ``--jobs N`` from the
  CLI).  Both preserve cell order in their result list and *stream* each
  result back through an optional ``on_result`` callback as it completes.
* :func:`run_campaign` — plans the cells, executes them, builds one
  provenance-stamped :class:`~repro.results.RunRecord` per cell as results
  stream in (feeding any attached
  :class:`~repro.results.CampaignObserver`), and assembles the
  :class:`~repro.experiments.runner.TableResult` as a pure
  :meth:`~repro.results.ResultSet.pivot` view over the records.  Reference
  (MCT) cells are planned first so "tasks finishing sooner" comparisons pair
  each run with the reference run of the *same* (metatask, repetition) cell.

The documented entry points over this engine live in :mod:`repro.api`;
``run_table_experiment`` in :mod:`repro.experiments.runner` remains as a
deprecated shim.
"""

from __future__ import annotations

import inspect
import math
import multiprocessing
import warnings
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.heuristics import Heuristic, create_heuristic
from ..errors import ExperimentError, StoreError
from ..metrics.comparison import compare_completion_maps, completion_map
from ..metrics.flow import summarize
from ..obs import CellMetrics, CellTrace, MetricsSampler, TraceEvent, Tracer
from ..platform.middleware import GridMiddleware, MiddlewareConfig, RunResult
from ..platform.spec import PlatformSpec
from ..results import (
    METRIC_FIELD_ORDER,
    METRIC_ROW_TO_SUMMARY_FIELD,
    SOONER_METRIC,
    CampaignObserver,
    ResultSet,
    RunRecord,
    config_fingerprint,
)
from ..stats.sequential import StoppingDecision, StoppingRule
from ..store.cache import CampaignStore, CellEntry, open_store, workload_fingerprint
from ..store.resume import partition_cells
from ..workload.metatask import Metatask
from ..workload.problems import PAPER_CATALOGUE, ProblemCatalogue
from .config import ExperimentConfig

__all__ = [
    "RunCell",
    "CellWork",
    "derive_seed_offset",
    "plan_cells",
    "execute_cell",
    "SerialExecutor",
    "MultiprocessingExecutor",
    "create_executor",
    "run_campaign",
    "METRIC_ROW_TO_SUMMARY_FIELD",
]

#: Summary fields copied onto every record (everything but the pairwise
#: ``sooner`` count, which needs the reference run).
_RECORD_SUMMARY_FIELDS = tuple(f for f in METRIC_FIELD_ORDER if f != SOONER_METRIC)

#: Callback streamed one ``(cell index, result)`` pair per completed cell.
OnResult = Callable[[int, RunResult], None]


def derive_seed_offset(metatask_index: int, repetition: int) -> int:
    """Seed offset of one cell, derived from its coordinates only.

    This is the scheme the serial runner has always used: repetitions of the
    same metatask get consecutive seeds, distinct metatasks are 1000 apart.
    Because the offset depends only on ``(metatask_index, repetition)`` — not
    on the heuristic and not on when the cell happens to execute — every
    heuristic replays the same platform noise for a given cell, and parallel
    execution cannot change any number.
    """
    return metatask_index * 1000 + repetition


@dataclass(frozen=True)
class RunCell:
    """Coordinates of one independent middleware run of a campaign."""

    heuristic: str
    metatask_index: int
    repetition: int
    seed_offset: int

    @property
    def key(self) -> Tuple[int, int]:
        """The (metatask, repetition) pair used to pair runs across heuristics."""
        return (self.metatask_index, self.repetition)


@dataclass(frozen=True)
class CellWork:
    """A :class:`RunCell` bundled with everything needed to execute it.

    The bundle is picklable (platform, metatask and configuration are frozen
    value objects), which is what lets :class:`MultiprocessingExecutor` ship
    it to worker processes.  ``heuristic_factory`` is ``None`` for registry
    heuristics (the worker builds a fresh instance by name); an explicit
    instance is reused in-process by the serial executor and *copied* (via
    pickle) by the multiprocessing one — identical results for the stateless
    heuristics of the paper.
    """

    cell: RunCell
    platform: PlatformSpec
    metatask: Metatask
    middleware_config: MiddlewareConfig
    catalogue: ProblemCatalogue
    heuristic_factory: Optional[Heuristic] = None
    #: Attach a :class:`repro.obs.Tracer` to the cell's middleware.  The
    #: trace derives from virtual time and the cell's coordinate seed only,
    #: so traced campaigns stay byte-identical at any ``--jobs`` level.
    trace: bool = False
    #: Per-cell event-ring bound (``None`` = unbounded).
    trace_limit: Optional[int] = None
    #: Attach a :class:`repro.obs.MetricsSampler` sampling every this many
    #: virtual seconds (``None`` = metrics off).  Samples read simulation
    #: state only, so sampled campaigns keep the exact record bytes of
    #: unsampled ones and stay ``--jobs``-independent like traces.
    metrics_interval: Optional[float] = None
    #: Sliding window (virtual seconds) of the windowed throughput / latency
    #: columns (``None`` = the sampler's default multiple of the interval).
    metrics_window: Optional[float] = None


def plan_cells(
    config: ExperimentConfig,
    metatask_count: int,
    rep_range: Optional[range] = None,
) -> List[RunCell]:
    """Decompose an experiment into its cells, reference heuristic first.

    The order is the canonical assembly order (and the execution order of the
    serial executor): heuristics with the reference moved to the front, then
    metatasks, then repetitions.

    ``rep_range`` restricts the plan to a slice of repetitions (default: all
    of ``config.scale.repetitions``) — the sequential stopping mode plans one
    round of *new* repetitions at a time, and because seeds derive from cell
    coordinates, ``plan(range(0, 4))`` is cell-for-cell identical to
    ``plan(range(0, 2)) + plan(range(2, 4))`` reassembled per heuristic.
    """
    if rep_range is None:
        rep_range = range(config.scale.repetitions)
    heuristics: List[str] = list(config.heuristics)
    if config.reference in heuristics:
        heuristics.remove(config.reference)
        heuristics.insert(0, config.reference)
    return [
        RunCell(
            heuristic=name,
            metatask_index=metatask_index,
            repetition=repetition,
            seed_offset=derive_seed_offset(metatask_index, repetition),
        )
        for name in heuristics
        for metatask_index in range(metatask_count)
        for repetition in rep_range
    ]


def execute_cell(work: CellWork) -> RunResult:
    """Execute one cell: a fresh middleware instance, one full run."""
    heuristic: Union[str, Heuristic]
    if work.heuristic_factory is not None:
        heuristic = work.heuristic_factory
    else:
        heuristic = create_heuristic(work.cell.heuristic)
    middleware = GridMiddleware(
        platform=work.platform,
        heuristic=heuristic,
        catalogue=work.catalogue,
        config=work.middleware_config,
        tracer=Tracer(limit=work.trace_limit) if work.trace else None,
        sampler=(
            MetricsSampler(work.metrics_interval, window=work.metrics_window)
            if work.metrics_interval is not None
            else None
        ),
    )
    return middleware.run(work.metatask)


def _execute_serially(
    work_items: Sequence[CellWork], on_result: Optional[OnResult]
) -> List[RunResult]:
    """In-process execution loop shared by the serial paths of both executors."""
    results: List[RunResult] = []
    for index, work in enumerate(work_items):
        run = execute_cell(work)
        results.append(run)
        if on_result is not None:
            on_result(index, run)
    return results


class SerialExecutor:
    """Execute cells one after the other in the current process."""

    jobs = 1

    def __call__(
        self,
        work_items: Sequence[CellWork],
        on_result: Optional[OnResult] = None,
    ) -> List[RunResult]:
        return _execute_serially(work_items, on_result)

    def __repr__(self) -> str:
        return "<SerialExecutor>"


class MultiprocessingExecutor:
    """Execute cells on a process pool of ``jobs`` workers.

    ``Pool.map`` preserves input order, so the result list lines up with the
    planned cells regardless of which worker finished first.

    The pool is built from an *explicit* start-method context: pass
    ``start_method`` to pin one, otherwise the platform's default method is
    resolved once and used explicitly (the platform defaults — spawn on
    macOS/Windows, fork or forkserver on Linux depending on the Python
    version — exist for fork-safety reasons, so they are respected rather
    than overridden).  When a pool cannot be created at all — most notably
    when the executor runs inside a *daemonic* worker of an enclosing
    campaign, which is forbidden from spawning children — it degrades to
    in-process serial execution.  Cells are seeded from their coordinates, so
    every start method and the serial fallback are byte-identical, only their
    speed differs.
    """

    def __init__(self, jobs: int, chunksize: int = 1, start_method: Optional[str] = None):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if start_method is not None and start_method not in multiprocessing.get_all_start_methods():
            raise ValueError(
                f"start method {start_method!r} is not available on this platform"
            )
        self.jobs = jobs
        self.chunksize = chunksize
        self.start_method = start_method

    def _context(self):
        """The multiprocessing context the pool is built from."""
        method = self.start_method
        if method is None:
            method = multiprocessing.get_start_method(allow_none=False)
        return multiprocessing.get_context(method)

    def __call__(
        self,
        work_items: Sequence[CellWork],
        on_result: Optional[OnResult] = None,
    ) -> List[RunResult]:
        work_items = list(work_items)
        if not work_items:
            return []
        # No point forking more workers than there are cells.
        processes = min(self.jobs, len(work_items))
        if processes == 1 or multiprocessing.current_process().daemon:
            # Daemonic processes may not have children: a nested campaign
            # (e.g. an experiment running inside a pool worker) runs serially.
            return _execute_serially(work_items, on_result)
        try:
            pool = self._context().Pool(processes=processes)
        except (AssertionError, OSError, ValueError):
            # Pool *creation* failed (daemonic contexts that slipped past the
            # check above raise AssertionError; exotic platforms raise
            # OSError/ValueError).  Fall back to serial execution.  Errors
            # raised by the cells themselves propagate from the pool map below
            # — they must not silently trigger a serial re-run of the campaign.
            return _execute_serially(work_items, on_result)
        with pool:
            # ``imap`` yields results in input order as workers finish, which
            # is what lets observers stream while the pool is still running.
            results: List[RunResult] = []
            for index, run in enumerate(
                pool.imap(execute_cell, work_items, chunksize=self.chunksize)
            ):
                results.append(run)
                if on_result is not None:
                    on_result(index, run)
            return results

    def __repr__(self) -> str:
        return f"<MultiprocessingExecutor jobs={self.jobs}>"


#: Signature shared by the executors: ordered cells in, ordered results out.
CellExecutor = Callable[[Sequence[CellWork]], List[RunResult]]


def create_executor(jobs: Optional[int]) -> CellExecutor:
    """Executor for a requested parallelism level (``None``/``1`` → serial)."""
    if jobs is None or jobs == 1:
        return SerialExecutor()
    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    return MultiprocessingExecutor(jobs)


def _accepts_keyword(callable_: Callable, name: str) -> bool:
    """Whether ``callable_`` can be passed the keyword argument ``name``."""
    try:
        parameters = inspect.signature(callable_).parameters.values()
    except (TypeError, ValueError):  # builtins / exotic callables
        return False
    return any(
        p.name == name or p.kind is inspect.Parameter.VAR_KEYWORD
        for p in parameters
    )


def _supports_on_result(executor: Callable) -> bool:
    """Whether an executor accepts the streaming ``on_result`` callback."""
    return _accepts_keyword(executor, "on_result")


def _accepts_cached(observer: CampaignObserver) -> bool:
    """Whether an observer's ``on_cell_complete`` takes the ``cached`` flag.

    Observers written before the campaign store keep working: they are
    simply called without the keyword.
    """
    return _accepts_keyword(observer.on_cell_complete, "cached")


def _accepts_run(observer: CampaignObserver) -> bool:
    """Whether an observer's ``on_cell_complete`` takes the live ``run``.

    Counter-harvesting observers (:class:`repro.obs.PerfReportObserver`)
    declare the keyword and receive each freshly executed
    :class:`~repro.platform.middleware.RunResult` (``None`` for cells
    recovered from the store); everyone else is called without it.
    """
    return _accepts_keyword(observer.on_cell_complete, "run")


class _CampaignAssembler:
    """Streams executed runs *and* cached entries into records and observers.

    Results must be fed in planned cell order (reference heuristic first) so
    every "tasks finishing sooner" comparison finds its reference
    completions; the assembler buffers out-of-order arrivals from exotic
    executors and always *processes* contiguously from cell 0.  Cells may
    arrive through two doors — :meth:`on_result` (a freshly executed run,
    committed to the store when one is attached) and :meth:`on_cached` (an
    entry recovered from the store's journal, emitted verbatim) — and the
    record stream is byte-identical whichever door each cell came through.
    """

    def __init__(
        self,
        experiment_id: str,
        cells: Sequence[RunCell],
        work_items: Sequence[CellWork],
        config: ExperimentConfig,
        observers: Sequence[CampaignObserver],
        store: Optional[CampaignStore] = None,
        cell_keys: Optional[Sequence] = None,
        trace: bool = False,
        metrics_on: bool = False,
    ):
        from .runner import HeuristicOutcome  # circular-import guard

        self._outcome_factory = HeuristicOutcome
        self.experiment_id = experiment_id
        self.cells = cells
        self.work_items = work_items
        self.config = config
        self.observers = list(observers)
        self._observer_takes_cached = [_accepts_cached(o) for o in self.observers]
        self._observer_takes_run = [_accepts_run(o) for o in self.observers]
        self.store = store
        self.trace = trace
        self.metrics_on = metrics_on
        #: One :class:`repro.obs.CellTrace` per cell, planned order (filled
        #: as cells are processed; stays all-``None`` when tracing is off).
        self.traces: List[Optional[CellTrace]] = [None] * len(cells)
        #: One :class:`repro.obs.CellMetrics` per cell, planned order (stays
        #: all-``None`` when sampling is off).
        self.metrics: List[Optional[CellMetrics]] = [None] * len(cells)
        self.cell_keys = cell_keys
        self.config_hash = config_fingerprint(config)
        self.result_set = ResultSet()
        self.outcomes: Dict[str, object] = {}
        #: ``task_id → completion date`` of the reference run of each
        #: (metatask, repetition) key — from a live run or from the store.
        self.reference_completions: Dict[Tuple[int, int], Dict[str, float]] = {}
        self.recovered = 0
        self.executed = 0
        self._pending: Dict[int, Tuple[bool, object]] = {}
        self._next = 0

    def on_result(self, index: int, run: RunResult) -> None:
        """Accept one executor result (any order; processing stays ordered)."""
        self._enqueue(index, (False, run))

    def on_cached(self, index: int, entry: CellEntry) -> None:
        """Accept one journaled cell recovered from the store."""
        self._enqueue(index, (True, entry))

    def _enqueue(self, index: int, item: Tuple[bool, object]) -> None:
        if index < self._next or index in self._pending:
            return  # already processed (a replay after a non-streaming executor)
        self._pending[index] = item
        while self._next in self._pending:
            cached, payload = self._pending.pop(self._next)
            if cached:
                self._process_cached(self._next, payload)
            else:
                self._process(self._next, payload)
            self._next += 1

    @property
    def processed(self) -> int:
        """Number of cells processed so far (contiguous from cell 0)."""
        return self._next

    def _process(self, index: int, run: RunResult) -> None:
        cell = self.cells[index]
        outcome = self.outcomes.setdefault(
            cell.heuristic, self._outcome_factory(cell.heuristic)
        )
        outcome.runs.append(run)
        summary = summarize(run.tasks, cell.heuristic)
        outcome.summaries.append(summary)
        metrics: Dict[str, Optional[float]] = {
            name: float(getattr(summary, name)) for name in _RECORD_SUMMARY_FIELDS
        }
        completions: Optional[Dict[str, float]] = None
        if cell.heuristic == self.config.reference:
            completions = completion_map(run.tasks)
            self.reference_completions[cell.key] = completions
        elif cell.key in self.reference_completions:
            comparison = compare_completion_maps(
                completion_map(run.tasks),
                self.reference_completions[cell.key],
                cell.heuristic,
                self.config.reference,
            )
            outcome.comparisons.append(comparison)
            metrics[SOONER_METRIC] = float(comparison.sooner)
        record = RunRecord(
            experiment_id=self.experiment_id,
            heuristic=cell.heuristic,
            metatask_index=cell.metatask_index,
            repetition=cell.repetition,
            seed=self.work_items[index].middleware_config.seed,
            config_hash=self.config_hash,
            truncated=run.truncated,
            metrics=metrics,
        )
        if self.store is not None:
            # WAL discipline: the cell only counts as done once journaled.
            self.store.put(
                CellEntry(key=self.cell_keys[index], record=record, completions=completions)
            )
        if self.trace:
            events = list(run.trace_events)
            if self.store is not None:
                # Store attached and the cell still executed: a cache miss.
                events.insert(0, TraceEvent(0.0, "store.miss"))
            self.traces[index] = CellTrace(
                heuristic=cell.heuristic,
                metatask_index=cell.metatask_index,
                repetition=cell.repetition,
                events=tuple(events),
                dropped=run.trace_dropped,
            )
        if self.metrics_on:
            self.metrics[index] = CellMetrics.from_series(
                cell.heuristic,
                cell.metatask_index,
                cell.repetition,
                run.metric_series,
            )
        self.executed += 1
        self._emit(index, record, cached=False, run=run)

    def _process_cached(self, index: int, entry: CellEntry) -> None:
        cell = self.cells[index]
        if cell.heuristic == self.config.reference:
            if entry.completions is None:
                raise StoreError(
                    f"cached reference cell {cell.heuristic}/m{cell.metatask_index}"
                    f"/rep{cell.repetition} carries no completion map; the store "
                    "entry is damaged — prune it and re-run"
                )
            self.reference_completions[cell.key] = dict(entry.completions)
        if self.trace:
            # A recovered cell never re-simulates, so its trace is the single
            # marker event — the trace stays an honest account of this run.
            self.traces[index] = CellTrace(
                heuristic=cell.heuristic,
                metatask_index=cell.metatask_index,
                repetition=cell.repetition,
                events=(TraceEvent(0.0, "store.hit"),),
            )
        if self.metrics_on:
            # A recovered cell never re-simulates: its series is honestly
            # empty rather than a replay of bytes the store never kept.
            self.metrics[index] = CellMetrics.from_series(
                cell.heuristic, cell.metatask_index, cell.repetition, None
            )
        self.recovered += 1
        self._emit(index, entry.record, cached=True)

    def _emit(
        self,
        index: int,
        record: RunRecord,
        cached: bool,
        run: Optional[RunResult] = None,
    ) -> None:
        self.result_set.append(record)
        for observer, takes_cached, takes_run in zip(
            self.observers, self._observer_takes_cached, self._observer_takes_run
        ):
            kwargs = {}
            if takes_cached:
                kwargs["cached"] = cached
            if takes_run:
                kwargs["run"] = run
            observer.on_cell_complete(index, len(self.cells), record, **kwargs)


def _resolve_repetitions(
    config: ExperimentConfig,
    reps: Optional[Union[int, str]],
    ci_target: Optional[float],
) -> Tuple[ExperimentConfig, Optional[StoppingRule]]:
    """Fold the ``reps``/``ci_target`` arguments into the configuration.

    Returns the (possibly updated) configuration and the
    :class:`~repro.stats.StoppingRule` driving sequential mode, or ``None``
    for a fixed-repetition campaign.  ``ci_target`` is folded into the
    config *before* any record is stamped, so the fingerprint of a
    sequential campaign always covers its stopping knobs.
    """
    if ci_target is not None:
        config = replace(config, ci_target=ci_target)
    if reps == "auto":
        if config.ci_target is None:
            raise ExperimentError(
                'reps="auto" requires a CI target (the ci_target argument or '
                "ExperimentConfig.ci_target)"
            )
        sequential = True
    elif reps is None:
        # A configuration carrying a CI target means "run until converged".
        sequential = config.ci_target is not None
    elif isinstance(reps, int) and not isinstance(reps, bool):
        if reps < 1:
            raise ExperimentError(f"reps must be >= 1, got {reps}")
        if reps != config.scale.repetitions:
            config = replace(config, scale=replace(config.scale, repetitions=reps))
        sequential = False
    else:
        raise ExperimentError(f"reps must be an int or 'auto', got {reps!r}")
    if not sequential:
        return config, None
    rule = StoppingRule(
        ci_target=config.ci_target,
        metric=config.ci_metric,
        confidence=config.ci_confidence,
        min_reps=config.ci_min_reps,
        max_reps=config.ci_max_reps,
    )
    return config, rule


def _metric_groups(
    assemblers: Sequence[_CampaignAssembler], metric: str
) -> Dict[Tuple[str, int], List[float]]:
    """Stopping-rule groups over every record assembled so far.

    Pure function of the record data — independent of ``jobs``, executor and
    store state — which is what makes the stop decision (and therefore the
    repetition count) byte-identical across serial and parallel runs.
    """
    groups: Dict[Tuple[str, int], List[float]] = {}
    for assembler in assemblers:
        for record in assembler.result_set:
            value = record.metrics.get(metric)
            if value is None:
                continue
            groups.setdefault((record.heuristic, record.metatask_index), []).append(
                float(value)
            )
    return groups


def _run_round(
    experiment_id: str,
    platform: PlatformSpec,
    metatasks: Sequence[Metatask],
    config: ExperimentConfig,
    catalogue: ProblemCatalogue,
    heuristic_factories: Optional[Mapping[str, Heuristic]],
    executor: CellExecutor,
    observers: Sequence[CampaignObserver],
    store: Optional[CampaignStore],
    rep_range: Optional[range] = None,
    trace: bool = False,
    trace_limit: Optional[int] = None,
    metrics_interval: Optional[float] = None,
    metrics_window: Optional[float] = None,
) -> Tuple[_CampaignAssembler, List[RunCell]]:
    """Plan, execute and assemble one round of repetitions.

    A fixed-repetition campaign is exactly one round covering every
    repetition; sequential mode calls this once per stopping-rule round with
    the new repetition slice.  Each round is self-contained: its reference
    cells come first in its own plan, so "tasks finishing sooner"
    comparisons always pair within the round that ran them.
    """
    cells = plan_cells(config, len(metatasks), rep_range=rep_range)
    work_items = [
        CellWork(
            cell=cell,
            platform=platform,
            metatask=metatasks[cell.metatask_index],
            middleware_config=config.middleware_for(cell.heuristic, cell.seed_offset),
            catalogue=catalogue,
            heuristic_factory=(heuristic_factories or {}).get(cell.heuristic),
            trace=trace,
            trace_limit=trace_limit,
            metrics_interval=metrics_interval,
            metrics_window=metrics_window,
        )
        for cell in cells
    ]

    if store is None:
        partition = None
        cell_keys = None
        miss_indices = list(range(len(cells)))
        miss_items = work_items
    else:
        # Diff the plan against the journal: hits are recovered, only the
        # missing cells reach the executor.  The workload fingerprint keeps
        # custom platform/metatask arguments — which the config hash cannot
        # see — from aliasing another campaign's cells.
        config_hash = config_fingerprint(config)
        workload_hash = workload_fingerprint(platform, metatasks)
        partition = partition_cells(
            store, experiment_id, config_hash, cells, work_items, workload_hash
        )
        cell_keys = partition.keys
        miss_indices = partition.misses
        miss_items = [work_items[i] for i in miss_indices]
        if not partition.hits:
            # A resume with the wrong --scale/--seed looks exactly like a
            # cold run: same experiment id, different config hash, zero
            # hits.  Warn *before* hours of re-simulation, not after.  Only
            # *mismatching* keys count as stale: entries for the same
            # configuration but other repetition coordinates are simply
            # earlier rounds of a sequential campaign, not a problem.
            stale = sum(
                1
                for e in store.entries()
                if e.key.experiment_id == experiment_id
                and (
                    e.key.config_hash != config_hash
                    or e.key.workload_hash != workload_hash
                )
            )
            if stale:
                warnings.warn(
                    f"store at {store.root!r} holds {stale} cell(s) for "
                    f"{experiment_id!r} under a different configuration or "
                    f"workload (key mismatch — check --scale/--seed); this "
                    f"campaign is starting cold",
                    stacklevel=2,
                )

    assembler = _CampaignAssembler(
        experiment_id, cells, work_items, config, observers,
        store=store, cell_keys=cell_keys, trace=trace,
        metrics_on=metrics_interval is not None,
    )
    for observer in observers:
        observer.on_campaign_start(experiment_id, len(cells))
    if partition is not None:
        for index, entry in partition.hits.items():
            assembler.on_cached(index, entry)

    # Executor indices are positions in the (possibly filtered) miss list;
    # remap them onto planned cell indices before they reach the assembler.
    def on_miss_result(position: int, run: RunResult) -> None:
        assembler.on_result(miss_indices[position], run)

    if not miss_items:
        results: List[RunResult] = []
    elif _supports_on_result(executor):
        results = executor(miss_items, on_result=on_miss_result)
    else:
        results = executor(miss_items)
    if len(results) != len(miss_items):
        raise ExperimentError(
            f"executor returned {len(results)} results for {len(miss_items)} cells"
        )
    # Replay anything the executor did not stream (plain executors stream
    # nothing; well-behaved ones streamed everything and this is a no-op).
    for position, run in enumerate(results):
        on_miss_result(position, run)
    if assembler.processed != len(cells):
        raise ExperimentError(
            f"assembled {assembler.processed} cells out of {len(cells)}"
        )
    return assembler, cells


def run_campaign(
    experiment_id: str,
    title: str,
    platform: PlatformSpec,
    metatasks: Sequence[Metatask],
    config: ExperimentConfig,
    catalogue: ProblemCatalogue = PAPER_CATALOGUE,
    heuristic_factories: Optional[Mapping[str, Heuristic]] = None,
    notes: Optional[List[str]] = None,
    jobs: Optional[int] = None,
    executor: Optional[CellExecutor] = None,
    observers: Sequence[CampaignObserver] = (),
    store: Optional[Union[CampaignStore, str]] = None,
    reps: Optional[Union[int, str]] = None,
    ci_target: Optional[float] = None,
    trace: bool = False,
    trace_limit: Optional[int] = None,
    metrics_interval: Optional[float] = None,
    metrics_window: Optional[float] = None,
):
    """Run a full table campaign and assemble its :class:`TableResult`.

    ``jobs`` defaults to ``config.jobs``; an explicit ``executor`` (anything
    mapping an ordered list of :class:`CellWork` to an ordered list of
    :class:`RunResult`, optionally streaming each result through an
    ``on_result(index, result)`` keyword callback) overrides both — the
    pluggable backend hook.

    ``reps`` controls the repetition count: an ``int`` overrides
    ``config.scale.repetitions`` (fixed mode), and the string ``"auto"``
    switches to **sequential stopping** — the campaign runs rounds of
    repetitions until the relative ``config.ci_confidence`` Student-t CI
    half-width of ``config.ci_metric`` is at most ``ci_target`` for every
    (heuristic, metatask) group, or ``config.ci_max_reps`` is exhausted
    (surfaced as a table note either way).  ``ci_target`` here overrides
    ``config.ci_target``; a config carrying a CI target runs sequentially
    even without ``reps="auto"``.  The stop decision is a pure function of
    the assembled records and seeds derive from cell coordinates, so a
    sequential campaign is byte-identical at any ``jobs`` level and across
    store-warm resumes — exactly like fixed mode.

    ``trace=True`` attaches a :class:`repro.obs.Tracer` to every executed
    cell's middleware and returns the per-cell traces on ``table.traces``
    (planned order, one :class:`repro.obs.CellTrace` per cell).  Trace
    events carry *virtual* time only and derive from cell coordinates, so a
    traced campaign — records **and** trace — is byte-identical at any
    ``jobs`` level; ``trace_limit`` bounds each cell's event ring.  With a
    store attached, recovered cells contribute a single ``store.hit`` marker
    (they never re-simulate) and executed ones are prefixed ``store.miss``.

    ``metrics_interval`` attaches a :class:`repro.obs.MetricsSampler` to
    every executed cell — a fixed-interval virtual-time sampler of queue
    depths, utilization, in-flight tasks, completions/failures, report
    staleness and windowed throughput/latency — and returns the per-cell
    series on ``table.metrics`` (planned order, one
    :class:`repro.obs.CellMetrics` per cell; ``metrics_window`` sets the
    sliding window of the windowed columns).  Sampling reads simulation
    state and never mutates it, so a sampled campaign keeps the exact
    record bytes of an unsampled one and — like traces — the series are
    byte-identical at any ``jobs`` level.  Recovered cells never
    re-simulate and contribute an empty series.  Both knobs are
    execution-only: they are not config fields and leave fingerprints
    untouched.

    ``store`` (or ``config.store``) attaches a
    :class:`~repro.store.CampaignStore`: the plan is diffed against the
    store's journal first, journaled cells are recovered without simulating
    (the executor only ever sees the missing ones), and every freshly
    executed cell is durably committed before it counts as done.  A fully
    warm store therefore replays the whole campaign with *zero* simulations,
    and a campaign killed mid-flight resumes from its journal — in both
    cases the records, the table and any saved file are byte-identical to a
    cold, uninterrupted run.  ``TableResult.cache_info`` reports the
    recovered/executed split.

    As cells complete, one :class:`~repro.results.RunRecord` per cell is
    assembled in planned order and streamed to ``observers`` (plus any
    observers attached to ``config.observers``); in sequential mode
    ``on_campaign_start`` fires once per round (cell indices and totals are
    per-round) while ``on_campaign_end`` fires once, with the merged record
    set.  The returned table carries the full record set on
    ``TableResult.result_set`` — ``table.columns`` is exactly
    ``table.result_set.pivot().columns``, i.e. the table is a pure view over
    the records.
    """
    metatasks = list(metatasks)
    config, rule = _resolve_repetitions(config, reps, ci_target)
    if executor is None:
        executor = create_executor(config.jobs if jobs is None else jobs)
    store = open_store(store if store is not None else getattr(config, "store", None))
    all_observers = list(observers) + list(getattr(config, "observers", ()) or ())

    rounds: List[Tuple[_CampaignAssembler, List[RunCell]]] = []
    decision: Optional[StoppingDecision] = None
    if rule is None:
        rounds.append(
            _run_round(
                experiment_id, platform, metatasks, config, catalogue,
                heuristic_factories, executor, all_observers, store,
                trace=trace, trace_limit=trace_limit,
                metrics_interval=metrics_interval, metrics_window=metrics_window,
            )
        )
        total_reps = config.scale.repetitions
    else:
        total_reps = rule.initial_reps(config.scale.repetitions)
        start = 0
        while True:
            rounds.append(
                _run_round(
                    experiment_id, platform, metatasks, config, catalogue,
                    heuristic_factories, executor, all_observers, store,
                    rep_range=range(start, total_reps),
                    trace=trace, trace_limit=trace_limit,
                    metrics_interval=metrics_interval, metrics_window=metrics_window,
                )
            )
            groups = _metric_groups([a for a, _ in rounds], rule.metric)
            if not groups:
                raise ExperimentError(
                    f"sequential stopping metric {rule.metric!r} appears on no "
                    "record — check ExperimentConfig.ci_metric against the "
                    "recorded metric names"
                )
            decision = rule.assess(groups)
            if decision.satisfied or total_reps >= rule.max_reps:
                break
            start = total_reps
            total_reps = rule.next_reps(total_reps)

    # Merge the rounds, in order, into one record stream.  Record order is a
    # pure function of the plan (rounds, then planned cell order within each
    # round), so it is identical for any executor.
    result_set = ResultSet()
    outcomes: Dict[str, object] = {}
    recovered = 0
    executed = 0
    truncated_cells: List[str] = []
    for assembler, cells in rounds:
        for record in assembler.result_set:
            result_set.append(record)
        for name, outcome in assembler.outcomes.items():
            merged = outcomes.get(name)
            if merged is None:
                outcomes[name] = outcome
            else:
                merged.runs.extend(outcome.runs)
                merged.summaries.extend(outcome.summaries)
                merged.comparisons.extend(outcome.comparisons)
        recovered += assembler.recovered
        executed += assembler.executed
        # Truncated runs (the middleware safety horizon fired) must not be
        # silently averaged with complete ones: surface them in the table
        # notes.  Records are assembled in planned cell order, so zipping
        # them against the plan is exact — and works for recovered cells,
        # which have no RunResult, because the record carries the flag.
        truncated_cells.extend(
            f"{cell.heuristic}/metatask{cell.metatask_index}/rep{cell.repetition}"
            for cell, record in zip(cells, assembler.result_set)
            if record.truncated
        )

    notes = list(notes or [])
    if truncated_cells:
        notes.append(
            f"WARNING: {len(truncated_cells)} run(s) hit max_horizon_s and were "
            f"truncated (in-flight tasks failed as 'horizon'): "
            + ", ".join(truncated_cells)
        )
    if rule is not None and decision is not None:
        worst_rel = decision.worst.relative_half_width
        worst_text = "inf" if not math.isfinite(worst_rel) else f"{worst_rel:.4f}"
        if decision.satisfied:
            notes.append(
                f"sequential stopping: {rule.metric} relative CI half-width <= "
                f"{rule.ci_target:g} at {int(rule.confidence * 100)}% confidence "
                f"after {total_reps} repetition(s) in {len(rounds)} round(s) "
                f"(worst group {worst_text})"
            )
        else:
            notes.append(
                f"WARNING: sequential stopping exhausted ci_max_reps="
                f"{rule.max_reps} without reaching CI target {rule.ci_target:g} "
                f"on {rule.metric} (worst group relative half-width "
                f"{worst_text}); means below are unconverged"
            )

    config_hash = rounds[0][0].config_hash
    result_set.meta = {
        "experiment_id": experiment_id,
        "title": title,
        "notes": notes,
        "config_hash": config_hash,
        "scale": config.scale.name,
        "seed": config.seed,
        "reference": config.reference,
    }
    if rule is not None and decision is not None:
        result_set.meta["sequential"] = {
            "ci_target": rule.ci_target,
            "metric": rule.metric,
            "confidence": rule.confidence,
            "repetitions": total_reps,
            "rounds": len(rounds),
            "converged": decision.satisfied,
            "worst_relative_half_width": (
                None if not math.isfinite(worst_rel) else round(worst_rel, 6)
            ),
            # The ``stats.*`` counter family: how much work the stopping
            # engine spent and where it stood when it stopped.  Harvested by
            # PerfReportObserver into the perf report's counter rollup and
            # echoed on the ProgressObserver end line.
            "counters": {
                "stats.rounds": len(rounds),
                "stats.cells": sum(len(cells) for _, cells in rounds),
                "stats.cells_last_round": len(rounds[-1][1]),
                "stats.groups": len(decision.groups),
                "stats.groups_unresolved": sum(
                    1 for group in decision.groups if not group.satisfied
                ),
            },
        }
    if store is not None:
        store.flush_stats()
    for observer in all_observers:
        observer.on_campaign_end(result_set)

    # The table is a pure pivot view over the records; the rich per-run
    # objects (tasks, server stats) ride along in ``outcomes`` for consumers
    # that need more than the aggregated numbers.  ``outcomes`` only covers
    # *executed* cells — recovered cells contribute records, not live runs.
    table = result_set.pivot()
    table.outcomes = outcomes
    table.cache_info = {"recovered": recovered, "executed": executed}
    # Per-cell virtual-time traces, rounds concatenated in planned order
    # (empty unless ``trace=True``) — like ``outcomes``, a rich ride-along
    # that never influences the pivot itself.
    table.traces = (
        [cell_trace for assembler, _ in rounds for cell_trace in assembler.traces]
        if trace
        else []
    )
    # Per-cell metric series, same shape and ordering contract as traces
    # (empty unless ``metrics_interval`` was given).
    table.metrics = (
        [cell_metrics for assembler, _ in rounds for cell_metrics in assembler.metrics]
        if metrics_interval is not None
        else []
    )
    return table
