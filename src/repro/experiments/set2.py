"""Second experiment set — waste-cpu tasks (Tables 7 and 8).

Testbed: servers valette, spinnaker, cabestan and artimon, agent xrousse,
client zanzibar.  The ``waste-cpu`` task was designed by the authors to have
computation costs similar to the matrix products but a negligible memory
footprint, so the memory problems of the first set disappear: "All the tasks
of all the metatasks of this set of experiments have been submitted, accepted
and computed".

The paper generates *three different metatasks*, each submitted at the two
arrival rates; Tables 7 and 8 report the per-metatask metrics and their mean.
Here the per-metatask values are available in ``TableResult.outcomes`` and the
table columns contain the means, which is what the shape criteria compare.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..workload.metatask import Metatask
from ..workload.testbed import second_set_platform, wastecpu_metatask
from .config import ExperimentConfig, FULL_SCALE
from .campaign import run_campaign
from .runner import TableResult

__all__ = ["run_table7", "run_table8", "second_set_metatasks"]


def second_set_metatasks(config: ExperimentConfig, rate: float, label: str) -> List[Metatask]:
    """The paper's three waste-cpu metatasks at a given arrival rate."""
    metatasks = []
    for index in range(config.scale.metatask_count):
        rng = np.random.default_rng(config.seed + 97 * (index + 1))
        metatasks.append(
            wastecpu_metatask(
                count=config.scale.task_count,
                mean_interarrival=rate,
                rng=rng,
                name=f"{label}-mt{index + 1}-{config.scale.name}",
            )
        )
    return metatasks


def run_table7(config: Optional[ExperimentConfig] = None) -> TableResult:
    """Reproduce Table 7 (waste-cpu tasks, low arrival rate)."""
    config = config if config is not None else ExperimentConfig(scale=FULL_SCALE)
    metatasks = second_set_metatasks(config, config.low_rate_s, "table7-wastecpu")
    return run_campaign(
        experiment_id="table7",
        title=(
            f"Table 7 — waste-cpu tasks, Poisson mean {config.low_rate_s:g}s, "
            f"{config.scale.task_count} tasks, {len(metatasks)} metatasks (means)"
        ),
        platform=second_set_platform(),
        metatasks=metatasks,
        config=config,
        notes=[
            "servers: valette, spinnaker, cabestan, artimon (Table 2)",
            "waste-cpu tasks need no memory: every task completes",
        ],
    )


def run_table8(config: Optional[ExperimentConfig] = None) -> TableResult:
    """Reproduce Table 8 (waste-cpu tasks, high arrival rate)."""
    config = config if config is not None else ExperimentConfig(scale=FULL_SCALE)
    metatasks = second_set_metatasks(config, config.high_rate_s, "table8-wastecpu")
    return run_campaign(
        experiment_id="table8",
        title=(
            f"Table 8 — waste-cpu tasks, Poisson mean {config.high_rate_s:g}s, "
            f"{config.scale.task_count} tasks, {len(metatasks)} metatasks (means)"
        ),
        platform=second_set_platform(),
        metatasks=metatasks,
        config=config,
        notes=[
            "higher contention: MP and MSF give the lowest sum-flows, MSF the lowest max-flow",
        ],
    )
