"""Ablation studies.

The paper motivates several design choices that these ablations quantify, and
lists two future-work items that the library implements as options.  Each
ablation returns a :class:`~repro.experiments.runner.TableResult`-style
comparison so the benchmark harness can print it like the paper's tables.

* :func:`ablation_monitor_period` — how stale load reports hurt MCT (the HTM
  heuristics do not use them, hence are insensitive).
* :func:`ablation_htm_resync` — HTM with / without re-anchoring on completion
  messages (second future-work item).
* :func:`ablation_memory_aware_msf` — MSF that skips memory-saturated servers
  (first future-work item) against plain MSF at the collapse-inducing rate.
* :func:`ablation_communication_model` — HTM with and without the transfer
  phases in its per-server traces.
* :func:`ablation_arrival_rate_sweep` — sum-flow of each heuristic across a
  range of arrival rates (where the MP/MSF advantage grows).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.heuristics import create_heuristic
from ..core.heuristics.msf import MsfHeuristic
from ..metrics.flow import summarize
from ..platform.middleware import GridMiddleware, MiddlewareConfig
from ..platform.spec import PlatformSpec
from ..workload.metatask import Metatask
from ..workload.testbed import (
    first_set_platform,
    matmul_metatask,
    second_set_platform,
    wastecpu_metatask,
)
from .config import ExperimentConfig, SMOKE_SCALE
from .runner import TableResult, run_single

__all__ = [
    "ablation_monitor_period",
    "ablation_htm_resync",
    "ablation_memory_aware_msf",
    "ablation_communication_model",
    "ablation_arrival_rate_sweep",
    "ablation_dual_cpu",
]


def _default_config() -> ExperimentConfig:
    return ExperimentConfig(scale=SMOKE_SCALE)


def _metatask_for(config: ExperimentConfig, family: str, rate: float) -> Metatask:
    rng = np.random.default_rng(config.seed)
    if family == "matmul":
        return matmul_metatask(config.scale.task_count, rate, rng=rng, name=f"ablation-{family}")
    return wastecpu_metatask(config.scale.task_count, rate, rng=rng, name=f"ablation-{family}")


def _summaries_to_columns(results: Dict[str, Dict[str, float]]) -> Dict[str, Dict[str, float]]:
    return results


def ablation_monitor_period(
    periods_s: Sequence[float] = (5.0, 30.0, 120.0),
    config: Optional[ExperimentConfig] = None,
) -> TableResult:
    """Sum-flow of MCT vs MSF as the monitor report period grows."""
    config = config if config is not None else _default_config()
    metatask = _metatask_for(config, "wastecpu", config.low_rate_s)
    platform = second_set_platform()
    columns: Dict[str, Dict[str, float]] = {}
    for period in periods_s:
        middleware_config = replace(config.middleware, monitor_period_s=period, seed=config.seed)
        for heuristic in ("mct", "msf"):
            run = run_single(platform, metatask, heuristic, middleware_config)
            summary = summarize(run.tasks, heuristic)
            columns.setdefault(f"{heuristic} @ {period:g}s", {}).update(
                {
                    "sumflow": summary.sum_flow,
                    "maxstretch": summary.max_stretch,
                    "completed tasks": summary.n_completed,
                }
            )
    return TableResult(
        experiment_id="ablation-monitor-period",
        title="Ablation — monitor report period (stale information hurts MCT only)",
        columns=columns,
        outcomes={},
        notes=[f"workload: {metatask.name}, rate {config.low_rate_s:g}s"],
    )


def ablation_htm_resync(config: Optional[ExperimentConfig] = None) -> TableResult:
    """HTM heuristics with and without re-anchoring on completion messages."""
    config = config if config is not None else _default_config()
    metatask = _metatask_for(config, "wastecpu", config.high_rate_s)
    platform = second_set_platform()
    columns: Dict[str, Dict[str, float]] = {}
    for resync in (True, False):
        middleware_config = replace(config.middleware, htm_resync=resync, seed=config.seed)
        for heuristic in ("hmct", "msf"):
            run = run_single(platform, metatask, heuristic, middleware_config)
            summary = summarize(run.tasks, heuristic)
            label = f"{heuristic} ({'resync' if resync else 'no resync'})"
            columns[label] = {
                "sumflow": summary.sum_flow,
                "maxflow": summary.max_flow,
                "makespan": summary.makespan,
                "completed tasks": summary.n_completed,
            }
    return TableResult(
        experiment_id="ablation-htm-resync",
        title="Ablation — HTM re-anchoring on completion messages (future work #2)",
        columns=columns,
        outcomes={},
        notes=[f"workload: {metatask.name}, rate {config.high_rate_s:g}s"],
    )


def ablation_memory_aware_msf(config: Optional[ExperimentConfig] = None) -> TableResult:
    """Memory-aware MSF (future work #1) vs plain MSF vs HMCT at the collapse rate."""
    config = config if config is not None else _default_config()
    metatask = _metatask_for(config, "matmul", config.high_rate_s)
    platform = first_set_platform()
    memory_limits = {
        name: platform.machine(name).collapse_threshold_mb for name in platform.server_names()
    }
    candidates = {
        "hmct": create_heuristic("hmct"),
        "msf": create_heuristic("msf"),
        "msf (memory aware)": MsfHeuristic(memory_aware=True, memory_limits=memory_limits),
    }
    columns: Dict[str, Dict[str, float]] = {}
    for label, heuristic in candidates.items():
        middleware_config = replace(config.middleware, seed=config.seed)
        run = run_single(platform, metatask, heuristic, middleware_config)
        summary = summarize(run.tasks, label)
        collapses = sum(stats.get("collapses", 0) for stats in run.server_stats.values())
        columns[label] = {
            "completed tasks": summary.n_completed,
            "sumflow": summary.sum_flow,
            "maxstretch": summary.max_stretch,
            "server collapses": collapses,
        }
    return TableResult(
        experiment_id="ablation-memory-aware-msf",
        title="Ablation — memory-aware scheduling (future work #1)",
        columns=columns,
        outcomes={},
        notes=[f"workload: {metatask.name}, rate {config.high_rate_s:g}s, memory model on"],
    )


def ablation_communication_model(config: Optional[ExperimentConfig] = None) -> TableResult:
    """HTM with and without the input/output transfer phases in its traces."""
    config = config if config is not None else _default_config()
    metatask = _metatask_for(config, "matmul", config.low_rate_s)
    platform = first_set_platform()
    columns: Dict[str, Dict[str, float]] = {}
    for model_comm in (True, False):
        middleware_config = replace(
            config.middleware, htm_model_communication=model_comm, seed=config.seed
        )
        for heuristic in ("hmct", "msf"):
            run = run_single(platform, metatask, heuristic, middleware_config)
            summary = summarize(run.tasks, heuristic)
            label = f"{heuristic} ({'3-phase' if model_comm else 'compute-only'})"
            columns[label] = {
                "sumflow": summary.sum_flow,
                "maxflow": summary.max_flow,
                "maxstretch": summary.max_stretch,
            }
    return TableResult(
        experiment_id="ablation-communication-model",
        title="Ablation — modelling the data transfers inside the HTM",
        columns=columns,
        outcomes={},
        notes=[f"workload: {metatask.name}, rate {config.low_rate_s:g}s"],
    )


def ablation_dual_cpu(config: Optional[ExperimentConfig] = None) -> TableResult:
    """Single-CPU vs dual-CPU Xeon servers (Table 2 ambiguity, see EXPERIMENTS.md).

    Table 2 does not state the processor count of the Xeon servers.  With a
    single CPU per server the effective contention is higher than what the
    published sum-flows suggest; with dual-CPU Xeons the low-rate sum-flows
    land very close to Tables 5 and 7 (including MP being *worse* than MCT).
    This ablation quantifies both readings on the waste-cpu workload.
    """
    config = config if config is not None else _default_config()
    metatask = _metatask_for(config, "wastecpu", config.low_rate_s)
    columns: Dict[str, Dict[str, float]] = {}
    for dual in (False, True):
        platform = second_set_platform(dual_cpu_xeons=dual)
        for heuristic in ("mct", "mp", "msf"):
            middleware_config = replace(config.middleware, seed=config.seed)
            run = run_single(platform, metatask, heuristic, middleware_config)
            summary = summarize(run.tasks, heuristic)
            label = f"{heuristic} ({'dual' if dual else 'single'}-CPU xeons)"
            columns[label] = {
                "sumflow": summary.sum_flow,
                "maxstretch": summary.max_stretch,
                "makespan": summary.makespan,
            }
    return TableResult(
        experiment_id="ablation-dual-cpu",
        title="Ablation — processor count of the Xeon servers",
        columns=columns,
        outcomes={},
        notes=[f"workload: {metatask.name}, rate {config.low_rate_s:g}s"],
    )


def ablation_arrival_rate_sweep(
    rates_s: Sequence[float] = (30.0, 20.0, 15.0, 12.0),
    heuristics: Sequence[str] = ("mct", "hmct", "mp", "msf"),
    config: Optional[ExperimentConfig] = None,
) -> TableResult:
    """Sum-flow of each heuristic across arrival rates (waste-cpu workload)."""
    config = config if config is not None else _default_config()
    platform = second_set_platform()
    columns: Dict[str, Dict[str, float]] = {name: {} for name in heuristics}
    for rate in rates_s:
        metatask = _metatask_for(config, "wastecpu", rate)
        for heuristic in heuristics:
            middleware_config = replace(config.middleware, seed=config.seed)
            run = run_single(platform, metatask, heuristic, middleware_config)
            summary = summarize(run.tasks, heuristic)
            columns[heuristic][f"sumflow @ {rate:g}s"] = summary.sum_flow
    return TableResult(
        experiment_id="ablation-arrival-rate-sweep",
        title="Ablation — sum-flow across arrival rates",
        columns=columns,
        outcomes={},
        notes=["the advantage of the HTM heuristics grows with the arrival rate"],
    )
